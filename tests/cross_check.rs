//! Integration test: the polynomial algorithms agree with the exact solvers
//! on randomized instances, for every tractable class of the paper.

use proptest::prelude::*;
use rpq::automata::{Alphabet, Language};
use rpq::graphdb::generate::random_labeled_graph;
use rpq::graphdb::GraphDb;
use rpq::resilience::algorithms::{solve, solve_with, Algorithm};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

/// Strategy: a small random labeled database described by (nodes, facts, seed).
fn small_db(alphabet: &'static str, max_facts: usize) -> impl Strategy<Value = GraphDb> {
    (2usize..6, 1usize..=max_facts, any::<u64>()).prop_map(move |(nodes, facts, seed)| {
        random_labeled_graph(nodes, facts, &Alphabet::from_chars(alphabet), seed)
    })
}

/// Ground truth through the engine dispatcher (branch and bound backend).
fn exact_value(q: &Rpq, db: &GraphDb) -> ResilienceValue {
    solve_with(Algorithm::ExactBranchAndBound, q, db).unwrap().value
}

/// Ground truth through the engine dispatcher (subset enumeration backend).
fn enumeration_value(q: &Rpq, db: &GraphDb) -> ResilienceValue {
    solve_with(Algorithm::ExactEnumeration, q, db).unwrap().value
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn local_algorithm_matches_exact(db in small_db("abx", 10)) {
        for pattern in ["ax*b", "ab|ax", "a|b", "ab|xb"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            if let Ok(outcome) = solve_with(Algorithm::Local, &q, &db) {
                prop_assert_eq!(outcome.value, exact_value(&q, &db));
            }
        }
    }

    #[test]
    fn chain_algorithm_matches_exact(db in small_db("abc", 10)) {
        for pattern in ["ab|bc", "ab|cb", "axb|byc"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            if let Ok(outcome) = solve_with(Algorithm::BipartiteChain, &q, &db) {
                prop_assert_eq!(outcome.value, exact_value(&q, &db));
            }
        }
    }

    #[test]
    fn one_dangling_algorithm_matches_exact(db in small_db("abce", 9)) {
        for pattern in ["abc|be", "ab|ce"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            if let Ok(outcome) = solve_with(Algorithm::OneDangling, &q, &db) {
                prop_assert_eq!(outcome.value, exact_value(&q, &db));
            }
        }
    }

    #[test]
    fn dispatcher_matches_brute_force_enumeration(db in small_db("ab", 8)) {
        for pattern in ["ab", "aa", "a|b", "ab|ba", "ab|bb"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            let fast = solve(&q, &db).unwrap().value;
            prop_assert_eq!(fast, enumeration_value(&q, &db));
        }
    }

    #[test]
    fn bag_and_set_semantics_relate(db in small_db("abx", 8)) {
        // Set resilience counts facts while bag resilience counts multiplicity:
        // with all multiplicities 1 they agree.
        for pattern in ["ax*b", "ab|bc", "aa"] {
            let set_q = Rpq::new(Language::parse(pattern).unwrap());
            let bag_q = Rpq::new(Language::parse(pattern).unwrap()).with_bag_semantics();
            let set_value = solve(&set_q, &db).unwrap().value;
            let bag_value = solve(&bag_q, &db).unwrap().value;
            prop_assert_eq!(set_value, bag_value);
        }
    }
}

#[test]
fn contingency_sets_returned_by_the_solver_are_valid() {
    let alphabet = Alphabet::from_chars("abx");
    for seed in 0..10 {
        let db = random_labeled_graph(5, 9, &alphabet, seed);
        for pattern in ["ax*b", "ab|bx", "aa"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            let outcome = solve(&q, &db).unwrap();
            if let Some(cut) = outcome.contingency_set {
                let set = cut.into_iter().collect();
                assert!(q.is_contingency_set(&db, &set), "{pattern}, seed {seed}");
                assert_eq!(
                    q.cost(&db, &set),
                    outcome.value.finite().unwrap(),
                    "{pattern}, seed {seed}: the cut cost must equal the reported value"
                );
            }
        }
    }
}
