//! Flow-backend agreement: every MinCut backend of `rpq-flow` (Dinic,
//! Edmonds–Karp, push–relabel, and the measured `Auto` selector) is
//! selectable end to end through `SolveOptions::flow_backend`, and all of
//! them must return the same resilience value on every tractable family —
//! the engine-level contract behind plumbing `FlowAlgorithm` through
//! `algorithms/{local,chain,one_dangling}.rs` down to the CSR arena solvers
//! of `rpq_flow::CsrFlow`. The corpus-wide test additionally pins every
//! selectable backend to the exact-enumeration oracle, value and witness
//! both, so the pruned/ε-contracted product build is cross-checked against a
//! solver that knows nothing about flows.

mod common;

use common::{is_flow_based, FAMILIES};
use rpq::automata::{Alphabet, Language};
use rpq::flow::FlowAlgorithm;
use rpq::graphdb::generate::random_labeled_graph;
use rpq::graphdb::FactId;
use rpq::resilience::algorithms::Algorithm;
use rpq::resilience::engine::{Engine, SolveOptions};
use rpq::resilience::exact::resilience_exact;
use rpq::resilience::rpq::{ResilienceValue, Rpq};
use std::collections::BTreeSet;

#[test]
fn all_flow_backends_agree_on_every_tractable_family() {
    for &(alphabet, patterns, expected) in FAMILIES.iter().filter(|&&(_, _, a)| is_flow_based(a)) {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for seed in 0..5 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let outcomes: Vec<_> = FlowAlgorithm::SELECTABLE
                    .into_iter()
                    .map(|flow_backend| {
                        let engine = Engine::with_options(SolveOptions {
                            flow_backend,
                            ..Default::default()
                        });
                        engine.solve(&query, &db).unwrap()
                    })
                    .collect();
                for (flow, outcome) in FlowAlgorithm::SELECTABLE.iter().zip(&outcomes) {
                    assert_eq!(outcome.algorithm, expected, "{pattern} via {flow}");
                    assert_eq!(
                        outcome.value,
                        outcomes[0].value,
                        "{pattern}, seed {seed}: {flow} disagrees with {}",
                        FlowAlgorithm::SELECTABLE[0]
                    );
                }
            }
        }
    }
}

#[test]
fn every_selectable_backend_matches_exact_enumeration_on_the_corpus() {
    // Corpus-wide oracle check: on every flow-based family, each selectable
    // backend (including `Auto`) must reproduce the exact-enumeration value,
    // and its witness must be a genuine contingency set of that exact cost.
    for &(alphabet, patterns, _) in FAMILIES.iter().filter(|&&(_, _, a)| is_flow_based(a)) {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for seed in 0..4 {
                let db = random_labeled_graph(5, 10, &alphabet, seed);
                let exact = resilience_exact(&query, &db).value;
                for flow_backend in FlowAlgorithm::SELECTABLE {
                    let engine =
                        Engine::with_options(SolveOptions { flow_backend, ..Default::default() });
                    let outcome = engine.solve(&query, &db).unwrap();
                    let context = format!("{pattern} via {flow_backend}, seed {seed}");
                    assert_eq!(outcome.value, exact, "{context}");
                    if !outcome.value.is_infinite() {
                        let cut: BTreeSet<FactId> =
                            outcome.contingency_set.expect(&context).into_iter().collect();
                        assert!(
                            query.is_contingency_set(&db, &cut),
                            "{context}: witness does not falsify the query"
                        );
                        assert_eq!(
                            ResilienceValue::Finite(query.cost(&db, &cut)),
                            exact,
                            "{context}: witness cost must equal the exact value"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn prepared_batches_agree_across_flow_backends_and_with_the_default() {
    let alphabet = Alphabet::from_chars("abx");
    let query = Rpq::new(Language::parse("ax*b").unwrap()).with_bag_semantics();
    let dbs: Vec<_> = (0..6).map(|seed| random_labeled_graph(5, 12, &alphabet, seed)).collect();
    let baseline: Vec<_> = dbs
        .iter()
        .map(|db| rpq::resilience::algorithms::solve(&query, db).unwrap().value)
        .collect();
    for flow_backend in FlowAlgorithm::SELECTABLE {
        let engine = Engine::with_options(SolveOptions { flow_backend, ..Default::default() });
        let prepared = engine.prepare(&query).unwrap();
        let values: Vec<_> =
            prepared.solve_batch(&dbs).into_iter().map(|r| r.unwrap().value).collect();
        assert_eq!(values, baseline, "{flow_backend}");
    }
}

#[test]
fn forced_backends_accept_every_flow_algorithm() {
    // Forcing the tractable algorithm (instead of auto-dispatch) must also
    // honor the chosen flow backend and agree across all of them.
    let alphabet = Alphabet::from_chars("abc");
    let query = Rpq::new(Language::parse("ab|bc").unwrap());
    for seed in 0..4 {
        let db = random_labeled_graph(4, 9, &alphabet, seed);
        let values: Vec<_> = FlowAlgorithm::SELECTABLE
            .into_iter()
            .map(|flow_backend| {
                let engine =
                    Engine::with_options(SolveOptions { flow_backend, ..Default::default() });
                engine.solve_with(Algorithm::BipartiteChain, &query, &db).unwrap().value
            })
            .collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]), "seed {seed}: {values:?}");
    }
}
