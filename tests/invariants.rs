//! Property-based tests of structural resilience invariants that hold for
//! every query and database (independently of the complexity classification):
//!
//! * `RES(Q_L, D) = RES(Q_{IF(L)}, D)` — replacing the language by its
//!   infix-free sublanguage never changes the query (Section 2);
//! * `RES(Q, D) = 0` iff `D ⊭ Q`;
//! * resilience is monotone under adding facts;
//! * set-semantics resilience is bounded by bag-semantics resilience, which is
//!   bounded by the total multiplicity;
//! * `RES(Q_{L1 ∪ L2}, D) ≥ max(RES(Q_{L1}, D), RES(Q_{L2}, D))`;
//! * returned contingency sets really are contingency sets of matching cost.

use proptest::prelude::*;
use rpq::automata::{Alphabet, Language};
use rpq::graphdb::generate::random_labeled_graph;
use rpq::graphdb::GraphDb;
use rpq::resilience::algorithms::solve;
use rpq::resilience::rpq::{ResilienceValue, Rpq};

const PATTERNS: &[&str] = &["ax*b", "ab|ad", "ab|bc", "aa", "aab", "abc|bd", "a(b|d)*x", "abx"];

fn pattern_strategy() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(PATTERNS)
}

fn small_db(seed: u64, nodes: usize, facts: usize) -> GraphDb {
    let alphabet = Alphabet::from_chars("abxd");
    random_labeled_graph(nodes, facts, &alphabet, seed)
}

fn value(rpq: &Rpq, db: &GraphDb) -> ResilienceValue {
    solve(rpq, db).expect("solve never fails on these inputs").value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn infix_free_sublanguage_preserves_resilience(seed in 0u64..500, pattern in pattern_strategy()) {
        let db = small_db(seed, 4, 7);
        let language = Language::parse(pattern).unwrap();
        let original = value(&Rpq::new(language.clone()), &db);
        let reduced = value(&Rpq::new(language.infix_free()), &db);
        prop_assert_eq!(original, reduced, "{}", pattern);
    }

    #[test]
    fn zero_resilience_iff_query_does_not_hold(seed in 0u64..500, pattern in pattern_strategy()) {
        let db = small_db(seed, 4, 6);
        let query = Rpq::new(Language::parse(pattern).unwrap());
        let v = value(&query, &db);
        prop_assert_eq!(v == ResilienceValue::Finite(0), !query.holds_on(&db), "{}", pattern);
    }

    #[test]
    fn resilience_is_monotone_under_adding_facts(
        seed in 0u64..500,
        pattern in pattern_strategy(),
        extra_source in 0usize..4,
        extra_target in 0usize..4,
        extra_label in proptest::sample::select(vec!['a', 'b', 'x', 'd']),
    ) {
        let db = small_db(seed, 4, 6);
        let query = Rpq::new(Language::parse(pattern).unwrap());
        let before = value(&query, &db);
        let mut bigger = db.clone();
        let s = bigger.node(&format!("n{extra_source}"));
        let t = bigger.node(&format!("n{extra_target}"));
        bigger.add_fact(s, extra_label.into(), t);
        let after = value(&query, &bigger);
        // ResilienceValue is ordered with Infinite as the maximum.
        prop_assert!(after >= before, "{}: {} then {}", pattern, before, after);
    }

    #[test]
    fn set_resilience_is_bounded_by_bag_resilience(seed in 0u64..500, pattern in pattern_strategy()) {
        let mut db = small_db(seed, 4, 7);
        // Give some facts larger multiplicities.
        let ids: Vec<_> = db.fact_ids().collect();
        for (i, id) in ids.iter().enumerate() {
            db.set_multiplicity(*id, 1 + (i as u64 % 4));
        }
        let set_value = value(&Rpq::new(Language::parse(pattern).unwrap()), &db);
        let bag_value = value(&Rpq::new(Language::parse(pattern).unwrap()).with_bag_semantics(), &db);
        match (set_value, bag_value) {
            (ResilienceValue::Finite(s), ResilienceValue::Finite(b)) => {
                prop_assert!(s <= b, "{}: set {} > bag {}", pattern, s, b);
                prop_assert!(b <= db.total_multiplicity() as u128);
            }
            (s, b) => prop_assert_eq!(s.is_infinite(), b.is_infinite()),
        }
    }

    #[test]
    fn union_resilience_dominates_both_parts(seed in 0u64..300) {
        let db = small_db(seed, 4, 7);
        let l1 = Language::parse("ab").unwrap();
        let l2 = Language::parse("ad|xb").unwrap();
        let union = l1.union(&l2);
        let v1 = value(&Rpq::new(l1), &db);
        let v2 = value(&Rpq::new(l2), &db);
        let vu = value(&Rpq::new(union), &db);
        prop_assert!(vu >= v1.max(v2));
    }

    #[test]
    fn returned_contingency_sets_are_genuine(seed in 0u64..500, pattern in pattern_strategy()) {
        let db = small_db(seed, 4, 7);
        let query = Rpq::new(Language::parse(pattern).unwrap());
        let outcome = solve(&query, &db).unwrap();
        if let (Some(cut), ResilienceValue::Finite(v)) = (&outcome.contingency_set, outcome.value) {
            let set: std::collections::BTreeSet<_> = cut.iter().copied().collect();
            prop_assert!(query.is_contingency_set(&db, &set), "{}", pattern);
            prop_assert_eq!(query.cost(&db, &set), v, "{}", pattern);
        }
    }
}
