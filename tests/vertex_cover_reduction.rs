//! Integration test: the hardness reduction of Proposition 4.11 is validated
//! end to end on small graphs, for the gadgets transcribed from the paper.

use rpq::automata::Language;
use rpq::resilience::algorithms::{solve_with, Algorithm};
use rpq::resilience::gadgets::library;
use rpq::resilience::gadgets::PreGadget;
use rpq::resilience::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

fn check_reduction(gadget: &PreGadget, pattern: &str, graphs: &[UndirectedGraph]) {
    let language = Language::parse(pattern).unwrap();
    let report = gadget.verify(&language);
    assert!(report.is_valid, "gadget for {pattern}: {:?}", report.failure);
    let ell = report.path_length.unwrap();
    assert_eq!(ell % 2, 1, "the condensed match path must have odd length");
    let query = Rpq::new(language);
    for graph in graphs {
        let encoding = gadget.encode_graph(graph);
        let resilience =
            solve_with(Algorithm::ExactBranchAndBound, &query, &encoding).unwrap().value;
        let expected = subdivision_vertex_cover_number(graph, ell) as u128;
        assert_eq!(
            resilience,
            ResilienceValue::Finite(expected),
            "{pattern} on a graph with {} vertices / {} edges",
            graph.num_vertices,
            graph.num_edges()
        );
    }
}

#[test]
fn proposition_4_1_reduction_for_aa() {
    let graphs = vec![
        UndirectedGraph::new(2, [(0, 1)]),
        UndirectedGraph::new(4, [(0, 1), (1, 2), (2, 3)]),
        UndirectedGraph::cycle(3),
        UndirectedGraph::cycle(4),
        UndirectedGraph::new(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]),
    ];
    check_reduction(&library::gadget_aa(), "aa", &graphs);
}

#[test]
fn claim_6_11_reduction_for_aaa() {
    let graphs = vec![UndirectedGraph::new(2, [(0, 1)]), UndirectedGraph::cycle(3)];
    check_reduction(&library::gadget_aaa(), "aaa", &graphs);
}

#[test]
fn proposition_7_4_reduction_for_ab_bc_ca() {
    let graphs = vec![
        UndirectedGraph::new(2, [(0, 1)]),
        UndirectedGraph::new(3, [(0, 1), (1, 2)]),
        UndirectedGraph::cycle(3),
    ];
    check_reduction(&library::gadget_ab_bc_ca(), "ab|bc|ca", &graphs);
}

#[test]
fn proposition_4_13_reduction_for_axb_cxd() {
    // The Figure 4a gadget has 17 facts per edge copy, so keep the graphs tiny
    // to stay within the exact solver's reach.
    let graphs = vec![UndirectedGraph::new(2, [(0, 1)]), UndirectedGraph::new(3, [(0, 1), (1, 2)])];
    check_reduction(&library::gadget_axb_cxd(), "axb|cxd", &graphs);
}

#[test]
fn random_graphs_through_the_aa_reduction() {
    let gadget = library::gadget_aa();
    let language = Language::parse("aa").unwrap();
    let ell = gadget.verify(&language).path_length.unwrap();
    let query = Rpq::new(language);
    for seed in 0..4 {
        let graph = UndirectedGraph::random(5, 0.45, seed);
        let encoding = gadget.encode_graph(&graph);
        let resilience =
            solve_with(Algorithm::ExactBranchAndBound, &query, &encoding).unwrap().value;
        let expected = subdivision_vertex_cover_number(&graph, ell) as u128;
        assert_eq!(resilience, ResilienceValue::Finite(expected), "seed {seed}");
    }
}
