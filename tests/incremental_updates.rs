//! Integration test: incremental solves under randomized edit churn.
//!
//! Drives `PreparedQuery::solve_incremental` through 200 random
//! insert/delete deltas per query family and checks, at **every** snapshot,
//! that the incrementally patched answer agrees with a fresh full solve —
//! value, contingency-set validity and optimality (the witness cost equals
//! the resilience). Where the database is small enough, the subset-
//! enumeration oracle cross-checks the value a third way. The corpus covers
//! the local plan family (the only one with a patching path), a bag-
//! semantics variant, and two non-local families (chain, one-dangling) that
//! must transparently fall back to full solves and still agree.

use std::collections::BTreeSet;

use rpq::automata::alphabet::Letter;
use rpq::graphdb::delta::{materialize, FactChange};
use rpq::resilience::algorithms::{solve_with, Algorithm};
use rpq::resilience::engine::{Engine, SolveMode};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

/// Deterministic xorshift64* PRNG: the churn sequence must be reproducible.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One random delta: mostly single-fact edits, occasionally a small burst.
fn random_delta(
    rng: &mut u64,
    log: &[FactChange],
    nodes: usize,
    labels: &[char],
) -> Vec<FactChange> {
    let burst = if xorshift(rng).is_multiple_of(10) { 2 + (xorshift(rng) % 2) as usize } else { 1 };
    (0..burst)
        .map(|_| {
            // 30% deletes of a random earlier key (which may already be
            // gone — deletes of absent facts must be no-ops end to end).
            if !log.is_empty() && xorshift(rng) % 10 < 3 {
                let pick = (xorshift(rng) as usize) % log.len();
                let (source, label, target) = log[pick].key();
                FactChange::Delete { source: source.to_string(), label, target: target.to_string() }
            } else {
                FactChange::Put {
                    source: format!("n{}", xorshift(rng) as usize % nodes),
                    label: Letter::new(labels[xorshift(rng) as usize % labels.len()]),
                    target: format!("n{}", xorshift(rng) as usize % nodes),
                    multiplicity: 1 + xorshift(rng) % 4,
                    exogenous: xorshift(rng).is_multiple_of(12),
                }
            }
        })
        .collect()
}

/// Runs one query family through the churn, returning how many snapshots the
/// incremental path actually served (vs full rebuilds / fallbacks).
fn churn(pattern: &str, bag: bool, seed: u64, rounds: usize) -> usize {
    let mut query = Rpq::parse(pattern).unwrap();
    if bag {
        query = query.with_bag_semantics();
    }
    let engine = Engine::new();
    let prepared = engine.prepare(&query).unwrap();
    let mut solver = prepared.incremental_solver();
    let mut rng = seed;
    let mut log: Vec<FactChange> = Vec::new();
    let mut incremental_snapshots = 0;
    // Every label the corpus patterns mention, plus noise letters.
    let labels = ['a', 'b', 'c', 'd', 'e', 'x'];
    for round in 0..rounds {
        let delta = random_delta(&mut rng, &log, 8, &labels);
        log.extend(delta.iter().cloned());
        let db = materialize(&log);
        let want_cut = round % 2 == 0;
        let (incremental, mode) = prepared
            .solve_incremental(&mut solver, &db, Some(&delta), want_cut)
            .unwrap_or_else(|e| panic!("{pattern} round {round}: {e}"));
        if mode == SolveMode::Incremental {
            incremental_snapshots += 1;
        }
        // The retained flow must stay feasible after every edit batch:
        // capacity bounds, conservation, and the recorded total.
        solver
            .check_consistency()
            .unwrap_or_else(|e| panic!("{pattern} round {round}: inconsistent residuals: {e}"));
        let fresh = prepared.solve_with_cut(&db, want_cut).unwrap();
        assert_eq!(
            incremental.value, fresh.value,
            "{pattern} (bag={bag}) round {round}: incremental {mode:?} disagrees with fresh"
        );
        if want_cut {
            if let Some(cut) = &incremental.contingency_set {
                let set: BTreeSet<_> = cut.iter().copied().collect();
                assert!(
                    query.is_contingency_set(&db, &set),
                    "{pattern} round {round}: invalid witness"
                );
                assert_eq!(
                    ResilienceValue::Finite(query.cost(&db, &set)),
                    incremental.value,
                    "{pattern} round {round}: witness cost is not optimal"
                );
            }
        }
        // Third opinion on small instances: the subset-enumeration oracle.
        if db.num_facts() <= 7 {
            let oracle = solve_with(Algorithm::ExactEnumeration, &query, &db).unwrap();
            assert_eq!(oracle.value, fresh.value, "{pattern} round {round}: oracle disagrees");
        }
    }
    incremental_snapshots
}

#[test]
fn local_queries_survive_two_hundred_random_edits() {
    // The tentpole path: a local language, patched in place per delta.
    let incremental = churn("ax*b", false, 0x5EED_0001, 200);
    assert!(incremental > 150, "only {incremental}/200 snapshots were incremental");
}

#[test]
fn local_disjunctions_and_bag_semantics_stay_consistent() {
    let incremental = churn("ab|ad|cd", false, 0x5EED_0002, 200);
    assert!(incremental > 150, "only {incremental}/200 snapshots were incremental");
    let incremental = churn("ax*b", true, 0x5EED_0003, 200);
    assert!(incremental > 150, "only {incremental}/200 bag snapshots were incremental");
}

#[test]
fn non_local_plan_families_fall_back_to_full_solves() {
    // Chain (Prp 7.6) and one-dangling (Prp 7.9) plans have no patching
    // path: every snapshot must be a full solve, and still agree.
    assert_eq!(churn("ab|bc", false, 0x5EED_0004, 60), 0);
    assert_eq!(churn("abc|be", false, 0x5EED_0005, 60), 0);
}
