//! End-to-end validation of the parameterized gadget families (Theorem 5.3
//! Case 1, Lemma 6.6, Claims 6.10/6.11/6.14, Proposition 7.11): the driver
//! must produce mechanically verified gadgets for the hard languages it
//! covers, and the vertex-cover reduction built from those gadgets must
//! satisfy the Proposition 4.2 identity exactly.

use rpq::automata::Language;
use rpq::resilience::algorithms::{solve_with, Algorithm};
use rpq::resilience::gadgets::families::{find_gadget, GadgetFamily};
use rpq::resilience::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

fn lang(pattern: &str) -> Language {
    Language::parse(pattern).unwrap()
}

#[test]
fn every_covered_hard_language_gets_a_verified_certificate() {
    // (pattern, family expected to settle it). The driver may legitimately
    // find the certificate through the mirror language (Proposition 6.3).
    let cases: &[(&str, &[GadgetFamily])] = &[
        ("aa", &[GadgetFamily::Figure3b]),
        ("aaa", &[GadgetFamily::Figure3b, GadgetFamily::Figure10]),
        ("aab", &[GadgetFamily::Figure11, GadgetFamily::Figure8]),
        ("baa", &[GadgetFamily::Figure11, GadgetFamily::Figure8]),
        ("abca", &[GadgetFamily::Figure7]),
        ("abcab", &[GadgetFamily::Figure8]),
        ("aba|bab", &[GadgetFamily::Figure9]),
        ("axb|cxd", &[GadgetFamily::Figure4a, GadgetFamily::Figure5Case1]),
        ("aexb|cexd", &[GadgetFamily::Figure5Case1]),
        ("ab|bc|ca", &[GadgetFamily::Figure13]),
        ("abcd|be|ef", &[GadgetFamily::Figure15]),
        ("abcd|bef", &[GadgetFamily::Figure16]),
    ];
    for (pattern, families) in cases {
        let found = find_gadget(&lang(pattern))
            .unwrap_or_else(|| panic!("no verified gadget found for {pattern}"));
        assert!(found.report.is_valid, "{pattern}");
        assert!(
            families.contains(&found.family),
            "{pattern}: expected one of {families:?}, got {:?}",
            found.family
        );
        // Odd condensed path, as required by Definition 4.9.
        assert_eq!(found.report.path_length.unwrap() % 2, 1, "{pattern}");
    }
}

#[test]
fn tractable_languages_never_get_a_gadget() {
    for pattern in ["ax*b", "ab|ad|cd", "abc|abd", "ab|bc", "axb|byc", "abc|be", "abcd|be", "a|b"] {
        assert!(find_gadget(&lang(pattern)).is_none(), "{pattern} is tractable");
    }
}

#[test]
fn family_gadgets_reproduce_the_vertex_cover_identity() {
    // Proposition 4.2 / 4.11: the resilience of the encoding of G equals
    // vc(G) + m(ℓ−1)/2 where ℓ is the condensed path length of the gadget.
    // Exercised here with family-generated (not hand-drawn) gadgets.
    // The encodings are solved with the exponential exact solver, so the
    // graphs are kept small (the identity is checked on larger graphs for the
    // cheaper gadgets in the unit tests of `gadgets::families`).
    let graphs = [
        UndirectedGraph::new(2, [(0, 1)]),
        UndirectedGraph::new(3, [(0, 1), (1, 2)]),
        UndirectedGraph::cycle(3),
    ];
    for pattern in ["aab", "abca", "aba|bab"] {
        let language = lang(pattern);
        let found = find_gadget(&language).unwrap();
        assert!(!found.for_mirror, "{pattern} should be settled without mirroring");
        let ell = found.report.path_length.unwrap();
        let query = Rpq::new(language);
        for graph in &graphs {
            let encoding = found.gadget.encode_graph(graph);
            let resilience =
                solve_with(Algorithm::ExactBranchAndBound, &query, &encoding).unwrap().value;
            let expected = subdivision_vertex_cover_number(graph, ell);
            assert_eq!(
                resilience,
                ResilienceValue::Finite(expected as u128),
                "{pattern} on a graph with {} vertices / {} edges",
                graph.num_vertices,
                graph.num_edges()
            );
        }
    }
}

#[test]
fn mirror_certificates_are_verified_against_the_mirror_language() {
    let found = find_gadget(&lang("baa")).expect("baa is settled through its mirror aab");
    assert!(found.for_mirror);
    // The returned gadget must indeed be a gadget for the mirror language.
    let mirrored = lang("baa").infix_free().mirror();
    assert!(found.gadget.verify(&mirrored).is_valid);
}
