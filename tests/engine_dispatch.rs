//! The unified engine dispatcher: `algorithms::solve` must route each
//! tractable family (local, bipartite chain, one-dangling) to its polynomial
//! algorithm and agree with the exact branch-and-bound backend on small random
//! instances — the workspace-level contract behind funneling the CLI, tests,
//! and benches through `solve` / `solve_with`.

mod common;

use common::FAMILIES;
use rpq::automata::{Alphabet, Language, Word};
use rpq::flow::FlowAlgorithm;
use rpq::graphdb::generate::{random_labeled_graph, word_path};
use rpq::resilience::algorithms::{solve, solve_with, Algorithm, ResilienceError};
use rpq::resilience::engine::{Engine, SolveOptions};
use rpq::resilience::router::{RouteBudget, Router};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

#[test]
fn solve_routes_each_family_to_its_algorithm_and_matches_exact() {
    for &(alphabet, patterns, expected) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for seed in 0..6 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let outcome = solve(&query, &db).unwrap();
                assert_eq!(
                    outcome.algorithm, expected,
                    "{pattern} must dispatch to {expected}, got {}",
                    outcome.algorithm
                );
                let reference =
                    solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap().value;
                assert_eq!(outcome.value, reference, "{pattern}, seed {seed}");
                // Exact outcomes never carry approximation bounds.
                assert!(outcome.bounds.is_none());
                assert!(outcome.is_exact());
            }
        }
    }
}

#[test]
fn prepared_queries_agree_with_the_legacy_dispatcher_on_the_corpus() {
    // `PreparedQuery::solve` must return outcomes identical to the legacy
    // `solve` on the full corpus: same value, same chosen algorithm, same
    // bounds — the plan-once/solve-many contract of the engine redesign.
    let engine = Engine::new();
    for &(alphabet, patterns, expected) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            let prepared = engine.prepare(&query).unwrap();
            assert_eq!(prepared.plan().algorithm, expected, "{pattern}");
            for seed in 0..6 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let legacy = solve(&query, &db).unwrap();
                let fresh = prepared.solve(&db).unwrap();
                assert_eq!(fresh, legacy, "{pattern}, seed {seed}");
            }
        }
    }
}

#[test]
fn prepared_forced_backends_agree_with_legacy_solve_with() {
    let alphabet = Alphabet::from_chars("ab");
    let query = Rpq::new(Language::parse("aa").unwrap());
    let engine = Engine::new();
    for algorithm in Algorithm::ALL {
        let prepared = match engine.prepare_with(algorithm, &query) {
            Ok(prepared) => prepared,
            Err(e) => {
                // The legacy path must refuse the language identically.
                let db = random_labeled_graph(4, 7, &alphabet, 0);
                assert_eq!(solve_with(algorithm, &query, &db).unwrap_err(), e, "{algorithm}");
                continue;
            }
        };
        for seed in 0..4 {
            let db = random_labeled_graph(4, 7, &alphabet, seed);
            assert_eq!(
                prepared.solve(&db).unwrap(),
                solve_with(algorithm, &query, &db).unwrap(),
                "{algorithm}, seed {seed}"
            );
        }
    }
}

#[test]
fn oversized_enumeration_is_a_typed_error_not_a_panic() {
    // 30 facts > the default limit of 24: the subset oracle must refuse with
    // `ResilienceError::InstanceTooLarge` instead of panicking.
    let word = Word::from_letters(std::iter::repeat_n('a'.into(), 30));
    let db = word_path(&word);
    let query = Rpq::parse("aa").unwrap();
    match solve_with(Algorithm::ExactEnumeration, &query, &db) {
        Err(ResilienceError::InstanceTooLarge { facts: 30, limit: 24 }) => {}
        other => panic!("expected InstanceTooLarge, got {other:?}"),
    }
    // A raised limit is honored (and 25 facts stay far below 2^25 ≈ 3·10^7
    // subset checks only because the path is short — keep it at the error
    // path plus one solvable configuration under a custom engine).
    let engine = Engine::with_options(SolveOptions { enumeration_limit: 10, ..Default::default() });
    let small = word_path(&Word::from_str_word("aaaa"));
    assert!(engine.solve_with(Algorithm::ExactEnumeration, &query, &small).is_ok());
    let err = engine.solve_with(Algorithm::ExactEnumeration, &query, &db).unwrap_err();
    assert_eq!(err, ResilienceError::InstanceTooLarge { facts: 30, limit: 10 });
}

#[test]
fn certified_bounds_never_cross_for_any_approx_and_flow_backend_combination() {
    // The crossed-bounds regression: every approximation backend must report
    // `lower <= exact <= upper` on the whole shared corpus, whatever MinCut
    // backend the engine is configured with. A crossing sandwich would be a
    // silently wrong certificate, so it asserts inside
    // `ResilienceOutcome::from_approximation` too — this drives the assert
    // across every combination.
    let approx = [Algorithm::ApproxGreedy, Algorithm::ApproxKDisjoint, Algorithm::TrivialBounds];
    for &(alphabet, patterns, _) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for flow in FlowAlgorithm::SELECTABLE {
                let engine =
                    Engine::with_options(SolveOptions { flow_backend: flow, ..Default::default() });
                for seed in 0..4 {
                    let db = random_labeled_graph(4, 8, &alphabet, seed);
                    let exact =
                        engine.solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap();
                    for algorithm in approx {
                        let Ok(outcome) = engine.solve_with(algorithm, &query, &db) else {
                            continue; // infinite languages refuse greedy/k-approx
                        };
                        let (lower, upper) = outcome.bounds.expect("approximations carry bounds");
                        assert!(lower <= upper, "{pattern}, {algorithm}, {flow}, seed {seed}");
                        match exact.value {
                            ResilienceValue::Finite(value) => assert!(
                                lower <= value && value <= upper,
                                "{pattern}, {algorithm}, {flow}, seed {seed}: \
                                 [{lower}, {upper}] does not sandwich {value}"
                            ),
                            // An infinite resilience has no finite upper
                            // bound; the outcome must say so.
                            ResilienceValue::Infinite => assert!(
                                outcome.value.is_infinite(),
                                "{pattern}, {algorithm}, {flow}, seed {seed}"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn routing_with_an_unlimited_budget_agrees_with_exact_enumeration() {
    // The bit-identical contract: with no deadline set, `route` must answer
    // exactly what the pre-router `solve` answered — cross-checked here
    // against the independent subset-enumeration oracle on the whole corpus.
    let engine = Engine::new();
    for &(alphabet, patterns, expected) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            let prepared = engine.prepare(&query).unwrap();
            for seed in 0..4 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let tiered = prepared.route(&db, &RouteBudget::UNLIMITED).unwrap();
                assert!(!tiered.degraded, "{pattern}, seed {seed}: {}", tiered.reason);
                assert_eq!(tiered.tier, expected.tier(), "{pattern}, seed {seed}");
                assert_eq!(tiered.outcome.algorithm, expected, "{pattern}, seed {seed}");
                assert_eq!(tiered.outcome, prepared.solve(&db).unwrap(), "{pattern}, seed {seed}");
                let oracle = solve_with(Algorithm::ExactEnumeration, &query, &db).unwrap().value;
                assert_eq!(tiered.outcome.value, oracle, "{pattern}, seed {seed}");
            }
        }
    }
}

#[test]
fn an_impossible_budget_degrades_to_certified_bounds_with_the_tier_reported() {
    // A zero cost budget can never fit any projected cost: the router must
    // still answer — with certified bounds that sandwich the true value and
    // an explicit approx-tier verdict, never a refusal.
    let engine = Engine::new();
    let router = Router::new();
    let budget = RouteBudget::with_cost_budget_us(0);
    for &(alphabet, patterns, _) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            let prepared = engine.prepare(&query).unwrap();
            for seed in 0..4 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let tiered = prepared.route_with_cut(&db, true, &budget, &router).unwrap();
                assert!(tiered.degraded, "{pattern}, seed {seed}: {}", tiered.reason);
                assert_eq!(tiered.tier, "approx", "{pattern}, seed {seed}");
                // Degraded answers stay *certified*: either trivially exact
                // (resilience 0 or provably infinite) or a bounds sandwich.
                let truth = prepared.solve(&db).unwrap().value;
                if tiered.outcome.is_exact() {
                    assert_eq!(tiered.outcome.value, truth, "{pattern}, seed {seed}");
                    continue;
                }
                match truth {
                    ResilienceValue::Finite(value) => {
                        let (lower, upper) =
                            tiered.outcome.bounds.expect("degraded answers carry bounds");
                        assert!(
                            lower <= value && value <= upper,
                            "{pattern}, seed {seed}: [{lower}, {upper}] does not sandwich {value}"
                        );
                    }
                    ResilienceValue::Infinite => {
                        assert!(tiered.outcome.value.is_infinite(), "{pattern}, seed {seed}")
                    }
                }
            }
        }
    }
}

#[test]
fn every_applicable_backend_agrees_or_sandwiches_the_exact_value() {
    let alphabet = Alphabet::from_chars("ab");
    let query = Rpq::new(Language::parse("aa").unwrap());
    for seed in 0..4 {
        let db = random_labeled_graph(4, 7, &alphabet, seed);
        let exact = solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap().value;
        for algorithm in Algorithm::ALL {
            let Ok(outcome) = solve_with(algorithm, &query, &db) else {
                continue; // backend legitimately refuses the language
            };
            match outcome.bounds {
                // Exact backends must agree outright.
                None => assert_eq!(outcome.value, exact, "{algorithm}, seed {seed}"),
                // Approximations must sandwich the exact value.
                Some((lower, upper)) => {
                    let exact = exact.finite().unwrap();
                    assert!(lower <= exact && exact <= upper, "{algorithm}, seed {seed}");
                }
            }
        }
    }
}
