//! The unified engine dispatcher: `algorithms::solve` must route each
//! tractable family (local, bipartite chain, one-dangling) to its polynomial
//! algorithm and agree with the exact branch-and-bound backend on small random
//! instances — the workspace-level contract behind funneling the CLI, tests,
//! and benches through `solve` / `solve_with`.

use rpq::automata::{Alphabet, Language};
use rpq::graphdb::generate::random_labeled_graph;
use rpq::resilience::algorithms::{solve, solve_with, Algorithm};
use rpq::resilience::rpq::Rpq;

/// (alphabet, patterns, the algorithm `solve` must select for them).
const FAMILIES: &[(&str, &[&str], Algorithm)] = &[
    ("abx", &["ax*b", "ab|ax", "a|b"], Algorithm::Local),
    // (`ab|cb` is excluded: its infix-free form is local, so `solve`
    // legitimately prefers the Theorem 3.13 algorithm over the chain one.)
    ("abc", &["ab|bc", "axb|byc"], Algorithm::BipartiteChain),
    // (`ab|ce` is likewise local and routes to Theorem 3.13 first.)
    ("abce", &["abc|be"], Algorithm::OneDangling),
    ("ab", &["aa", "ab|bb"], Algorithm::ExactBranchAndBound),
];

#[test]
fn solve_routes_each_family_to_its_algorithm_and_matches_exact() {
    for &(alphabet, patterns, expected) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for seed in 0..6 {
                let db = random_labeled_graph(4, 8, &alphabet, seed);
                let outcome = solve(&query, &db).unwrap();
                assert_eq!(
                    outcome.algorithm, expected,
                    "{pattern} must dispatch to {expected}, got {}",
                    outcome.algorithm
                );
                let reference =
                    solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap().value;
                assert_eq!(outcome.value, reference, "{pattern}, seed {seed}");
                // Exact outcomes never carry approximation bounds.
                assert!(outcome.bounds.is_none());
                assert!(outcome.is_exact());
            }
        }
    }
}

#[test]
fn every_applicable_backend_agrees_or_sandwiches_the_exact_value() {
    let alphabet = Alphabet::from_chars("ab");
    let query = Rpq::new(Language::parse("aa").unwrap());
    for seed in 0..4 {
        let db = random_labeled_graph(4, 7, &alphabet, seed);
        let exact = solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap().value;
        for algorithm in Algorithm::ALL {
            let Ok(outcome) = solve_with(algorithm, &query, &db) else {
                continue; // backend legitimately refuses the language
            };
            match outcome.bounds {
                // Exact backends must agree outright.
                None => assert_eq!(outcome.value, exact, "{algorithm}, seed {seed}"),
                // Approximations must sandwich the exact value.
                Some((lower, upper)) => {
                    let exact = exact.finite().unwrap();
                    assert!(lower <= exact && exact <= upper, "{algorithm}, seed {seed}");
                }
            }
        }
    }
}
