//! Witness soundness across every backend: whenever any `Algorithm` ×
//! `FlowAlgorithm` combination (including the `Auto` flow selector) returns a
//! `contingency_set`, that set must be
//! a genuine contingency set (`Rpq::is_contingency_set`) whose cost equals
//! the reported value — for the approximation backends, the certified upper
//! bound. The corpus covers every dispatch family of `common::FAMILIES`,
//! including the mirrored one-dangling orientation (`cba|eb`), whose witness
//! mapping goes through `GraphDb::reversed`.

mod common;

use common::FAMILIES;
use rpq::automata::{Alphabet, Language};
use rpq::flow::FlowAlgorithm;
use rpq::graphdb::{FactId, GraphDb};
use rpq::resilience::algorithms::{Algorithm, ResilienceError, ResilienceOutcome};
use rpq::resilience::engine::{Engine, SolveOptions};
use rpq::resilience::exact::resilience_exact;
use rpq::resilience::rpq::{ResilienceValue, Rpq};
use std::collections::BTreeSet;

/// Checks the witness invariants of one outcome, if it carries a witness.
fn assert_sound_witness(query: &Rpq, db: &GraphDb, outcome: &ResilienceOutcome, context: &str) {
    let Some(cut) = &outcome.contingency_set else { return };
    let cut: BTreeSet<FactId> = cut.iter().copied().collect();
    assert!(
        query.is_contingency_set(db, &cut),
        "{context}: the returned set does not falsify the query"
    );
    assert_eq!(
        ResilienceValue::Finite(query.cost(db, &cut)),
        outcome.value,
        "{context}: the witness cost must equal the reported value"
    );
}

#[test]
fn every_backend_combination_returns_sound_witnesses_on_the_corpus() {
    for &(alphabet, patterns, _) in FAMILIES {
        let alphabet = Alphabet::from_chars(alphabet);
        for pattern in patterns {
            for bag in [false, true] {
                let mut query = Rpq::new(Language::parse(pattern).unwrap());
                if bag {
                    query = query.with_bag_semantics();
                }
                for seed in 0..3 {
                    let mut db = random_db(&alphabet, seed);
                    if bag {
                        let ids: Vec<FactId> = db.fact_ids().collect();
                        for (i, id) in ids.iter().enumerate() {
                            db.set_multiplicity(*id, 1 + (i as u64 % 3));
                        }
                    }
                    let exact = resilience_exact(&query, &db).value;
                    for algorithm in Algorithm::ALL {
                        for flow_backend in FlowAlgorithm::SELECTABLE {
                            let engine = Engine::with_options(SolveOptions {
                                flow_backend,
                                ..Default::default()
                            });
                            let context = format!(
                                "{pattern} (bag={bag}) via {algorithm}/{flow_backend}, seed {seed}"
                            );
                            let outcome = match engine.solve_with(algorithm, &query, &db) {
                                Ok(outcome) => outcome,
                                Err(ResilienceError::NotApplicable { .. }) => continue,
                                Err(e) => panic!("{context}: {e}"),
                            };
                            assert_sound_witness(&query, &db, &outcome, &context);
                            if algorithm.is_exact() {
                                assert_eq!(outcome.value, exact, "{context}");
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn automatic_dispatch_always_produces_a_witness_on_tractable_families() {
    // With `want_cut` on (the default), every tractable family — local,
    // chain, and now one-dangling in both orientations — must return
    // `Some(contingency_set)` for finite values.
    for &(alphabet, patterns, expected) in FAMILIES {
        if expected == Algorithm::ExactBranchAndBound {
            continue; // the exact fallback also returns witnesses, tested above
        }
        let alphabet = Alphabet::from_chars(alphabet);
        let engine = Engine::new();
        for pattern in patterns {
            let query = Rpq::new(Language::parse(pattern).unwrap());
            for seed in 0..4 {
                let db = random_db(&alphabet, seed);
                let outcome = engine.solve(&query, &db).unwrap();
                assert_eq!(outcome.algorithm, expected, "{pattern}");
                if !outcome.value.is_infinite() {
                    assert!(
                        outcome.contingency_set.is_some(),
                        "{pattern}, seed {seed}: tractable backends must extract witnesses"
                    );
                }
                assert_sound_witness(&query, &db, &outcome, &format!("{pattern}, seed {seed}"));
            }
        }
    }
}

fn random_db(alphabet: &Alphabet, seed: u64) -> GraphDb {
    // ≤ 9 facts: small enough for the exact oracles, rich enough to produce
    // non-trivial cuts (and occasional empty ones, which must also be sound).
    rpq::graphdb::generate::random_labeled_graph(5, 9, alphabet, seed)
}
