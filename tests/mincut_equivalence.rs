//! Integration test: the resilience of `a x* b` in bag semantics equals the
//! classical minimum cut of the corresponding flow network (the
//! correspondence described in the paper's introduction).

use rpq::flow::{Capacity, FlowNetwork};
use rpq::graphdb::generate::flow_instance;
use rpq::graphdb::GraphDb;
use rpq::resilience::algorithms::{solve, Algorithm};
use rpq::resilience::rpq::Rpq;
use std::collections::BTreeMap;

/// Builds the classical flow network of a flow-shaped `a/x/b` database.
fn classical_network(db: &GraphDb) -> FlowNetwork {
    let mut network = FlowNetwork::new();
    let mut vertex_of = BTreeMap::new();
    for node in db.nodes() {
        vertex_of.insert(node, network.add_vertex());
    }
    let source = network.add_vertex();
    let sink = network.add_vertex();
    network.set_source(source);
    network.set_target(sink);
    for (id, fact) in db.facts() {
        let capacity = Capacity::Finite(db.multiplicity(id) as u128);
        match fact.label.as_char() {
            'a' => {
                network.add_edge(source, vertex_of[&fact.source], Capacity::Infinite);
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
            'b' => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
                network.add_edge(vertex_of[&fact.target], sink, Capacity::Infinite);
            }
            _ => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
        }
    }
    network
}

#[test]
fn resilience_of_ax_star_b_equals_classical_mincut() {
    for seed in 0..8 {
        let db = flow_instance(4, 3, 2, 6, seed);
        let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();
        let outcome = solve(&query, &db).unwrap();
        assert_eq!(outcome.algorithm, Algorithm::Local);
        let cut = rpq::flow::min_cut(&classical_network(&db));
        assert_eq!(outcome.value.finite().unwrap(), cut.value.finite().unwrap(), "seed {seed}");
    }
}

#[test]
fn resilience_is_monotone_in_capacities() {
    // Raising a multiplicity can only increase (or keep) the bag resilience.
    let db = flow_instance(3, 3, 2, 4, 99);
    let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();
    let base = solve(&query, &db).unwrap().value.finite().unwrap();
    let mut boosted = db.clone();
    let first = boosted.fact_ids().next().unwrap();
    boosted.set_multiplicity(first, boosted.multiplicity(first) + 10);
    let boosted_value = solve(&query, &boosted).unwrap().value.finite().unwrap();
    assert!(boosted_value >= base);
}

#[test]
fn removing_the_contingency_set_disconnects_the_network() {
    let db = flow_instance(4, 3, 2, 5, 7);
    let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();
    let outcome = solve(&query, &db).unwrap();
    let cut = outcome.contingency_set.expect("local algorithm returns a cut");
    let removed = cut.into_iter().collect();
    assert!(query.is_contingency_set(&db, &removed));
}
