//! Integration test: the Figure 1 classification map is reproduced, and every
//! verdict is backed by a certificate that re-verifies.

use rpq::automata::Language;
use rpq::resilience::classify::{classify, figure1_rows, verify_classification, Classification};

#[test]
fn figure1_regions_are_reproduced() {
    let rows = figure1_rows();
    assert!(rows.len() >= 20, "Figure 1 has many example languages");
    for row in rows {
        let region_ok = match row.expected {
            e if e.starts_with("PTIME") => row.computed.is_tractable(),
            e if e.starts_with("NP-hard") => row.computed.is_np_hard(),
            _ => row.computed.is_unclassified(),
        };
        assert!(
            region_ok,
            "{} expected in region {:?} but classified as {}",
            row.pattern,
            row.expected,
            row.computed.label()
        );
        let language = Language::parse(row.pattern).unwrap();
        assert!(verify_classification(&language, &row.computed), "certificate for {}", row.pattern);
    }
}

#[test]
fn classification_is_stable_under_adding_redundant_words() {
    // Adding a word that already has an infix in L does not change Q_L, hence
    // must not change the classification.
    for (base, redundant) in [("aa", "aaa"), ("ax*b", "aaxbb"), ("ab|bc", "abc")] {
        let l1 = Language::parse(base).unwrap();
        let l2 = l1.union(&Language::parse(redundant).unwrap());
        let c1 = classify(&l1);
        let c2 = classify(&l2);
        assert_eq!(c1.is_tractable(), c2.is_tractable(), "{base} + {redundant}");
        assert_eq!(c1.is_np_hard(), c2.is_np_hard(), "{base} + {redundant}");
    }
}

#[test]
fn known_hard_languages_are_not_claimed_tractable() {
    for pattern in ["aa", "axb|cxd", "ab|bc|ca", "abcd|be|ef", "abcd|bef", "b(aa)*d", "aaaa"] {
        let classification = classify(&Language::parse(pattern).unwrap());
        assert!(
            matches!(classification, Classification::NpHard(_)),
            "{pattern} must be classified NP-hard, got {}",
            classification.label()
        );
    }
}

#[test]
fn known_tractable_languages_are_not_claimed_hard() {
    for pattern in
        ["ax*b", "ab|ad|cd", "abc|abd", "ab|bc", "axb|byc", "abc|be", "abcd|be", "ax*b|xd", "a|b"]
    {
        let classification = classify(&Language::parse(pattern).unwrap());
        assert!(
            classification.is_tractable(),
            "{pattern} must be classified tractable, got {}",
            classification.label()
        );
    }
}
