//! Integration tests for Proposition 6.3 (mirror invariance) and
//! Proposition 5.7 (the neutral-letter dichotomy).

use proptest::prelude::*;
use rpq::automata::{neutral, Alphabet, Language};
use rpq::graphdb::generate::random_labeled_graph;
use rpq::resilience::algorithms::{solve, solve_mirrored};
use rpq::resilience::classify::{classify, classify_with_neutral_letter};
use rpq::resilience::rpq::Rpq;

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn mirror_invariance_of_resilience(
        nodes in 2usize..5,
        facts in 1usize..9,
        seed in any::<u64>(),
    ) {
        let db = random_labeled_graph(nodes, facts, &Alphabet::from_chars("abx"), seed);
        for pattern in ["ax*b", "ab", "aa", "ab|bx"] {
            let q = Rpq::new(Language::parse(pattern).unwrap());
            let direct = solve(&q, &db).unwrap().value;
            let mirrored = solve_mirrored(&q, &db).unwrap().value;
            prop_assert_eq!(direct, mirrored, "{}", pattern);
        }
    }
}

#[test]
fn neutral_letter_dichotomy_is_a_dichotomy() {
    // Every language with a neutral letter is classified (no Unclassified verdicts).
    for pattern in
        ["e*be*ce*|e*de*fe*", "e*(a|c)e*(a|d)e*", "e*ae*", "e*ae*be*", "e*(a|b)e*", "e*ae*be*ce*"]
    {
        let language = Language::parse(pattern).unwrap();
        assert!(
            neutral::is_neutral_letter(&language, 'e'.into()),
            "{pattern} should have e neutral"
        );
        let verdict = classify_with_neutral_letter(&language).unwrap();
        assert!(!verdict.is_unclassified(), "{pattern}: the dichotomy leaves nothing unclassified");
        // The general classifier must agree on the region.
        let general = classify(&language);
        assert_eq!(general.is_tractable(), verdict.is_tractable(), "{pattern}");
    }
}

#[test]
fn padded_languages_from_the_paper() {
    // L1 and L2 after Lemma 5.8: L1's IF is four-legged, L2's IF contains aa.
    let l1 = Language::parse("e*be*ce*|e*de*fe*").unwrap();
    assert!(l1
        .infix_free()
        .equals(&Language::parse("be*c|de*f").unwrap().with_alphabet(l1.alphabet())));
    assert!(rpq::automata::four_legged::is_four_legged(&l1.infix_free()));

    let l2 = Language::parse("e*(a|c)e*(a|d)e*").unwrap();
    let if2 = l2.infix_free();
    assert!(if2.contains(&rpq::automata::Word::from_str_word("aa")));
    assert!(rpq::automata::four_legged::four_legged_witness(&if2).is_none());
}
