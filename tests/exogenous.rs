//! Exogenous facts (weight `+∞`): the setting mentioned in Sections 2 and 8 of
//! the paper, where some facts are declared un-removable. These tests check
//! that the flow-based algorithms, the exact branch-and-bound and the subset
//! enumeration all agree on databases with exogenous facts, and that the
//! resilience correctly becomes `+∞` when every witness walk is protected.

use proptest::prelude::*;
use rpq::automata::{Alphabet, Language, Word};
use rpq::graphdb::generate::{random_labeled_graph, word_path};
use rpq::graphdb::{FactId, GraphDb};
use rpq::resilience::algorithms::{solve, solve_with, Algorithm};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

/// Ground truth through the engine dispatcher (branch and bound backend).
fn exact_value(q: &Rpq, db: &GraphDb) -> ResilienceValue {
    solve_with(Algorithm::ExactBranchAndBound, q, db).unwrap().value
}

/// Ground truth through the engine dispatcher (subset enumeration backend).
fn enumeration_value(q: &Rpq, db: &GraphDb) -> ResilienceValue {
    solve_with(Algorithm::ExactEnumeration, q, db).unwrap().value
}

#[test]
fn exogenous_flags_survive_database_transformations() {
    let mut db = GraphDb::new();
    let f1 = db.add_fact_by_names("u", 'a', "v");
    let f2 = db.add_fact_by_names("v", 'b', "w");
    db.set_exogenous(f1, true);
    assert!(db.is_exogenous(f1));
    assert!(!db.is_exogenous(f2));
    assert!(db.has_exogenous_facts());
    assert_eq!(db.exogenous_facts().collect::<Vec<_>>(), vec![f1]);
    assert_eq!(db.endogenous_facts().collect::<Vec<_>>(), vec![f2]);
    // Mirroring preserves the flags (facts are re-created in order).
    let reversed = db.reversed();
    assert!(reversed.is_exogenous(FactId(0)));
    assert!(!reversed.is_exogenous(FactId(1)));
    // Removing a fact preserves the flags of the remaining facts.
    let without = db.without_facts(&[f2].into_iter().collect());
    assert_eq!(without.num_facts(), 1);
    assert!(without.is_exogenous(FactId(0)));
    // Flags can be cleared again.
    db.set_exogenous(f1, false);
    assert!(!db.has_exogenous_facts());
}

#[test]
fn fully_protected_walks_give_infinite_resilience() {
    // a x b path where every fact is exogenous: nothing can be removed.
    let mut db = word_path(&Word::from_str_word("axb"));
    for fact in db.fact_ids().collect::<Vec<_>>() {
        db.set_exogenous(fact, true);
    }
    let query = Rpq::parse("ax*b").unwrap();
    assert_eq!(solve(&query, &db).unwrap().value, ResilienceValue::Infinite);
    assert_eq!(exact_value(&query, &db), ResilienceValue::Infinite);
    assert_eq!(enumeration_value(&query, &db), ResilienceValue::Infinite);
}

#[test]
fn protected_facts_redirect_the_cut() {
    // A single a x b route under bag semantics: the cheapest repair is the
    // a-fact, unless that fact is declared exogenous, in which case the cut
    // must pay for the next-cheapest fact instead.
    let mut db = GraphDb::new();
    let s = db.node("s");
    let u = db.node("u");
    let v = db.node("v");
    let t = db.node("t");
    let fa = db.add_fact_with_multiplicity(s, 'a'.into(), u, 1);
    let fx = db.add_fact_with_multiplicity(u, 'x'.into(), v, 5);
    let fb = db.add_fact_with_multiplicity(v, 'b'.into(), t, 3);
    let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();
    // Unprotected: the a-fact (cost 1) is the optimal cut.
    let outcome = solve_with(Algorithm::Local, &query, &db).unwrap();
    assert_eq!(outcome.value, ResilienceValue::Finite(1));
    assert_eq!(outcome.contingency_set.unwrap(), vec![fa]);
    // Protect the a-fact: the cut must use the b-fact (cost 3), never fa.
    db.set_exogenous(fa, true);
    let outcome = solve_with(Algorithm::Local, &query, &db).unwrap();
    assert_eq!(outcome.value, ResilienceValue::Finite(3));
    let cut: Vec<FactId> = outcome.contingency_set.unwrap();
    assert_eq!(cut, vec![fb]);
    assert_eq!(exact_value(&query, &db), ResilienceValue::Finite(3));
    // Protect the b-fact as well: only the expensive x-fact remains cuttable.
    db.set_exogenous(fb, true);
    let outcome = solve_with(Algorithm::Local, &query, &db).unwrap();
    assert_eq!(outcome.value, ResilienceValue::Finite(5));
    assert_eq!(outcome.contingency_set.unwrap(), vec![fx]);
    // Protect everything: the violation can no longer be broken.
    db.set_exogenous(fx, true);
    assert_eq!(solve(&query, &db).unwrap().value, ResilienceValue::Infinite);
    assert_eq!(exact_value(&query, &db), ResilienceValue::Infinite);
}

#[test]
fn chain_algorithm_supports_exogenous_facts() {
    // ab|bc is a bipartite chain language; protect the shared b-fact.
    let mut db = GraphDb::new();
    let a = db.add_fact_by_names("u", 'a', "v");
    let b = db.add_fact_by_names("v", 'b', "w");
    let c = db.add_fact_by_names("w", 'c', "x");
    let query = Rpq::parse("ab|bc").unwrap();
    assert_eq!(solve(&query, &db).unwrap().value, ResilienceValue::Finite(1));
    db.set_exogenous(b, true);
    let outcome = solve_with(Algorithm::BipartiteChain, &query, &db).unwrap();
    // Both ab and bc must be broken without touching the b-fact: remove a and c.
    assert_eq!(outcome.value, ResilienceValue::Finite(2));
    assert_eq!(exact_value(&query, &db), ResilienceValue::Finite(2));
    let _ = (a, c);
    // A single-letter word matched by an exogenous fact is unbreakable.
    let mut db2 = GraphDb::new();
    let lone = db2.add_fact_by_names("u", 'a', "v");
    db2.set_exogenous(lone, true);
    let query2 = Rpq::parse("a|bc").unwrap();
    assert_eq!(
        solve_with(Algorithm::BipartiteChain, &query2, &db2).unwrap().value,
        ResilienceValue::Infinite
    );
}

#[test]
fn one_dangling_falls_back_to_exact_with_exogenous_facts() {
    let mut db = word_path(&Word::from_str_word("abc"));
    let first = db.fact_ids().next().unwrap();
    db.set_exogenous(first, true);
    let query = Rpq::parse("abc|be").unwrap();
    // The dispatcher must not use the one-dangling rewriting here.
    let outcome = solve(&query, &db).unwrap();
    assert_eq!(outcome.algorithm, Algorithm::ExactBranchAndBound);
    assert_eq!(outcome.value, enumeration_value(&query, &db));
    // Requesting the rewriting explicitly is rejected.
    assert!(solve_with(Algorithm::OneDangling, &query, &db).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On random small databases with random exogenous marks, the dispatcher
    /// (flow algorithms or branch and bound) agrees with subset enumeration
    /// for both a local and a bipartite-chain language.
    #[test]
    fn solvers_agree_with_enumeration_under_exogenous_marks(
        seed in 0u64..1000,
        mark_mask in 0u32..256,
        pattern in prop_oneof![Just("ax*b"), Just("ab|ad"), Just("ab|bc"), Just("aa")],
    ) {
        let alphabet = Alphabet::from_chars("abxd");
        let mut db = random_labeled_graph(4, 7, &alphabet, seed);
        let facts: Vec<FactId> = db.fact_ids().collect();
        for (i, fact) in facts.iter().enumerate() {
            if mark_mask & (1 << (i % 8)) != 0 && i % 3 == 0 {
                db.set_exogenous(*fact, true);
            }
        }
        let query = Rpq::new(Language::parse(pattern).unwrap());
        let fast = solve(&query, &db).unwrap();
        let reference = enumeration_value(&query, &db);
        prop_assert_eq!(fast.value, reference, "pattern {} seed {}", pattern, seed);
        // Any returned contingency set avoids exogenous facts and really works.
        if let (Some(cut), ResilienceValue::Finite(_)) = (&fast.contingency_set, fast.value) {
            prop_assert!(cut.iter().all(|f| !db.is_exogenous(*f)));
            prop_assert!(query.is_contingency_set(&db, &cut.iter().copied().collect()));
        }
    }
}
