//! Corpus shared by the engine integration tests (`engine_dispatch.rs`,
//! `flow_backends.rs`): keeping it in one place means a newly added family
//! automatically gains both dispatcher-agreement and flow-backend coverage.

// Each integration-test crate compiles its own copy of this module and uses
// only a subset of it.
#![allow(dead_code)]

use rpq::resilience::algorithms::Algorithm;

/// (alphabet, patterns, the algorithm `solve` must select for them): one
/// entry per dispatch family.
pub const FAMILIES: &[(&str, &[&str], Algorithm)] = &[
    ("abx", &["ax*b", "ab|ax", "a|b"], Algorithm::Local),
    // (`ab|cb` is excluded: its infix-free form is local, so `solve`
    // legitimately prefers the Theorem 3.13 algorithm over the chain one.)
    ("abc", &["ab|bc", "axb|byc"], Algorithm::BipartiteChain),
    // (`ab|ce` is likewise local and routes to Theorem 3.13 first.)
    // `cba|eb` is the mirror of `abc|be`: its normalization reverses every
    // database (Proposition 6.3), covering the mirrored witness mapping.
    ("abce", &["abc|be", "cba|eb"], Algorithm::OneDangling),
    ("ab", &["aa", "ab|bb"], Algorithm::ExactBranchAndBound),
];

/// Whether a family entry routes to one of the flow-based (MinCut) tractable
/// algorithms — the subset `flow_backends.rs` exercises per backend.
pub fn is_flow_based(algorithm: Algorithm) -> bool {
    matches!(algorithm, Algorithm::Local | Algorithm::BipartiteChain | Algorithm::OneDangling)
}
