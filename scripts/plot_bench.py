#!/usr/bin/env python3
"""Plot time-vs-size series from committed BENCH_*.json artifacts as SVG.

The vendored Criterion stub persists one JSON object per bench target
(``CRITERION_SAVE=BENCH_<target>.json cargo bench -p rpq-bench --bench
<target>``; see EXPERIMENTS.md) mapping each benchmark name to
``{"min_ns": ..., "median_ns": ..., "samples": ...}`` — artifacts produced
since the stub grew tail-quantile fields additionally carry ``p50_ns`` /
``p95_ns`` / ``p99_ns`` / ``max_ns``. Benchmark names are slash-separated;
when the last component is a number it is a swept parameter (database facts
|D|, jobs, ...), e.g.::

    scaling/local/256            -> series "scaling/local", x = 256
    batch_parallel/engine/jobs_2/512 -> series ".../jobs_2", x = 512

This script groups such names into series and renders one log-log SVG chart
per input file (median ns vs the swept parameter). When a record carries
``p95_ns`` the series also gets a dashed tail line (the latency-histogram
summary measured by the stub); older artifacts without quantile fields
render exactly as before. Names without a numeric suffix are listed in the
chart footer but not plotted. Standard library only — no matplotlib in the
offline build image.

Usage:
    python3 scripts/plot_bench.py BENCH_scaling.json [more.json ...] [-o DIR]
"""

import argparse
import json
import math
import sys
from pathlib import Path

# Categorical palette (validated, fixed assignment order — never cycled;
# series beyond the eighth fold into the footer rather than invent a hue).
SERIES_COLORS = [
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
]
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e7e6e2"

WIDTH, HEIGHT = 760, 440
MARGIN = {"left": 86, "right": 24, "top": 64, "bottom": 56}


def load_series(path):
    """Splits a bench artifact into plottable series and leftover names."""
    data = json.loads(Path(path).read_text())
    series, leftovers = {}, []
    for name, record in sorted(data.items()):
        parts = name.split("/")
        try:
            x = float(parts[-1])
        except ValueError:
            leftovers.append(name)
            continue
        point = (x, record["median_ns"], record.get("p95_ns"))
        series.setdefault("/".join(parts[:-1]), []).append(point)
    for points in series.values():
        points.sort()
    return series, leftovers


def fmt_time(ns):
    for unit, scale in [("s", 1e9), ("ms", 1e6), ("µs", 1e3)]:
        if ns >= scale:
            value = ns / scale
            return f"{value:.0f} {unit}" if value >= 10 else f"{value:.1f} {unit}"
    return f"{ns:.0f} ns"


def fmt_x(x):
    return f"{x:g}"


def log_ticks(lo, hi):
    """Powers of ten covering [lo, hi] (at least two ticks)."""
    first, last = math.floor(math.log10(lo)), math.ceil(math.log10(hi))
    if first == last:
        last += 1
    return [10.0**e for e in range(first, last + 1)]


def svg_escape(text):
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render(title, series, leftovers):
    """One log-log SVG line chart: median time vs the swept parameter."""
    plotted = list(series.items())[: len(SERIES_COLORS)]
    dropped = [name for name, _ in list(series.items())[len(SERIES_COLORS):]]
    xs = [x for _, pts in plotted for x, _, _ in pts]
    ys = [y for _, pts in plotted for _, y, _ in pts]
    ys += [p95 for _, pts in plotted for _, _, p95 in pts if p95 is not None]
    has_p95 = any(p95 is not None for _, pts in plotted for _, _, p95 in pts)
    x_lo, x_hi = min(xs), max(xs)
    if x_lo <= 0:  # log scale needs positive x; nudge a swept 0 to 0.5
        xs = [max(x, 0.5) for x in xs]
        x_lo = min(xs)
    x_ticks = log_ticks(x_lo, x_hi)
    y_ticks = log_ticks(min(ys), max(ys))
    plot_w = WIDTH - MARGIN["left"] - MARGIN["right"]
    plot_h = HEIGHT - MARGIN["top"] - MARGIN["bottom"]

    def sx(x):
        lo, hi = math.log10(x_ticks[0]), math.log10(x_ticks[-1])
        return MARGIN["left"] + (math.log10(max(x, 0.5)) - lo) / (hi - lo) * plot_w

    def sy(y):
        lo, hi = math.log10(y_ticks[0]), math.log10(y_ticks[-1])
        return MARGIN["top"] + plot_h - (math.log10(y) - lo) / (hi - lo) * plot_h

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="system-ui, sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="{SURFACE}"/>',
        f'<text x="{MARGIN["left"]}" y="26" font-size="15" font-weight="600" '
        f'fill="{TEXT_PRIMARY}">{svg_escape(title)}</text>',
        f'<text x="{MARGIN["left"]}" y="44" font-size="11" '
        f'fill="{TEXT_SECONDARY}">'
        + svg_escape(
            "median wall-clock (log) vs swept parameter (log)"
            + ("; dashed = p95" if has_p95 else "")
        )
        + "</text>",
    ]
    # Recessive grid + tick labels.
    for y in y_ticks:
        py = sy(y)
        out.append(
            f'<line x1="{MARGIN["left"]}" y1="{py:.1f}" '
            f'x2="{WIDTH - MARGIN["right"]}" y2="{py:.1f}" '
            f'stroke="{GRID}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{MARGIN["left"] - 8}" y="{py + 4:.1f}" font-size="11" '
            f'text-anchor="end" fill="{TEXT_SECONDARY}">{fmt_time(y)}</text>'
        )
    base = MARGIN["top"] + plot_h
    for x in x_ticks:
        px = sx(x)
        out.append(
            f'<line x1="{px:.1f}" y1="{base}" x2="{px:.1f}" y2="{base + 4}" '
            f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{px:.1f}" y="{base + 18}" font-size="11" '
            f'text-anchor="middle" fill="{TEXT_SECONDARY}">{fmt_x(x)}</text>'
        )
    out.append(
        f'<line x1="{MARGIN["left"]}" y1="{base}" '
        f'x2="{WIDTH - MARGIN["right"]}" y2="{base}" '
        f'stroke="{TEXT_SECONDARY}" stroke-width="1"/>'
    )

    for i, (name, points) in enumerate(plotted):
        color = SERIES_COLORS[i]
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y, _ in points)
        out.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="2" stroke-linejoin="round"/>'
        )
        tail = [(x, p95) for x, _, p95 in points if p95 is not None]
        if tail:
            tail_path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in tail)
            out.append(
                f'<polyline points="{tail_path}" fill="none" stroke="{color}" '
                f'stroke-width="1.5" stroke-dasharray="5 4" opacity="0.65" '
                f'stroke-linejoin="round"/>'
            )
        for x, y, p95 in points:
            label = f"{svg_escape(name)}: {fmt_x(x)} → {fmt_time(y)}"
            if p95 is not None:
                label += f" (p95 {fmt_time(p95)})"
            out.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                f'fill="{color}" stroke="{SURFACE}" stroke-width="2">'
                f"<title>{label}</title>"
                f"</circle>"
            )
        # Legend row (color chip + name in text ink, never series-colored).
        lx = MARGIN["left"] + (i % 4) * 170
        ly = HEIGHT - 26 + (i // 4) * 14
        out.append(f'<rect x="{lx}" y="{ly - 8}" width="9" height="9" rx="2" fill="{color}"/>')
        out.append(
            f'<text x="{lx + 14}" y="{ly}" font-size="11" '
            f'fill="{TEXT_PRIMARY}">{svg_escape(name)}</text>'
        )
    footer = []
    if leftovers:
        footer.append(f"{len(leftovers)} non-swept benchmark(s) not plotted")
    if dropped:
        footer.append(f"{len(dropped)} series beyond the 8-color budget omitted")
    if footer:
        out.append(
            f'<text x="{WIDTH - MARGIN["right"]}" y="{HEIGHT - 8}" font-size="10" '
            f'text-anchor="end" fill="{TEXT_SECONDARY}">{svg_escape("; ".join(footer))}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="BENCH_*.json files")
    parser.add_argument("-o", "--outdir", default="plots", help="output directory")
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    status = 0
    for artifact in args.artifacts:
        series, leftovers = load_series(artifact)
        stem = Path(artifact).stem
        if not series:
            print(f"{artifact}: no numeric-suffixed series to plot (skipped)")
            continue
        svg = render(stem, series, leftovers)
        target = outdir / f"{stem}.svg"
        target.write_text(svg)
        print(f"{artifact}: {len(series)} series -> {target}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
