//! Boolean RPQ evaluation and match enumeration.
//!
//! The query `Q_L` holds on a database `D` when `D` contains an `L`-walk: a
//! sequence of consecutive facts whose labels spell a word of `L`
//! (walk semantics — nodes and facts may repeat). Evaluation is the standard
//! product construction between the database and an ε-NFA for `L`, followed by
//! a reachability test (cf. [34, Lemma 3.1] in the paper).

use crate::db::{FactId, GraphDb, NodeId};
use rpq_automata::enfa::Enfa;
use rpq_automata::finite::FiniteLanguage;
use rpq_automata::language::Language;
use rpq_automata::word::Word;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Whether `Q_L(D)` holds, for `L` given by an ε-NFA.
pub fn satisfies_enfa(db: &GraphDb, enfa: &Enfa) -> bool {
    satisfies_enfa_excluding(db, enfa, &BTreeSet::new())
}

/// Whether `Q_L(D)` holds.
pub fn satisfies(db: &GraphDb, language: &Language) -> bool {
    satisfies_enfa(db, &rpq_automata::language::enfa_from_dfa(language.dfa()))
}

/// Whether `Q_L(D \ excluded)` holds, i.e. the query still holds after
/// removing the given facts. This is the primitive used to check contingency
/// sets without materializing sub-databases.
pub fn satisfies_excluding(db: &GraphDb, language: &Language, excluded: &BTreeSet<FactId>) -> bool {
    satisfies_enfa_excluding(db, &rpq_automata::language::enfa_from_dfa(language.dfa()), excluded)
}

/// Whether `Q_L(D \ excluded)` holds, for `L` given by an ε-NFA.
pub fn satisfies_enfa_excluding(db: &GraphDb, enfa: &Enfa, excluded: &BTreeSet<FactId>) -> bool {
    find_witness_walk_enfa(db, enfa, excluded).is_some() || accepts_empty_word(enfa)
}

fn accepts_empty_word(enfa: &Enfa) -> bool {
    enfa.accepts(&Word::epsilon())
}

/// Finds an `L`-walk in `D \ excluded`, returned as the sequence of facts
/// traversed, or `None` if no such walk exists.
///
/// If `ε ∈ L` the query trivially holds but the returned walk, being a
/// sequence of facts, would be empty; this function then returns
/// `Some(vec![])` only when an empty walk witnesses the query, i.e. always.
/// Callers that need "the query holds for a non-trivial reason" should check
/// `ε ∈ L` separately (the resilience of such queries is `+∞` anyway).
pub fn find_witness_walk(
    db: &GraphDb,
    language: &Language,
    excluded: &BTreeSet<FactId>,
) -> Option<Vec<FactId>> {
    find_witness_walk_enfa(db, &rpq_automata::language::enfa_from_dfa(language.dfa()), excluded)
}

/// ε-NFA version of [`find_witness_walk`].
pub fn find_witness_walk_enfa(
    db: &GraphDb,
    enfa: &Enfa,
    excluded: &BTreeSet<FactId>,
) -> Option<Vec<FactId>> {
    if accepts_empty_word(enfa) {
        return Some(Vec::new());
    }
    // Product reachability: states are (node, automaton state). We search by
    // BFS, which yields a witness walk using a minimal number of facts.
    // ε-transitions of the automaton move between product states for free.
    let initial_closure = enfa.epsilon_closure(enfa.initial_states());

    // Pre-index ε-successors and letter transitions by (state, letter).
    let mut eps_succ: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut letter_succ: BTreeMap<(usize, char), Vec<usize>> = BTreeMap::new();
    for t in enfa.transitions() {
        match t.label {
            None => eps_succ.entry(t.from).or_default().push(t.to),
            Some(l) => letter_succ.entry((t.from, l.0)).or_default().push(t.to),
        }
    }

    type Product = (NodeId, usize);
    let mut parent: ParentMap = BTreeMap::new();
    let mut seen: BTreeSet<Product> = BTreeSet::new();
    let mut queue: VecDeque<Product> = VecDeque::new();

    for node in db.nodes() {
        for &state in &initial_closure {
            let p = (node, state);
            if seen.insert(p) {
                if enfa.is_final(state) {
                    // ε ∈ L handled above; a final state in the initial closure
                    // with no facts read means the empty word is accepted.
                    return Some(Vec::new());
                }
                queue.push_back(p);
            }
        }
    }

    while let Some((node, state)) = queue.pop_front() {
        // ε-moves of the automaton (same database node).
        if let Some(succs) = eps_succ.get(&state) {
            for &next_state in succs {
                let p = (node, next_state);
                if seen.insert(p) {
                    parent.insert(p, ((node, state), None));
                    if enfa.is_final(next_state) {
                        return Some(reconstruct(p, &parent));
                    }
                    queue.push_back(p);
                }
            }
        }
        // Fact moves: follow an outgoing fact whose label has a transition.
        for fact_id in db.out_facts(node) {
            if excluded.contains(&fact_id) {
                continue;
            }
            let fact = db.fact(fact_id);
            if let Some(succs) = letter_succ.get(&(state, fact.label.0)) {
                for &next_state in succs {
                    let p = (fact.target, next_state);
                    if seen.insert(p) {
                        parent.insert(p, ((node, state), Some(fact_id)));
                        if enfa.is_final(next_state) {
                            return Some(reconstruct(p, &parent));
                        }
                        queue.push_back(p);
                    }
                }
            }
        }
    }
    None
}

/// BFS predecessor map over product states `(node, automaton state)`: each
/// entry records the preceding product state and the fact traversed, if any.
type ParentMap = BTreeMap<(NodeId, usize), ((NodeId, usize), Option<FactId>)>;

fn reconstruct(end: (NodeId, usize), parent: &ParentMap) -> Vec<FactId> {
    let mut facts = Vec::new();
    let mut current = end;
    while let Some(&(prev, fact)) = parent.get(&current) {
        if let Some(f) = fact {
            facts.push(f);
        }
        current = prev;
    }
    facts.reverse();
    facts
}

/// Enumerates the **matches** of a finite language on the database
/// (Section 4.3): every set of facts `{e₁, …, eₘ}` underlying an `L`-walk.
/// Several walks may induce the same match; matches are deduplicated.
///
/// The enumeration is exponential in the word length in the worst case (walks
/// may revisit facts); it is intended for the small gadget databases and the
/// small instances used to validate hardness reductions, not for large data.
pub fn enumerate_matches(db: &GraphDb, language: &FiniteLanguage) -> Vec<BTreeSet<FactId>> {
    let mut matches: BTreeSet<BTreeSet<FactId>> = BTreeSet::new();
    for word in language.words() {
        if word.is_empty() {
            matches.insert(BTreeSet::new());
            continue;
        }
        // DFS over partial walks labeled by the word's prefix.
        let mut stack: Vec<(usize, NodeId, Vec<FactId>)> = Vec::new();
        for node in db.nodes() {
            stack.push((0, node, Vec::new()));
        }
        while let Some((pos, node, walk)) = stack.pop() {
            if pos == word.len() {
                matches.insert(walk.iter().copied().collect());
                continue;
            }
            let letter = word.letter_at(pos);
            for fact_id in db.out_facts(node) {
                let fact = db.fact(fact_id);
                if fact.label == letter {
                    let mut next_walk = walk.clone();
                    next_walk.push(fact_id);
                    stack.push((pos + 1, fact.target, next_walk));
                }
            }
        }
    }
    matches.into_iter().collect()
}

/// Enumerates the matches of an arbitrary regular language on an **acyclic**
/// database: the sets of facts underlying `L`-walks.
///
/// On an acyclic database every walk is a simple path, so the enumeration is
/// finite and exact even for infinite languages (this is what the hardness
/// gadgets of Section 5 need, e.g. for `a x* b | c x d`). Returns `None` when
/// the database has a directed cycle, in which case the caller should fall
/// back to [`enumerate_matches`] with a finite language.
pub fn enumerate_matches_regular(
    db: &GraphDb,
    language: &Language,
) -> Option<Vec<BTreeSet<FactId>>> {
    if has_directed_cycle(db) {
        return None;
    }
    let mut matches: BTreeSet<BTreeSet<FactId>> = BTreeSet::new();
    if language.contains(&Word::epsilon()) {
        matches.insert(BTreeSet::new());
    }
    // DFS over all walks (= simple paths, the database being acyclic).
    let mut stack: Vec<(NodeId, Vec<FactId>, Word)> = Vec::new();
    for node in db.nodes() {
        stack.push((node, Vec::new(), Word::epsilon()));
    }
    while let Some((node, walk, word)) = stack.pop() {
        if !walk.is_empty() && language.contains(&word) {
            matches.insert(walk.iter().copied().collect());
        }
        for fact_id in db.out_facts(node) {
            let fact = db.fact(fact_id);
            let mut next_walk = walk.clone();
            next_walk.push(fact_id);
            let next_word = word.concat(&Word::single(fact.label));
            stack.push((fact.target, next_walk, next_word));
        }
    }
    Some(matches.into_iter().collect())
}

/// Whether the database has a directed cycle.
pub fn has_directed_cycle(db: &GraphDb) -> bool {
    // DFS with colors over nodes.
    let n = db.num_nodes();
    let mut color = vec![0u8; n];
    fn dfs(v: NodeId, db: &GraphDb, color: &mut [u8]) -> bool {
        color[v.0 as usize] = 1;
        for f in db.out_facts(v) {
            let t = db.fact(f).target;
            let state = color[t.0 as usize];
            if state == 1 || (state == 0 && dfs(t, db, color)) {
                return true;
            }
        }
        color[v.0 as usize] = 2;
        false
    }
    for v in db.nodes() {
        if color[v.0 as usize] == 0 && dfs(v, db, &mut color) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Language;

    #[test]
    fn cycle_detection() {
        let mut db = GraphDb::new();
        db.add_fact_by_names("u", 'a', "v");
        db.add_fact_by_names("v", 'a', "w");
        assert!(!has_directed_cycle(&db));
        db.add_fact_by_names("w", 'a', "u");
        assert!(has_directed_cycle(&db));
    }

    #[test]
    fn regular_match_enumeration_on_dag() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("s", 'a', "u");
        let f2 = db.add_fact_by_names("u", 'x', "v");
        let f3 = db.add_fact_by_names("v", 'x', "w");
        let f4 = db.add_fact_by_names("w", 'b', "t");
        let lang = Language::parse("ax*b").unwrap();
        let matches = enumerate_matches_regular(&db, &lang).unwrap();
        // The only L-walk is the full path a x x b.
        assert_eq!(matches, vec![[f1, f2, f3, f4].into_iter().collect::<BTreeSet<_>>()]);
        // The xx query has exactly one match too.
        let matches = enumerate_matches_regular(&db, &Language::parse("x*").unwrap()).unwrap();
        // x, xx, and the empty match (ε ∈ x*).
        assert_eq!(matches.len(), 4);
        // On a cyclic database, the enumeration refuses to run.
        let mut cyclic = GraphDb::new();
        cyclic.add_fact_by_names("u", 'a', "v");
        cyclic.add_fact_by_names("v", 'a', "u");
        assert!(enumerate_matches_regular(&cyclic, &lang).is_none());
    }

    fn path_db() -> GraphDb {
        let mut db = GraphDb::new();
        db.add_fact_by_names("s", 'a', "u");
        db.add_fact_by_names("u", 'x', "v");
        db.add_fact_by_names("v", 'x', "w");
        db.add_fact_by_names("w", 'b', "t");
        db
    }

    #[test]
    fn satisfies_simple_walks() {
        let db = path_db();
        assert!(satisfies(&db, &Language::parse("ax*b").unwrap()));
        assert!(satisfies(&db, &Language::parse("axxb").unwrap()));
        assert!(satisfies(&db, &Language::parse("xx").unwrap()));
        assert!(!satisfies(&db, &Language::parse("axb").unwrap()));
        assert!(!satisfies(&db, &Language::parse("ba").unwrap()));
        assert!(!satisfies(&db, &Language::parse("aa").unwrap()));
    }

    #[test]
    fn epsilon_query_always_holds() {
        let db = GraphDb::new();
        assert!(satisfies(&db, &Language::parse("a*").unwrap()));
        assert!(satisfies(&db, &Language::parse("ε").unwrap()));
        assert!(!satisfies(&db, &Language::parse("a").unwrap()));
    }

    #[test]
    fn excluding_facts_changes_the_answer() {
        let db = path_db();
        let l = Language::parse("ax*b").unwrap();
        let a_fact = db
            .find_fact(
                db.find_node("s").unwrap(),
                rpq_automata::alphabet::Letter('a'),
                db.find_node("u").unwrap(),
            )
            .unwrap();
        let excluded: BTreeSet<FactId> = [a_fact].into_iter().collect();
        assert!(satisfies(&db, &l));
        assert!(!satisfies_excluding(&db, &l, &excluded));
        // Excluding an x still leaves... no a-to-b path, since the only a-path
        // runs through both x facts.
        let x_fact = db
            .find_fact(
                db.find_node("u").unwrap(),
                rpq_automata::alphabet::Letter('x'),
                db.find_node("v").unwrap(),
            )
            .unwrap();
        assert!(!satisfies_excluding(&db, &l, &[x_fact].into_iter().collect()));
        // But the query xx alone survives removing the a fact.
        assert!(satisfies_excluding(&db, &Language::parse("xx").unwrap(), &excluded));
    }

    #[test]
    fn witness_walk_is_a_real_walk() {
        let db = path_db();
        let l = Language::parse("ax*b").unwrap();
        let walk = find_witness_walk(&db, &l, &BTreeSet::new()).unwrap();
        assert_eq!(walk.len(), 4);
        // Consecutive facts must be adjacent and the labels must spell a word of L.
        let word: String = walk.iter().map(|&f| db.fact(f).label.as_char()).collect();
        assert!(l.contains_str(&word).unwrap());
        for pair in walk.windows(2) {
            assert_eq!(db.fact(pair[0]).target, db.fact(pair[1]).source);
        }
    }

    #[test]
    fn witness_walk_none_when_query_false() {
        let db = path_db();
        assert!(find_witness_walk(&db, &Language::parse("aa").unwrap(), &BTreeSet::new()).is_none());
    }

    #[test]
    fn walks_may_reuse_facts() {
        // A cycle u -a-> v -a-> u allows the walk aaa even with only 2 facts.
        let mut db = GraphDb::new();
        db.add_fact_by_names("u", 'a', "v");
        db.add_fact_by_names("v", 'a', "u");
        assert!(satisfies(&db, &Language::parse("aaa").unwrap()));
        assert!(satisfies(&db, &Language::parse("aaaaaa").unwrap()));
        let walk =
            find_witness_walk(&db, &Language::parse("aaa").unwrap(), &BTreeSet::new()).unwrap();
        assert_eq!(walk.len(), 3);
        // Only two distinct facts are used.
        let distinct: BTreeSet<FactId> = walk.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn enumerate_matches_of_aa() {
        // Figure 3c: the graph of aa-matches of the completed gadget is a path.
        // Here: a smaller example, s -a-> u -a-> v -a-> w has two aa-matches.
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("s", 'a', "u");
        let f2 = db.add_fact_by_names("u", 'a', "v");
        let f3 = db.add_fact_by_names("v", 'a', "w");
        let lang = FiniteLanguage::from_strs(["aa"]);
        let matches = enumerate_matches(&db, &lang);
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&[f1, f2].into_iter().collect()));
        assert!(matches.contains(&[f2, f3].into_iter().collect()));
    }

    #[test]
    fn enumerate_matches_with_self_loop() {
        // A self-loop a on node u: the walk aa uses the same fact twice, so
        // the match is the singleton {loop}.
        let mut db = GraphDb::new();
        let u = db.node("u");
        let loop_fact = db.add_fact(u, rpq_automata::alphabet::Letter('a'), u);
        let matches = enumerate_matches(&db, &FiniteLanguage::from_strs(["aa"]));
        assert_eq!(matches, vec![[loop_fact].into_iter().collect::<BTreeSet<_>>()]);
    }

    #[test]
    fn enumerate_matches_multiple_words() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("1", 'a', "2");
        let f2 = db.add_fact_by_names("2", 'b', "3");
        let f3 = db.add_fact_by_names("2", 'c', "3");
        let lang = FiniteLanguage::from_strs(["ab", "ac"]);
        let matches = enumerate_matches(&db, &lang);
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&[f1, f2].into_iter().collect()));
        assert!(matches.contains(&[f1, f3].into_iter().collect()));
    }
}
