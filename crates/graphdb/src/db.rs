//! The graph-database store.

use rpq_automata::alphabet::{Alphabet, Letter};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a node (domain element) of a graph database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a fact (labeled edge) of a graph database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u32);

impl FactId {
    /// The fact identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fact `source --label--> target` of a graph database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The tail (source) of the edge.
    pub source: NodeId,
    /// The edge label.
    pub label: Letter,
    /// The head (target) of the edge.
    pub target: NodeId,
}

/// An edge-labeled graph database with bag-semantics multiplicities.
///
/// Set-semantics databases are simply databases in which every fact has
/// multiplicity 1 (the default of [`GraphDb::add_fact`]).
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    node_names: Vec<String>,
    node_index: BTreeMap<String, NodeId>,
    facts: Vec<Fact>,
    multiplicities: Vec<u64>,
    /// Facts declared **exogenous**: they can never be part of a contingency
    /// set (equivalently, they carry weight `+∞`). This is the "exogenous
    /// relations" setting discussed in Sections 2 and 8 of the paper.
    exogenous: Vec<bool>,
    fact_index: BTreeMap<Fact, FactId>,
    /// Outgoing adjacency, indexed by node id (`NodeId`s are dense u32s).
    out_edges: Vec<Vec<FactId>>,
    /// Incoming adjacency, indexed by node id.
    in_edges: Vec<Vec<FactId>>,
}

impl GraphDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        GraphDb::default()
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_string());
        self.node_index.insert(name.to_string(), id);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Returns the node with the given name if it exists.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied()
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> NodeId {
        let name = format!("_n{}", self.node_names.len());
        self.node(&name)
    }

    /// The display name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0 as usize]
    }

    /// Number of nodes in the domain.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len() as u32).map(NodeId)
    }

    /// Adds a fact with multiplicity 1 (set semantics). If the fact already
    /// exists its multiplicity is left unchanged. Returns the fact identifier.
    pub fn add_fact(&mut self, source: NodeId, label: Letter, target: NodeId) -> FactId {
        self.add_fact_with_multiplicity(source, label, target, 1)
    }

    /// Adds a fact by node names (creating the nodes as needed).
    pub fn add_fact_by_names(&mut self, source: &str, label: char, target: &str) -> FactId {
        let s = self.node(source);
        let t = self.node(target);
        self.add_fact(s, Letter(label), t)
    }

    /// Adds a fact with an explicit multiplicity (bag semantics). If the fact
    /// is already present its multiplicity is **increased** by `multiplicity`.
    pub fn add_fact_with_multiplicity(
        &mut self,
        source: NodeId,
        label: Letter,
        target: NodeId,
        multiplicity: u64,
    ) -> FactId {
        assert!(multiplicity > 0, "bag multiplicities must be positive");
        let fact = Fact { source, label, target };
        if let Some(&id) = self.fact_index.get(&fact) {
            // The fact is already present: bag semantics accumulates the
            // multiplicity (except that add_fact keeps set semantics at 1 by
            // only ever passing multiplicity 1 for a fresh fact).
            if multiplicity > 1 || self.multiplicities[id.index()] > 1 {
                self.multiplicities[id.index()] += multiplicity;
            }
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        self.facts.push(fact);
        self.multiplicities.push(multiplicity);
        self.exogenous.push(false);
        self.fact_index.insert(fact, id);
        self.out_edges[source.0 as usize].push(id);
        self.in_edges[target.0 as usize].push(id);
        id
    }

    /// Sets the multiplicity of an existing fact.
    pub fn set_multiplicity(&mut self, fact: FactId, multiplicity: u64) {
        assert!(multiplicity > 0, "bag multiplicities must be positive");
        self.multiplicities[fact.index()] = multiplicity;
    }

    /// Declares a fact **exogenous** (or endogenous again with `false`):
    /// exogenous facts can never be removed by a contingency set, i.e. they
    /// behave as facts of weight `+∞` (the setting discussed in Sections 2
    /// and 8 of the paper). When every `L`-walk uses an exogenous fact the
    /// resilience is `+∞`.
    pub fn set_exogenous(&mut self, fact: FactId, exogenous: bool) {
        self.exogenous[fact.index()] = exogenous;
    }

    /// Whether a fact is exogenous (cannot be part of a contingency set).
    pub fn is_exogenous(&self, fact: FactId) -> bool {
        self.exogenous[fact.index()]
    }

    /// Whether any fact of the database is exogenous.
    pub fn has_exogenous_facts(&self) -> bool {
        self.exogenous.iter().any(|&e| e)
    }

    /// Iterator over the exogenous facts.
    pub fn exogenous_facts(&self) -> impl Iterator<Item = FactId> + '_ {
        self.exogenous.iter().enumerate().filter(|(_, &e)| e).map(|(i, _)| FactId(i as u32))
    }

    /// Iterator over the endogenous (removable) facts.
    pub fn endogenous_facts(&self) -> impl Iterator<Item = FactId> + '_ {
        self.exogenous.iter().enumerate().filter(|(_, &e)| !e).map(|(i, _)| FactId(i as u32))
    }

    /// Number of (distinct) facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// The size `|D|` of the database: its number of facts.
    pub fn size(&self) -> usize {
        self.num_facts()
    }

    /// The fact with the given identifier.
    pub fn fact(&self, id: FactId) -> Fact {
        self.facts[id.index()]
    }

    /// The multiplicity of a fact.
    pub fn multiplicity(&self, id: FactId) -> u64 {
        self.multiplicities[id.index()]
    }

    /// Sum of the multiplicities of all facts.
    pub fn total_multiplicity(&self) -> u64 {
        self.multiplicities.iter().sum()
    }

    /// Iterator over all fact identifiers.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32).map(FactId)
    }

    /// Iterator over `(FactId, Fact)` pairs.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, Fact)> + '_ {
        self.facts.iter().enumerate().map(|(i, &f)| (FactId(i as u32), f))
    }

    /// Looks up a fact identifier by its content.
    pub fn find_fact(&self, source: NodeId, label: Letter, target: NodeId) -> Option<FactId> {
        self.fact_index.get(&Fact { source, label, target }).copied()
    }

    /// The facts leaving a node.
    pub fn out_facts(&self, node: NodeId) -> impl Iterator<Item = FactId> + '_ {
        self.out_edges[node.0 as usize].iter().copied()
    }

    /// The facts entering a node.
    pub fn in_facts(&self, node: NodeId) -> impl Iterator<Item = FactId> + '_ {
        self.in_edges[node.0 as usize].iter().copied()
    }

    /// The alphabet of labels occurring on facts.
    pub fn alphabet(&self) -> Alphabet {
        Alphabet::from_letters(self.facts.iter().map(|f| f.label))
    }

    /// Returns a copy of the database with the given facts removed (their
    /// multiplicities removed entirely). Node identifiers are preserved.
    pub fn without_facts(&self, removed: &BTreeSet<FactId>) -> GraphDb {
        let mut out = GraphDb {
            node_names: self.node_names.clone(),
            node_index: self.node_index.clone(),
            out_edges: vec![Vec::new(); self.node_names.len()],
            in_edges: vec![Vec::new(); self.node_names.len()],
            ..GraphDb::default()
        };
        for (id, fact) in self.facts() {
            if !removed.contains(&id) {
                let new_id = out.add_fact_with_multiplicity(
                    fact.source,
                    fact.label,
                    fact.target,
                    self.multiplicity(id),
                );
                out.set_exogenous(new_id, self.is_exogenous(id));
            }
        }
        out
    }

    /// The mirror database `D^R`: every fact is reversed (Proposition 6.3 of
    /// the paper uses this to relate the resilience of a language and of its
    /// mirror). Fact identifiers are preserved.
    pub fn reversed(&self) -> GraphDb {
        let mut out = GraphDb {
            node_names: self.node_names.clone(),
            node_index: self.node_index.clone(),
            out_edges: vec![Vec::new(); self.node_names.len()],
            in_edges: vec![Vec::new(); self.node_names.len()],
            ..GraphDb::default()
        };
        for (id, fact) in self.facts() {
            let new_id = out.add_fact_with_multiplicity(
                fact.target,
                fact.label,
                fact.source,
                self.multiplicity(id),
            );
            out.set_exogenous(new_id, self.is_exogenous(id));
        }
        out
    }

    /// Human-readable rendering of a fact, e.g. `u -a-> v`.
    pub fn display_fact(&self, id: FactId) -> String {
        let f = self.fact(id);
        format!("{} -{}-> {}", self.node_name(f.source), f.label, self.node_name(f.target))
    }
}

impl fmt::Display for GraphDb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GraphDb with {} nodes and {} facts:", self.num_nodes(), self.num_facts())?;
        for (id, _) in self.facts() {
            let m = self.multiplicity(id);
            if m == 1 {
                writeln!(f, "  {}", self.display_fact(id))?;
            } else {
                writeln!(f, "  {} (×{m})", self.display_fact(id))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_are_interned() {
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        assert_ne!(u, v);
        assert_eq!(db.node("u"), u);
        assert_eq!(db.num_nodes(), 2);
        assert_eq!(db.node_name(u), "u");
        assert_eq!(db.find_node("v"), Some(v));
        assert_eq!(db.find_node("w"), None);
        let w = db.fresh_node();
        assert_eq!(db.num_nodes(), 3);
        assert_ne!(w, u);
    }

    #[test]
    fn facts_are_deduplicated_in_set_semantics() {
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        let f1 = db.add_fact(u, Letter('a'), v);
        let f2 = db.add_fact(u, Letter('a'), v);
        assert_eq!(f1, f2);
        assert_eq!(db.num_facts(), 1);
        assert_eq!(db.multiplicity(f1), 1);
        let f3 = db.add_fact(u, Letter('b'), v);
        assert_ne!(f1, f3);
        assert_eq!(db.num_facts(), 2);
    }

    #[test]
    fn bag_multiplicities_accumulate() {
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        let f = db.add_fact_with_multiplicity(u, Letter('a'), v, 3);
        assert_eq!(db.multiplicity(f), 3);
        db.add_fact_with_multiplicity(u, Letter('a'), v, 2);
        assert_eq!(db.multiplicity(f), 5);
        db.set_multiplicity(f, 7);
        assert_eq!(db.multiplicity(f), 7);
        assert_eq!(db.total_multiplicity(), 7);
    }

    #[test]
    fn adjacency_and_lookup() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("u", 'a', "v");
        let f2 = db.add_fact_by_names("u", 'b', "w");
        let f3 = db.add_fact_by_names("v", 'a', "w");
        let u = db.find_node("u").unwrap();
        let w = db.find_node("w").unwrap();
        let out_u: Vec<FactId> = db.out_facts(u).collect();
        assert_eq!(out_u, vec![f1, f2]);
        let in_w: Vec<FactId> = db.in_facts(w).collect();
        assert_eq!(in_w, vec![f2, f3]);
        let v = db.find_node("v").unwrap();
        assert_eq!(db.find_fact(u, Letter('a'), v), Some(f1));
        assert_eq!(db.find_fact(u, Letter('a'), w), None);
    }

    #[test]
    fn alphabet_and_display() {
        let mut db = GraphDb::new();
        db.add_fact_by_names("u", 'a', "v");
        db.add_fact_by_names("v", 'x', "w");
        let alpha = db.alphabet();
        assert_eq!(alpha.len(), 2);
        assert!(alpha.contains(Letter('x')));
        let rendered = db.to_string();
        assert!(rendered.contains("u -a-> v"));
    }

    #[test]
    fn without_facts_removes_them() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("u", 'a', "v");
        let f2 = db.add_fact_by_names("v", 'b', "w");
        let removed: BTreeSet<FactId> = [f1].into_iter().collect();
        let sub = db.without_facts(&removed);
        assert_eq!(sub.num_facts(), 1);
        assert_eq!(sub.num_nodes(), db.num_nodes());
        let (_, remaining) = sub.facts().next().unwrap();
        assert_eq!(remaining.label, Letter('b'));
        // Removing nothing copies everything (including multiplicities).
        db.set_multiplicity(f2, 5);
        let copy = db.without_facts(&BTreeSet::new());
        assert_eq!(copy.num_facts(), 2);
        assert_eq!(copy.total_multiplicity(), 6);
    }

    #[test]
    fn reversed_database() {
        let mut db = GraphDb::new();
        let f = db.add_fact_by_names("u", 'a', "v");
        db.set_multiplicity(f, 4);
        db.add_fact_by_names("v", 'b', "w");
        let rev = db.reversed();
        assert_eq!(rev.num_facts(), 2);
        let u = rev.find_node("u").unwrap();
        let v = rev.find_node("v").unwrap();
        let fr = rev.find_fact(v, Letter('a'), u).unwrap();
        assert_eq!(rev.multiplicity(fr), 4);
        assert!(rev.find_fact(u, Letter('a'), v).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiplicity_is_rejected() {
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        db.add_fact_with_multiplicity(u, Letter('a'), v, 0);
    }
}
