//! A small line-based text format for graph databases.
//!
//! Each non-empty, non-comment line describes one fact:
//!
//! ```text
//! # comment
//! u a v        # fact u -a-> v with multiplicity 1
//! u x v 3      # fact u -x-> v with multiplicity 3
//! u b v !      # an exogenous fact (weight +∞, can never be removed)
//! u c v 2 !    # multiplicity and exogenous marker combined
//! ```
//!
//! Node names are arbitrary whitespace-free strings; labels are single
//! characters; a trailing `!` declares the fact exogenous. The format exists
//! for examples and tests, not for bulk data.

use crate::db::GraphDb;
use std::fmt::Write as _;

/// Errors raised when parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a graph database from the text format.
pub fn parse(input: &str) -> Result<GraphDb, ParseError> {
    let mut db = GraphDb::new();
    for (i, raw_line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        // A trailing `!` marks the fact as exogenous (weight +∞).
        let exogenous = parts.last() == Some(&"!");
        if exogenous {
            parts.pop();
        }
        if parts.len() != 3 && parts.len() != 4 {
            return Err(ParseError {
                line: line_no,
                message: format!("expected `source label target [multiplicity] [!]`, got {line:?}"),
            });
        }
        let label: Vec<char> = parts[1].chars().collect();
        if label.len() != 1 {
            return Err(ParseError {
                line: line_no,
                message: format!("label must be a single character, got {:?}", parts[1]),
            });
        }
        let multiplicity: u64 = if parts.len() == 4 {
            parts[3].parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("invalid multiplicity {:?}", parts[3]),
            })?
        } else {
            1
        };
        if multiplicity == 0 {
            return Err(ParseError {
                line: line_no,
                message: "multiplicity must be positive".into(),
            });
        }
        let s = db.node(parts[0]);
        let t = db.node(parts[2]);
        let id = db.add_fact_with_multiplicity(
            s,
            rpq_automata::alphabet::Letter(label[0]),
            t,
            multiplicity,
        );
        if exogenous {
            db.set_exogenous(id, true);
        }
    }
    Ok(db)
}

/// Serializes a graph database to the text format.
pub fn serialize(db: &GraphDb) -> String {
    let mut out = String::new();
    for (id, fact) in db.facts() {
        let m = db.multiplicity(id);
        let marker = if db.is_exogenous(id) { " !" } else { "" };
        if m == 1 {
            let _ = writeln!(
                out,
                "{} {} {}{}",
                db.node_name(fact.source),
                fact.label,
                db.node_name(fact.target),
                marker
            );
        } else {
            let _ = writeln!(
                out,
                "{} {} {} {}{}",
                db.node_name(fact.source),
                fact.label,
                db.node_name(fact.target),
                m,
                marker
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::satisfies;
    use rpq_automata::Language;

    #[test]
    fn parse_basic() {
        let db = parse("u a v\nv x w 3\n# comment line\n\nw b t").unwrap();
        assert_eq!(db.num_facts(), 3);
        assert_eq!(db.total_multiplicity(), 5);
        assert!(satisfies(&db, &Language::parse("axb").unwrap()));
    }

    #[test]
    fn parse_errors_are_reported_with_line_numbers() {
        let err = parse("u a v\nbroken line here extra tokens!").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("u ab v").is_err());
        assert!(parse("u a v 0").is_err());
        assert!(parse("u a v x").is_err());
        assert!(parse("u a").is_err());
    }

    #[test]
    fn round_trip() {
        let input = "u a v\nv x w 3\nw b t\n";
        let db = parse(input).unwrap();
        let output = serialize(&db);
        let db2 = parse(&output).unwrap();
        assert_eq!(db2.num_facts(), db.num_facts());
        assert_eq!(db2.total_multiplicity(), db.total_multiplicity());
        assert_eq!(serialize(&db2), output);
    }

    #[test]
    fn inline_comments_are_ignored() {
        let db = parse("u a v # this is the a fact").unwrap();
        assert_eq!(db.num_facts(), 1);
    }

    #[test]
    fn exogenous_markers_round_trip() {
        let db = parse(
            "u a v !
v x w 3 !
w b t 2
t c z",
        )
        .unwrap();
        assert_eq!(db.num_facts(), 4);
        let exogenous: Vec<bool> = db.fact_ids().map(|f| db.is_exogenous(f)).collect();
        assert_eq!(exogenous, vec![true, true, false, false]);
        let output = serialize(&db);
        assert!(output.contains("u a v !"));
        assert!(output.contains("v x w 3 !"));
        let db2 = parse(&output).unwrap();
        assert_eq!(db2.fact_ids().map(|f| db2.is_exogenous(f)).collect::<Vec<_>>(), exogenous);
        // A lone `!` is not a fact.
        assert!(parse("!").is_err());
        // The marker must be the last token.
        assert!(parse("u a ! v").is_err());
    }
}
