//! Fact deltas: the append-only change log behind snapshot databases.
//!
//! `rpq-store` models a hosted database as a log of [`FactChange`] entries; a
//! *snapshot* is simply a log offset, so taking one is O(1) and immutable by
//! construction. This module owns the change vocabulary, the text format for
//! patches, and the replay that [materializes](materialize) a log prefix into
//! a concrete [`GraphDb`].
//!
//! A patch is line-based, mirroring [`crate::text`]:
//!
//! ```text
//! # comment
//! + u a v        # put fact u -a-> v with multiplicity 1
//! + u x v 3      # put with multiplicity 3
//! + u b v !      # put an exogenous fact
//! - u a v        # delete the fact u -a-> v (no-op if absent)
//! ```
//!
//! **Put overwrites.** Re-putting an existing `(source, label, target)` fact
//! replaces its multiplicity and exogenous flag — it does not accumulate the
//! multiplicities the way [`GraphDb::add_fact_with_multiplicity`] does. This
//! makes replay order-insensitive per key (last write wins) and gives patches
//! upsert semantics.

use crate::db::GraphDb;
use crate::text::ParseError;
use rpq_automata::alphabet::Letter;
use std::collections::HashMap;

/// One entry of a database's append-only fact log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactChange {
    /// Insert or overwrite the fact `source --label--> target`.
    Put {
        /// Source node name.
        source: String,
        /// Edge label.
        label: Letter,
        /// Target node name.
        target: String,
        /// Multiplicity (bag semantics weight), must be positive.
        multiplicity: u64,
        /// Whether the fact is exogenous (weight `+∞`, can never be removed).
        exogenous: bool,
    },
    /// Remove the fact `source --label--> target` entirely (no-op if absent).
    Delete {
        /// Source node name.
        source: String,
        /// Edge label.
        label: Letter,
        /// Target node name.
        target: String,
    },
}

impl FactChange {
    /// The `(source, label, target)` key the change addresses.
    pub fn key(&self) -> (&str, Letter, &str) {
        match self {
            FactChange::Put { source, label, target, .. }
            | FactChange::Delete { source, label, target } => {
                (source.as_str(), *label, target.as_str())
            }
        }
    }

    /// An estimate of the heap bytes the entry retains (node names plus the
    /// fixed fields), used by the store's log-size accounting.
    pub fn log_bytes(&self) -> usize {
        let (source, _, target) = self.key();
        source.len() + target.len() + std::mem::size_of::<FactChange>()
    }
}

/// Parses a patch in the line-based text format (see the [module docs](self)).
pub fn parse_patch(input: &str) -> Result<Vec<FactChange>, ParseError> {
    let mut changes = Vec::new();
    for (i, raw_line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        let op = parts.remove(0);
        let exogenous = parts.last() == Some(&"!");
        if exogenous {
            parts.pop();
        }
        let fields = |expected: &str| ParseError {
            line: line_no,
            message: format!("expected `{expected}`, got {line:?}"),
        };
        let single_letter = |s: &str| -> Result<Letter, ParseError> {
            let chars: Vec<char> = s.chars().collect();
            if chars.len() != 1 {
                return Err(ParseError {
                    line: line_no,
                    message: format!("label must be a single character, got {s:?}"),
                });
            }
            Ok(Letter(chars[0]))
        };
        match op {
            "+" => {
                if parts.len() != 3 && parts.len() != 4 {
                    return Err(fields("+ source label target [multiplicity] [!]"));
                }
                let multiplicity: u64 = if parts.len() == 4 {
                    parts[3].parse().map_err(|_| ParseError {
                        line: line_no,
                        message: format!("invalid multiplicity {:?}", parts[3]),
                    })?
                } else {
                    1
                };
                if multiplicity == 0 {
                    return Err(ParseError {
                        line: line_no,
                        message: "multiplicity must be positive".into(),
                    });
                }
                changes.push(FactChange::Put {
                    source: parts[0].to_string(),
                    label: single_letter(parts[1])?,
                    target: parts[2].to_string(),
                    multiplicity,
                    exogenous,
                });
            }
            "-" => {
                if exogenous || parts.len() != 3 {
                    return Err(fields("- source label target"));
                }
                changes.push(FactChange::Delete {
                    source: parts[0].to_string(),
                    label: single_letter(parts[1])?,
                    target: parts[2].to_string(),
                });
            }
            other => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("expected `+` or `-` as the first field, got {other:?}"),
                });
            }
        }
    }
    Ok(changes)
}

/// Converts a concrete database into the equivalent log of `Put` entries
/// (used by `db_put`, which seeds a fresh log from a full database text).
pub fn changes_from_db(db: &GraphDb) -> Vec<FactChange> {
    db.facts()
        .map(|(id, fact)| FactChange::Put {
            source: db.node_name(fact.source).to_string(),
            label: fact.label,
            target: db.node_name(fact.target).to_string(),
            multiplicity: db.multiplicity(id),
            exogenous: db.is_exogenous(id),
        })
        .collect()
}

/// Replays a change log into a concrete [`GraphDb`].
///
/// Surviving facts are inserted in the order their key was **first put**, so
/// two logs with the same net effect produce databases with identical node
/// and fact numbering as long as their first-put orders agree — in particular
/// `materialize(&log[..n])` followed by the remaining changes always agrees
/// with `materialize(&log[..m])` for `n <= m` on the shared facts.
pub fn materialize(changes: &[FactChange]) -> GraphDb {
    // Last-write-wins state per key, plus first-put order for determinism.
    let mut alive: HashMap<(&str, Letter, &str), (u64, bool)> = HashMap::new();
    let mut ever_put: HashMap<(&str, Letter, &str), ()> = HashMap::new();
    let mut order: Vec<(&str, Letter, &str)> = Vec::new();
    for change in changes {
        match change {
            FactChange::Put { source, label, target, multiplicity, exogenous } => {
                let key = (source.as_str(), *label, target.as_str());
                alive.insert(key, (*multiplicity, *exogenous));
                if ever_put.insert(key, ()).is_none() {
                    order.push(key);
                }
            }
            FactChange::Delete { source, label, target } => {
                alive.remove(&(source.as_str(), *label, target.as_str()));
            }
        }
    }
    let mut db = GraphDb::new();
    for key in order {
        if let Some(&(multiplicity, exogenous)) = alive.get(&key) {
            let (source, label, target) = key;
            let s = db.node(source);
            let t = db.node(target);
            let id = db.add_fact_with_multiplicity(s, label, t, multiplicity);
            if exogenous {
                db.set_exogenous(id, true);
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text;

    #[test]
    fn patches_parse_and_replay() {
        let changes =
            parse_patch("# edits\n+ s a u\n+ u x v 3\n+ v b t 2 !\n- u x v\n+ u x v 5\n").unwrap();
        assert_eq!(changes.len(), 5);
        let db = materialize(&changes);
        assert_eq!(db.num_facts(), 3);
        let u = db.find_node("u").unwrap();
        let v = db.find_node("v").unwrap();
        let f = db.find_fact(u, Letter('x'), v).unwrap();
        assert_eq!(db.multiplicity(f), 5);
        let t = db.find_node("t").unwrap();
        let b = db.find_fact(v, Letter('b'), t).unwrap();
        assert!(db.is_exogenous(b));
        assert_eq!(db.multiplicity(b), 2);
    }

    #[test]
    fn put_overwrites_instead_of_accumulating() {
        let changes = parse_patch("+ u x v 3\n+ u x v 4\n").unwrap();
        let db = materialize(&changes);
        let u = db.find_node("u").unwrap();
        let v = db.find_node("v").unwrap();
        assert_eq!(db.multiplicity(db.find_fact(u, Letter('x'), v).unwrap()), 4);
        // Exogenous can be cleared by a later put too.
        let db = materialize(&parse_patch("+ u x v !\n+ u x v\n").unwrap());
        let u = db.find_node("u").unwrap();
        let v = db.find_node("v").unwrap();
        assert!(!db.is_exogenous(db.find_fact(u, Letter('x'), v).unwrap()));
    }

    #[test]
    fn deletes_are_idempotent_and_reinsertions_keep_first_put_order() {
        let changes = parse_patch("+ a x b\n+ b x c\n- a x b\n- a x b\n+ a x b 7\n").unwrap();
        let db = materialize(&changes);
        assert_eq!(db.num_facts(), 2);
        // `a x b` keeps its original position 0 despite the delete/reinsert.
        let (first_id, first) = db.facts().next().unwrap();
        assert_eq!(db.node_name(first.source), "a");
        assert_eq!(db.multiplicity(first_id), 7);
    }

    #[test]
    fn prefix_materializations_agree_with_full_replay() {
        let changes =
            parse_patch("+ s a u\n+ u x v\n- s a u\n+ v b t\n+ s a u 2\n- u x v\n+ u x w\n")
                .unwrap();
        for n in 0..=changes.len() {
            let prefix = materialize(&changes[..n]);
            // Replaying the suffix on top of the prefix's log equals the
            // direct materialization (same net facts; the order can differ
            // when a key deleted before the split loses its first-put slot).
            let mut log = changes_from_db(&prefix);
            log.extend_from_slice(&changes[n..]);
            let sorted = |db: &crate::GraphDb| {
                let mut lines: Vec<String> =
                    text::serialize(db).lines().map(str::to_string).collect();
                lines.sort();
                lines
            };
            assert_eq!(sorted(&materialize(&log)), sorted(&materialize(&changes)), "split at {n}");
        }
    }

    #[test]
    fn malformed_patches_are_rejected_with_line_numbers() {
        for (input, fragment) in [
            ("* u a v", "expected `+` or `-`"),
            ("+ u ab v", "single character"),
            ("+ u a", "expected `+ source label target"),
            ("+ u a v 0", "positive"),
            ("+ u a v x", "invalid multiplicity"),
            ("- u a v !", "expected `- source label target"),
            ("- u a", "expected `- source label target"),
        ] {
            let err = parse_patch(input).unwrap_err();
            assert_eq!(err.line, 1, "{input}");
            assert!(err.message.contains(fragment), "{input}: {}", err.message);
        }
        assert_eq!(parse_patch("# only comments\n\n").unwrap(), Vec::new());
    }
}
