//! # `rpq-graphdb`: edge-labeled graph databases for RPQ resilience
//!
//! A *graph database* in the sense of the paper is a set of labeled edges
//! (facts) `v --a--> v'` over an alphabet `Σ`, possibly with multiplicities
//! (bag semantics). This crate provides:
//!
//! * the [`GraphDb`] store itself ([`db`]), with interned node names, fact
//!   identifiers, multiplicities and label-indexed adjacency;
//! * Boolean RPQ evaluation `Q_L(D)` and witness-walk extraction ([`eval`]),
//!   used both by the resilience definition and by the exact solvers;
//! * match (hyperedge) enumeration for finite languages, feeding the
//!   hypergraph-of-matches machinery of Section 4.3 of the paper;
//! * synthetic workload generators ([`generate`]) used by the benchmark
//!   harness (layered flow-like instances, random labeled graphs, chain and
//!   one-dangling instances);
//! * a small text format ([`text`]) for examples and tests.

#![forbid(unsafe_code)]
pub mod db;
pub mod delta;
pub mod eval;
pub mod generate;
pub mod text;

pub use db::{Fact, FactId, GraphDb, NodeId};
pub use delta::FactChange;
pub use eval::{enumerate_matches, find_witness_walk, satisfies, satisfies_excluding};
