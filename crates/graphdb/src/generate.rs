//! Synthetic workload generators.
//!
//! The paper is a theory paper and only ever evaluates on constructed
//! instances; this module provides the constructed families used by the
//! benchmark harness and the integration tests:
//!
//! * [`flow_instance`] — multi-source / multi-sink flow networks encoded as
//!   `a x* b` databases (the MinCut correspondence from the introduction);
//! * [`layered_instance`] — layered DAGs labeled by the letters of an
//!   arbitrary local language, used for the Theorem 3.13 scaling experiments;
//! * [`random_labeled_graph`] — uniformly random labeled multigraphs;
//! * [`chain_instance`] — instances tailored to bipartite chain languages
//!   (Proposition 7.6);
//! * [`one_dangling_instance`] — instances mixing a local language with a
//!   dangling two-letter word (Proposition 7.9);
//! * [`word_path`] / [`word_cycle`] — tiny deterministic helpers used by unit
//!   tests and the gadget library.

use crate::db::{GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_automata::alphabet::{Alphabet, Letter};
use rpq_automata::word::Word;

/// Adds a fresh path spelling `word` to the database, starting at `from` and
/// ending at a fresh node, which is returned. Intermediate nodes are fresh.
pub fn add_word_path(db: &mut GraphDb, from: NodeId, word: &Word) -> NodeId {
    let mut current = from;
    for letter in word.iter() {
        let next = db.fresh_node();
        db.add_fact(current, letter, next);
        current = next;
    }
    current
}

/// Adds a path spelling `word` between two *existing* nodes (intermediate
/// nodes are fresh). For the empty word the two nodes are expected to be
/// equal; otherwise an `ε`-labeled shortcut cannot be represented and the
/// function panics.
pub fn add_word_path_between(db: &mut GraphDb, from: NodeId, to: NodeId, word: &Word) {
    if word.is_empty() {
        assert_eq!(from, to, "an empty word cannot connect two distinct nodes");
        return;
    }
    let mut current = from;
    for (i, letter) in word.iter().enumerate() {
        let next = if i + 1 == word.len() { to } else { db.fresh_node() };
        db.add_fact(current, letter, next);
        current = next;
    }
}

/// A database consisting of a single simple path labeled by `word`.
pub fn word_path(word: &Word) -> GraphDb {
    let mut db = GraphDb::new();
    let start = db.node("v0");
    add_word_path(&mut db, start, word);
    db
}

/// A database consisting of a single cycle labeled by `word` (the last fact
/// returns to the start node).
pub fn word_cycle(word: &Word) -> GraphDb {
    assert!(!word.is_empty(), "a cycle needs at least one fact");
    let mut db = GraphDb::new();
    let start = db.node("v0");
    add_word_path_between(&mut db, start, start, word);
    db
}

/// A multi-source multi-sink flow network encoded for the RPQ `a x* b`
/// (see the introduction of the paper): `a`-facts attach sources, `b`-facts
/// attach sinks, and `x`-facts are the inner edges of the network.
///
/// The generated inner graph is a layered random DAG with `layers` layers of
/// `width` nodes, where each node has `out_degree` random successors in the
/// next layer. Multiplicities (edge capacities) are drawn uniformly from
/// `1..=max_capacity`.
pub fn flow_instance(
    layers: usize,
    width: usize,
    out_degree: usize,
    max_capacity: u64,
    seed: u64,
) -> GraphDb {
    assert!(layers >= 2 && width >= 1 && out_degree >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    let mut layer_nodes: Vec<Vec<NodeId>> = Vec::new();
    for layer in 0..layers {
        let nodes: Vec<NodeId> = (0..width).map(|i| db.node(&format!("l{layer}_{i}"))).collect();
        layer_nodes.push(nodes);
    }
    // Source / sink attachments.
    let super_source = db.node("source");
    let super_sink = db.node("sink");
    for &n in &layer_nodes[0] {
        db.add_fact_with_multiplicity(
            super_source,
            Letter('a'),
            n,
            rng.gen_range(1..=max_capacity),
        );
    }
    for &n in &layer_nodes[layers - 1] {
        db.add_fact_with_multiplicity(n, Letter('b'), super_sink, rng.gen_range(1..=max_capacity));
    }
    // Inner x-edges.
    for layer in 0..layers - 1 {
        for &n in &layer_nodes[layer] {
            for _ in 0..out_degree {
                let target = layer_nodes[layer + 1][rng.gen_range(0..width)];
                db.add_fact_with_multiplicity(
                    n,
                    Letter('x'),
                    target,
                    rng.gen_range(1..=max_capacity),
                );
            }
        }
    }
    db
}

/// A layered instance for an arbitrary finite or local language: each layer
/// transition is labeled by a letter drawn uniformly from `alphabet`.
/// With `sources` entry nodes per layer-0 node, this produces databases on
/// which local-language resilience is non-trivial.
pub fn layered_instance(
    alphabet: &Alphabet,
    layers: usize,
    width: usize,
    out_degree: usize,
    seed: u64,
) -> GraphDb {
    assert!(layers >= 1 && width >= 1 && out_degree >= 1 && !alphabet.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    let mut layer_nodes: Vec<Vec<NodeId>> = Vec::new();
    for layer in 0..layers {
        let nodes: Vec<NodeId> = (0..width).map(|i| db.node(&format!("l{layer}_{i}"))).collect();
        layer_nodes.push(nodes);
    }
    for layer in 0..layers.saturating_sub(1) {
        for &n in &layer_nodes[layer] {
            for _ in 0..out_degree {
                let target = layer_nodes[layer + 1][rng.gen_range(0..width)];
                let letter = alphabet.letter_at(rng.gen_range(0..alphabet.len()));
                db.add_fact(n, letter, target);
            }
        }
    }
    db
}

/// A uniformly random labeled multigraph with `nodes` nodes and `facts`
/// attempted fact insertions (duplicates are merged, so the resulting database
/// may be slightly smaller).
pub fn random_labeled_graph(nodes: usize, facts: usize, alphabet: &Alphabet, seed: u64) -> GraphDb {
    assert!(nodes >= 1 && !alphabet.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    let node_ids: Vec<NodeId> = (0..nodes).map(|i| db.node(&format!("v{i}"))).collect();
    for _ in 0..facts {
        let s = node_ids[rng.gen_range(0..nodes)];
        let t = node_ids[rng.gen_range(0..nodes)];
        let letter = alphabet.letter_at(rng.gen_range(0..alphabet.len()));
        db.add_fact(s, letter, t);
    }
    db
}

/// An instance tailored to chain languages: for each word of the language we
/// add `copies` disjoint paths spelling it, then additionally glue `shared`
/// random endpoint nodes so that words interact through their endpoints.
pub fn chain_instance(words: &[Word], copies: usize, shared: usize, seed: u64) -> GraphDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    let mut endpoints: Vec<NodeId> = Vec::new();
    for word in words {
        for c in 0..copies {
            let start = db.node(&format!("s_{word}_{c}"));
            let end = add_word_path(&mut db, start, word);
            endpoints.push(start);
            endpoints.push(end);
        }
    }
    // Glue some endpoints together by adding facts between them labeled by the
    // first letters of the words, creating longer interacting structures.
    for _ in 0..shared {
        if endpoints.len() < 2 || words.is_empty() {
            break;
        }
        let a = endpoints[rng.gen_range(0..endpoints.len())];
        let word = &words[rng.gen_range(0..words.len())];
        add_word_path(&mut db, a, word);
    }
    db
}

/// An instance for a one-dangling language `L ∪ {xy}`: a layered instance for
/// the local part, plus `dangling` additional `x`/`y` fact pairs sharing
/// middle nodes with the local structure.
pub fn one_dangling_instance(
    local_alphabet: &Alphabet,
    x: Letter,
    y: Letter,
    layers: usize,
    width: usize,
    dangling: usize,
    seed: u64,
) -> GraphDb {
    let mut db = layered_instance(local_alphabet, layers, width, 2, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let nodes: Vec<NodeId> = db.nodes().collect();
    for i in 0..dangling {
        let mid = nodes[rng.gen_range(0..nodes.len())];
        let src = db.node(&format!("dx{i}"));
        let dst = db.node(&format!("dy{i}"));
        db.add_fact(src, x, mid);
        db.add_fact(mid, y, dst);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::satisfies;
    use rpq_automata::Language;

    #[test]
    fn word_path_and_cycle() {
        let db = word_path(&Word::from_str_word("axb"));
        assert_eq!(db.num_facts(), 3);
        assert!(satisfies(&db, &Language::parse("axb").unwrap()));
        assert!(!satisfies(&db, &Language::parse("ba").unwrap()));

        let db = word_cycle(&Word::from_str_word("ab"));
        assert_eq!(db.num_facts(), 2);
        assert_eq!(db.num_nodes(), 2);
        // On a cycle, the walk can go around: abab is satisfied.
        assert!(satisfies(&db, &Language::parse("abab").unwrap()));
    }

    #[test]
    fn add_word_path_between_connects_nodes() {
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        add_word_path_between(&mut db, u, v, &Word::from_str_word("xyz"));
        assert_eq!(db.num_facts(), 3);
        assert!(satisfies(&db, &Language::parse("xyz").unwrap()));
        // Single letter connects directly.
        let mut db = GraphDb::new();
        let u = db.node("u");
        let v = db.node("v");
        add_word_path_between(&mut db, u, v, &Word::from_str_word("a"));
        assert_eq!(db.num_facts(), 1);
        assert_eq!(db.num_nodes(), 2);
    }

    #[test]
    fn flow_instance_satisfies_axb() {
        let db = flow_instance(4, 3, 2, 5, 42);
        assert!(satisfies(&db, &Language::parse("ax*b").unwrap()));
        assert!(db.num_facts() > 10);
        // Determinism: same seed, same database.
        let db2 = flow_instance(4, 3, 2, 5, 42);
        assert_eq!(db.num_facts(), db2.num_facts());
        assert_eq!(db.total_multiplicity(), db2.total_multiplicity());
        // A different seed still yields a valid instance satisfying the query.
        let db3 = flow_instance(4, 3, 2, 5, 43);
        assert!(satisfies(&db3, &Language::parse("ax*b").unwrap()));
    }

    #[test]
    fn layered_instance_shape() {
        let alpha = Alphabet::from_chars("ab");
        let db = layered_instance(&alpha, 3, 4, 2, 7);
        assert_eq!(db.num_nodes(), 12);
        assert!(db.num_facts() <= 2 * 4 * 2);
        assert!(db.alphabet().is_subset_of(&alpha));
    }

    #[test]
    fn random_labeled_graph_is_deterministic_per_seed() {
        let alpha = Alphabet::from_chars("abc");
        let db1 = random_labeled_graph(10, 30, &alpha, 1);
        let db2 = random_labeled_graph(10, 30, &alpha, 1);
        assert_eq!(db1.num_facts(), db2.num_facts());
        assert_eq!(db1.num_nodes(), 10);
    }

    #[test]
    fn chain_instance_contains_the_words() {
        let words = vec![Word::from_str_word("ab"), Word::from_str_word("bc")];
        let db = chain_instance(&words, 2, 3, 5);
        assert!(satisfies(&db, &Language::parse("ab").unwrap()));
        assert!(satisfies(&db, &Language::parse("bc").unwrap()));
    }

    #[test]
    fn one_dangling_instance_contains_dangling_word() {
        let alpha = Alphabet::from_chars("abc");
        let db = one_dangling_instance(&alpha, Letter('x'), Letter('y'), 3, 3, 4, 9);
        assert!(satisfies(&db, &Language::parse("xy").unwrap()));
    }
}
