// Seeded-violation fixture: the two functions acquire the registry and a
// database handle in opposite orders, producing a lock-order cycle
// (store.registry -> store.database -> store.registry). The unwraps are
// additional panic-freedom findings.

impl Store {
    fn forward(&self) {
        let databases = self.databases.lock().unwrap();
        let handle = self.handle.lock().unwrap();
        databases.touch(&handle);
    }

    fn backward(&self) {
        let handle = self.handle.lock().unwrap();
        let databases = self.databases.lock().unwrap();
        handle.touch(&databases);
    }
}
