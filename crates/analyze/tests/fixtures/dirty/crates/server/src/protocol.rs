// Seeded-violation fixture: `mystery` is parsed but neither documented in
// the fixture README nor listed in the fixture `VERBS` table.

impl Request {
    pub fn parse(line: &str) -> Result<Request, String> {
        match op {
            "solve" => Ok(Request::Solve),
            "mystery" => Ok(Request::Mystery),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}
