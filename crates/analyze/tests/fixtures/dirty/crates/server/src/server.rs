// Seeded-violation fixture: `ghost` has a stats slot but no parse arm.

const VERBS: [&str; 2] = ["solve", "ghost"];
