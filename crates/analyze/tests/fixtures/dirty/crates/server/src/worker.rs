// Seeded-violation fixture for the per-file lints. Expected findings:
// panic-freedom (unwrap + two indexings), lock-discipline (recv while
// holding the ready-queue lock), atomic-ordering (consumed relaxed RMW),
// and annotation (an allow with no reason).

impl Worker {
    pub fn run(&self) {
        let guard = self.ready.lock().unwrap();
        guard.recv();
    }

    pub fn ticket(&self) -> u64 {
        self.count.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn head(v: &[u8]) -> u8 {
        v[0]
    }

    // lint: allow(panic-freedom)
    pub fn oops(v: &[u8]) -> u8 {
        v[1]
    }
}
