// Clean fixture: one would-be finding, suppressed by a reasoned allow —
// proves suppression counts without tripping the exit code.

pub fn head(v: &[u8]) -> u8 {
    // lint: allow(panic-freedom, fixture proves reasoned suppression works)
    v.first().copied().unwrap()
}
