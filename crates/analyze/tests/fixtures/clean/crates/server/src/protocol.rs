// Clean fixture: every parsed verb is documented and counted.

impl Request {
    pub fn parse(line: &str) -> Result<Request, String> {
        match op {
            "solve" => Ok(Request::Solve),
            "stats" => Ok(Request::Stats),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}
