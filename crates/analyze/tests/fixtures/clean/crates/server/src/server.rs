// Clean fixture: the VERBS table matches the parse arms exactly.

const VERBS: [&str; 2] = ["solve", "stats"];
