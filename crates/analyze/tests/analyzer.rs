//! Integration tests: the analyzer over committed fixture trees (seeded
//! violations under `tests/fixtures/dirty`, a suppressed-but-clean tree
//! under `tests/fixtures/clean`) plus the real workspace, and the CLI's
//! exit-code contract.

use rpq_analyze::{analyze_workspace, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn dirty_fixture_trips_every_lint() {
    let report = analyze_workspace(&fixture("dirty")).expect("fixture tree analyzes");
    let count = |rule: Rule| report.findings.iter().filter(|f| f.rule == rule).count();

    // worker.rs: unwrap + v[0] + v[1]; store lib.rs: four unwraps.
    assert_eq!(count(Rule::PanicFreedom), 7, "{:#?}", report.findings);
    // recv under the ready-queue lock, plus the registry/database order
    // cycle (reported once per participating edge direction, deduped).
    assert!(count(Rule::LockDiscipline) >= 2, "{:#?}", report.findings);
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::LockDiscipline && f.message.contains("cycle")),
        "no lock-order cycle reported: {:#?}",
        report.findings
    );
    // ticket(): consumed relaxed fetch_add.
    assert_eq!(count(Rule::AtomicOrdering), 1, "{:#?}", report.findings);
    // `mystery` undocumented + uncounted; `ghost` counted but unparsed.
    assert_eq!(count(Rule::WireProtocol), 3, "{:#?}", report.findings);
    // The reason-less allow above `oops` (and it suppresses nothing).
    assert_eq!(count(Rule::Annotation), 1, "{:#?}", report.findings);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn clean_fixture_is_green_and_counts_suppressions() {
    let report = analyze_workspace(&fixture("clean")).expect("fixture tree analyzes");
    assert_eq!(report.findings, vec![], "clean fixture must have no findings");
    assert_eq!(report.suppressed, 1, "the reasoned allow must be counted");
}

#[test]
fn real_workspace_is_green() {
    // The repo root is two levels above this crate. Keeping this green is
    // the point of the lint pass: new findings must be fixed or annotated.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze_workspace(&root).expect("workspace analyzes");
    assert_eq!(report.findings, vec![], "the merged tree must analyze clean");
    assert!(report.files > 30, "expected the full workspace, saw {} files", report.files);
    assert!(report.suppressed > 0, "the annotated exceptions should be counted");
}

#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_rpq-analyze");
    let run = |root: &str| {
        let out = Command::new(bin).arg(root).output().expect("analyzer runs");
        (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
    };

    let (code, stdout) = run(fixture("dirty").to_str().unwrap());
    assert_eq!(code, Some(1), "findings must exit 1:\n{stdout}");
    assert!(stdout.contains("[panic-freedom]"), "diagnostics on stdout:\n{stdout}");
    assert!(stdout.contains("[wire-protocol]"), "diagnostics on stdout:\n{stdout}");

    let (code, stdout) = run(fixture("clean").to_str().unwrap());
    assert_eq!(code, Some(0), "clean tree must exit 0:\n{stdout}");
    assert!(stdout.contains("(1 suppressed by `lint: allow`)"), "summary line:\n{stdout}");

    let (code, _) = run("/nonexistent/analyzer/root");
    assert_eq!(code, Some(2), "I/O problems must exit 2");

    let usage = Command::new(bin).args(["a", "b"]).output().expect("analyzer runs");
    assert_eq!(usage.status.code(), Some(2), "bad usage must exit 2");
}
