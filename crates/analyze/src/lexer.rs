//! A lightweight Rust lexer: just enough token structure for the lints.
//!
//! The lexer is deliberately not a full Rust grammar. It produces a flat
//! stream of identifiers, string literals, and single-character punctuation
//! with line numbers, and a separate list of line comments (the carrier for
//! `// lint: allow(...)` annotations). Everything the lints match on —
//! `.unwrap()` chains, `#[cfg(test)]` regions, `match` arms on verb strings,
//! guard bindings — is a short token pattern over this stream, which is why
//! comments, character literals, lifetimes, and raw strings must be consumed
//! correctly (a `'` mistaken for a char literal would swallow half the file)
//! but need no structure of their own.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier, keyword, or numeric literal (numbers appear as
    /// receivers of tuple-field locks, e.g. `self.0.lock()`).
    Ident(String),
    /// A string literal (content without quotes, escapes left as written).
    Str(String),
    /// Any other single character of punctuation.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A `//` line comment (doc comments included), without the slashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line the comment starts on.
    pub line: u32,
    /// Comment text after the leading slashes.
    pub text: String,
    /// Whether the comment is the first thing on its line (`false` for a
    /// trailing comment after code). Annotation scope depends on this: a
    /// trailing `lint: allow` covers its own line, an own-line one covers
    /// the next code line.
    pub own_line: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Line comments, in source order.
    pub comments: Vec<Comment>,
}

impl Token {
    fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The identifier text, or `""` for non-identifiers.
    pub fn ident_or_empty(&self) -> &str {
        self.ident().unwrap_or("")
    }
}

/// Lexes `src` into tokens and comments. Never fails: unterminated literals
/// simply consume to end of file (the lints then see fewer tokens, which can
/// only under-report on files `rustc` would reject anyway).
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                _ if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    self.push_punct(c);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push_punct(&mut self, c: char) {
        self.out.tokens.push(Token { kind: TokKind::Punct(c), line: self.line });
    }

    /// Whether any token has been emitted on the current line already.
    fn line_has_code(&self) -> bool {
        self.out.tokens.last().is_some_and(|t| t.line == self.line)
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let own_line = !self.line_has_code();
        self.pos += 2;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.out.comments.push(Comment { line: start_line, text, own_line });
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some('\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => return,
            }
        }
    }

    /// A `"…"` literal with escapes; multi-line strings keep the line count
    /// honest. The token records the content with escapes unprocessed, which
    /// is exact for the verb literals the protocol lint compares.
    fn string_literal(&mut self) {
        let start_line = self.line;
        self.pos += 1;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.peek(1) {
                        if escaped == '\n' {
                            self.line += 1;
                        }
                        text.push(escaped);
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                '\n' => {
                    self.line += 1;
                    text.push(c);
                    self.pos += 1;
                }
                _ => {
                    text.push(c);
                    self.pos += 1;
                }
            }
        }
        self.out.tokens.push(Token { kind: TokKind::Str(text), line: start_line });
    }

    /// `r"…"` / `r#"…"#` (any number of `#`s), already positioned past the
    /// optional `b`/`r` prefix handling in the caller.
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        let start_line = self.line;
        debug_assert_eq!(self.peek(0), Some('"'));
        self.pos += 1;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '"' && (0..hashes).all(|i| self.peek(1 + i) == Some('#')) {
                self.pos += 1 + hashes;
                self.out.tokens.push(Token { kind: TokKind::Str(text), line: start_line });
                return;
            }
            if c == '\n' {
                self.line += 1;
            }
            text.push(c);
            self.pos += 1;
        }
        self.out.tokens.push(Token { kind: TokKind::Str(text), line: start_line });
    }

    /// Distinguishes `'a'` (char literal, consumed silently) from `'a`
    /// (lifetime, consumed silently) — both are invisible to the lints, but
    /// mis-lexing either would derail everything after it.
    fn char_or_lifetime(&mut self) {
        let next = self.peek(1);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && self.peek(2) != Some('\'');
        if is_lifetime {
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.pos += 1;
            }
            return;
        }
        // Char literal: consume to the closing quote, honoring escapes.
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => self.pos += 2,
                '\'' => {
                    self.pos += 1;
                    return;
                }
                '\n' => {
                    // Stray quote (e.g. inside a macro). Do not swallow the
                    // rest of the file.
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Identifiers, with the raw-string / byte-string / raw-identifier
    /// prefixes (`r"`, `r#"`, `b"`, `br"`, `r#ident`) peeled off first.
    fn ident_or_prefixed_literal(&mut self) {
        let c = self.peek(0).unwrap_or(' ');
        if c == 'r' || c == 'b' {
            let mut ahead = 1;
            if c == 'b' && self.peek(1) == Some('r') {
                ahead = 2;
            }
            let mut probe = ahead;
            while self.peek(probe) == Some('#') {
                probe += 1;
            }
            if self.peek(probe) == Some('"') && (c != 'b' || ahead == 2 || probe == ahead) {
                if probe == ahead && ahead == 1 && c == 'b' {
                    // b"…": an escaped string, not a raw one.
                    self.pos += 1;
                    self.string_literal();
                } else {
                    self.pos += ahead;
                    self.raw_string();
                }
                return;
            }
            if c == 'r' && self.peek(1) == Some('#') {
                // Raw identifier r#ident.
                self.pos += 2;
            }
        }
        let line = self.line;
        let mut name = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            name.push(self.chars[self.pos]);
            self.pos += 1;
        }
        self.out.tokens.push(Token { kind: TokKind::Ident(name), line });
    }

    /// Numbers become `Ident` tokens: the lints only care that `self.0` has
    /// a "name" before `.lock()`. `0.lock()` must lex as `0` `.` `lock`, so
    /// a `.` is only folded into the number when a digit follows it.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            text.push(self.chars[self.pos]);
            self.pos += 1;
        }
        if self.peek(0) == Some('.') && matches!(self.peek(1), Some(c) if c.is_ascii_digit()) {
            text.push('.');
            self.pos += 1;
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                text.push(self.chars[self.pos]);
                self.pos += 1;
            }
        }
        self.out.tokens.push(Token { kind: TokKind::Ident(text), line });
    }
}

/// Returns the index of the matching close delimiter for the open delimiter
/// at `open` (which must be `(`, `[`, or `{`), or `None` when unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let (open_c, close_c) = match tokens.get(open)?.kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open) {
        if tok.is_punct(open_c) {
            depth += 1;
        } else if tok.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Returns the index of the matching open delimiter for the close delimiter
/// at `close`, scanning backwards.
pub fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let (open_c, close_c) = match tokens.get(close)?.kind {
        TokKind::Punct(')') => ('(', ')'),
        TokKind::Punct(']') => ('[', ']'),
        TokKind::Punct('}') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if tokens[i].is_punct(close_c) {
            depth += 1;
        } else if tokens[i].is_punct(open_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_are_consumed() {
        let src = r##"
            // a comment with .unwrap() inside
            /* block /* nested */ still comment .expect( */
            fn f<'a>(x: &'a str) -> char { 'x' }
            let s = "quoted .unwrap() text";
            let r = r#"raw "string" body"#;
            let b = b"bytes \" here";
        "##;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(!names.contains(&"expect".to_string()));
        assert!(names.contains(&"char".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let s = \"a\nb\";\nfoo();\n";
        let lexed = lex(src);
        let foo = lexed.tokens.iter().find(|t| t.is_ident("foo")).expect("foo token");
        assert_eq!(foo.line, 3);
    }

    #[test]
    fn tuple_field_receiver_lexes_as_parts() {
        let lexed = lex("self.0.lock()");
        let names: Vec<_> = lexed.tokens.iter().map(|t| t.ident_or_empty().to_string()).collect();
        assert_eq!(names, vec!["self", "", "0", "", "lock", "", ""]);
    }

    #[test]
    fn char_literal_quote_does_not_swallow_file() {
        let names = idents("let c = '\"'; target.unwrap()");
        assert!(names.contains(&"unwrap".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("fn f() {}\n// lint: allow(panic-freedom, ok)\nfn g() {}\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint: allow"));
    }

    #[test]
    fn delimiter_matching() {
        // Only the requested delimiter kind is counted: `f(a[b], g(c))`
        // closes its outer paren at index 11.
        let lexed = lex("f(a[b], g(c))");
        assert_eq!(matching_close(&lexed.tokens, 1), Some(11));
        assert_eq!(matching_open(&lexed.tokens, 11), Some(1));
        assert_eq!(matching_close(&lexed.tokens, 3), Some(5));
    }
}
