#![forbid(unsafe_code)]
//! `rpq-analyze` — workspace-local static analysis for the RPQ resilience
//! codebase, hand-rolled in the repo's zero-dependency style.
//!
//! Four project-specific lints run over a lightweight token stream
//! ([`lexer`]) of every in-scope workspace `.rs` file:
//!
//! | rule | checks |
//! |------|--------|
//! | `panic-freedom`    | no `unwrap`/`expect`/`panic!`/`[idx]` on request paths |
//! | `lock-discipline`  | lock-order cycles; locks held across solves / blocking I/O |
//! | `atomic-ordering`  | `Ordering::Relaxed` RMWs whose result is consumed |
//! | `wire-protocol`    | every `Request` verb documented and counted |
//!
//! Findings print as clickable `file:line: [rule] message` diagnostics.
//! Deliberate exceptions are annotated in-source with
//! `// lint: allow(<rule>, <reason>)` (see [`scope::Allows`]); the reason is
//! mandatory and malformed annotations are themselves findings, so the
//! suppression trail stays auditable.

pub mod lexer;
pub mod lints;
pub mod scope;

use lints::locks::{self, LockEdge};
use scope::{crate_of, policy_for, Allows, FilePolicy};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules, in catalogue order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No panic-capable constructs on request paths.
    PanicFreedom,
    /// Lock-order cycles and locks held across blocking calls.
    LockDiscipline,
    /// Relaxed read-modify-writes outside pure counters.
    AtomicOrdering,
    /// Protocol verbs must be documented and counted.
    WireProtocol,
    /// Malformed `lint:` annotations (never suppressible).
    Annotation,
}

impl Rule {
    /// The rule's diagnostic / annotation name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PanicFreedom => "panic-freedom",
            Rule::LockDiscipline => "lock-discipline",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::WireProtocol => "wire-protocol",
            Rule::Annotation => "annotation",
        }
    }

    /// Parses an annotation rule name (`relaxed-ok` aliases the atomic
    /// lint, matching its prescribed annotation wording).
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "panic-freedom" => Some(Rule::PanicFreedom),
            "lock-discipline" => Some(Rule::LockDiscipline),
            "atomic-ordering" | "relaxed-ok" => Some(Rule::AtomicOrdering),
            "wire-protocol" => Some(Rule::WireProtocol),
            _ => None,
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which lint fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(file: &str, line: u32, rule: Rule, message: String) -> Finding {
        Finding { file: file.to_string(), line, rule, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
    }
}

/// Per-file analysis output.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Findings silenced by `lint: allow` annotations.
    pub suppressed: usize,
    /// Lock-graph edges contributed to the workspace cycle check.
    pub edges: Vec<LockEdge>,
}

/// Analyzes one file's source under `policy` (path is workspace-relative
/// and only used for labeling and crate attribution).
pub fn analyze_file(rel_path: &str, src: &str, policy: FilePolicy) -> FileAnalysis {
    let lexed = lexer::lex(src);
    let masked = scope::test_region_mask(&lexed.tokens);
    let allows = Allows::parse(rel_path, &lexed.comments);
    let mut raw = Vec::new();
    raw.extend(lints::panics::check(rel_path, &lexed.tokens, &masked, policy));
    let mut edges = Vec::new();
    if policy.lock_lint {
        let scan = locks::scan(rel_path, crate_of(rel_path), &lexed.tokens, &masked);
        raw.extend(scan.findings);
        edges = scan.edges;
    }
    if policy.atomic_lint {
        raw.extend(lints::atomics::check(rel_path, &lexed.tokens, &masked));
    }
    let mut analysis = FileAnalysis { edges, ..FileAnalysis::default() };
    for finding in raw {
        if allows.suppresses(finding.rule, finding.line) {
            analysis.suppressed += 1;
        } else {
            analysis.findings.push(finding);
        }
    }
    // Annotation problems are findings about the suppressions themselves.
    analysis.findings.extend(allows.findings);
    analysis
}

/// Whole-workspace analysis report.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Total suppressed findings.
    pub suppressed: usize,
    /// Number of files analyzed.
    pub files: usize,
}

/// Runs every lint over the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut allows_by_file: HashMap<String, Allows> = HashMap::new();
    for rel_path in &files {
        let Some(policy) = policy_for(rel_path) else { continue };
        let src = fs::read_to_string(root.join(rel_path))?;
        allows_by_file
            .insert(rel_path.clone(), Allows::parse(rel_path, &lexer::lex(&src).comments));
        let analysis = analyze_file(rel_path, &src, policy);
        report.files += 1;
        report.suppressed += analysis.suppressed;
        report.findings.extend(analysis.findings);
        edges.extend(analysis.edges);
    }
    // Workspace-level passes: lock-order cycles and protocol exhaustiveness.
    let mut global = locks::cycle_findings(&edges);
    global.extend(protocol_findings(root)?);
    for finding in global {
        let suppressed = allows_by_file
            .get(&finding.file)
            .is_some_and(|allows| allows.suppresses(finding.rule, finding.line));
        if suppressed {
            report.suppressed += 1;
        } else {
            report.findings.push(finding);
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn protocol_findings(root: &Path) -> io::Result<Vec<Finding>> {
    let protocol_path = "crates/server/src/protocol.rs";
    let server_path = "crates/server/src/server.rs";
    let Ok(protocol_src) = fs::read_to_string(root.join(protocol_path)) else {
        // Not a tree with the wire protocol (e.g. a test fixture root).
        return Ok(Vec::new());
    };
    let readme = fs::read_to_string(root.join("README.md")).ok();
    let server_src = fs::read_to_string(root.join(server_path)).ok();
    Ok(lints::protocol::check(
        protocol_path,
        &protocol_src,
        readme.as_deref(),
        server_path,
        server_src.as_deref(),
    ))
}

/// Collects workspace-relative paths (with `/` separators) of every `.rs`
/// file under `dir`, skipping obvious non-source trees early.
fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_to_string(rel));
            }
        }
    }
    Ok(())
}

fn rel_to_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Re-exported for the CLI and tests.
pub use scope::FilePolicy as Policy;

/// Convenience: `PathBuf` of the workspace root to analyze, from CLI args.
/// Defaults to the current directory (what `cargo run -p rpq-analyze` gives
/// at the workspace root).
pub fn root_from_args(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => Ok(PathBuf::from(".")),
        [root] if !root.starts_with('-') => Ok(PathBuf::from(root)),
        _ => Err("usage: rpq-analyze [workspace-root]".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in
            [Rule::PanicFreedom, Rule::LockDiscipline, Rule::AtomicOrdering, Rule::WireProtocol]
        {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("relaxed-ok"), Some(Rule::AtomicOrdering));
        assert_eq!(Rule::from_name("annotation"), None, "annotation is not suppressible");
    }

    #[test]
    fn finding_display_is_clickable() {
        let f = Finding::new("crates/store/src/lib.rs", 42, Rule::PanicFreedom, "msg".into());
        assert_eq!(f.to_string(), "crates/store/src/lib.rs:42: [panic-freedom] msg");
    }

    #[test]
    fn analyze_file_suppression_counts() {
        let policy = scope::policy_for("crates/store/src/lib.rs").unwrap();
        let src = "fn f() {\n    x.unwrap(); // lint: allow(panic-freedom, recovered below)\n    \
                   y.unwrap();\n}\n";
        let analysis = analyze_file("crates/store/src/lib.rs", src, policy);
        assert_eq!(analysis.suppressed, 1);
        assert_eq!(analysis.findings.len(), 1);
        assert_eq!(analysis.findings[0].line, 3);
    }

    #[test]
    fn args_parsing() {
        assert!(root_from_args(&[]).is_ok());
        assert!(root_from_args(&["some/dir".into()]).is_ok());
        assert!(root_from_args(&["--help".into()]).is_err());
        assert!(root_from_args(&["a".into(), "b".into()]).is_err());
    }
}
