//! Which code a finding may land on: test-region masking, per-file lint
//! policy, and `// lint: allow(...)` suppression annotations.

use crate::lexer::{matching_close, Comment, Token};
use crate::{Finding, Rule};
use std::collections::HashMap;

/// Marks every token inside a `#[test]` function or `#[cfg(test)]` item
/// (including the attribute itself) as test code. The lints report nothing
/// in masked regions: panic-freedom and friends are production-path
/// guarantees, and tests assert by panicking on purpose.
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some(attr_end) = matching_close(tokens, i + 1) {
                if is_test_attr(&tokens[i + 2..attr_end]) {
                    let item_end = item_end_after(tokens, attr_end + 1);
                    for slot in masked.iter_mut().take(item_end + 1).skip(i) {
                        *slot = true;
                    }
                    i = item_end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    masked
}

/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`, which is production-only code.
fn is_test_attr(attr: &[Token]) -> bool {
    let mut saw_test = false;
    let mut saw_not = false;
    for tok in attr {
        if tok.is_ident("test") {
            saw_test = true;
        }
        if tok.is_ident("not") {
            saw_not = true;
        }
    }
    saw_test && !saw_not
}

/// The end of the item an attribute applies to: the matching `}` of the
/// first `{` at delimiter depth zero (fn/mod body), or the first `;` (e.g.
/// `#[cfg(test)] mod tests;`). Further attributes in between are skipped by
/// the depth tracking; string tokens cannot fake a `;`.
fn item_end_after(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < tokens.len() {
        let tok = &tokens[i];
        if depth == 0 {
            if tok.is_punct('{') {
                return matching_close(tokens, i).unwrap_or(tokens.len() - 1);
            }
            if tok.is_punct(';') {
                return i;
            }
        }
        if tok.is_punct('(') || tok.is_punct('[') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            depth -= 1;
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Parsed suppression annotations for one file.
///
/// Grammar (inside any `//` comment):
///
/// ```text
/// lint: allow(<rule>, <reason>)        // suppresses <rule> on this line
///                                      // and the next line
/// lint: allow-file(<rule>, <reason>)   // suppresses <rule> in this file
/// ```
///
/// The reason is mandatory: an annotation without one is itself reported
/// (rule `annotation`), so suppressions stay auditable. `relaxed-ok` is an
/// accepted alias for `atomic-ordering`, matching the lint's wording.
#[derive(Debug, Default)]
pub struct Allows {
    by_line: HashMap<u32, Vec<Rule>>,
    file_wide: Vec<Rule>,
    /// Malformed annotations found while parsing.
    pub findings: Vec<Finding>,
}

impl Allows {
    /// Parses every annotation in `comments` (from file `path`). A trailing
    /// annotation covers its own line; an own-line annotation covers the
    /// next code line (skipping further own-line comments, so annotations
    /// stack above the code they describe).
    pub fn parse(path: &str, comments: &[Comment]) -> Allows {
        use std::collections::HashSet;
        let own_line_comments: HashSet<u32> =
            comments.iter().filter(|c| c.own_line).map(|c| c.line).collect();
        let mut allows = Allows::default();
        for comment in comments {
            // Doc comments (`///`, `//!`) are prose — the annotation grammar
            // only binds in plain `//` comments, so documentation may quote
            // it freely.
            if comment.text.starts_with('/') || comment.text.starts_with('!') {
                continue;
            }
            let Some(at) = comment.text.find("lint:") else { continue };
            let rest = comment.text[at + "lint:".len()..].trim_start();
            let target_line = if comment.own_line {
                let mut line = comment.line + 1;
                while own_line_comments.contains(&line) {
                    line += 1;
                }
                line
            } else {
                comment.line
            };
            let (file_wide, args) = if let Some(args) = rest.strip_prefix("allow-file(") {
                (true, args)
            } else if let Some(args) = rest.strip_prefix("allow(") {
                (false, args)
            } else {
                allows.findings.push(Finding::new(
                    path,
                    comment.line,
                    Rule::Annotation,
                    "unrecognized `lint:` annotation; expected `lint: allow(<rule>, <reason>)`"
                        .to_string(),
                ));
                continue;
            };
            match parse_allow_args(args) {
                Ok(rule) => {
                    if file_wide {
                        allows.file_wide.push(rule);
                    } else {
                        allows.by_line.entry(target_line).or_default().push(rule);
                    }
                }
                Err(problem) => {
                    allows.findings.push(Finding::new(
                        path,
                        comment.line,
                        Rule::Annotation,
                        problem,
                    ));
                }
            }
        }
        allows
    }

    /// Whether a finding of `rule` on `line` is suppressed by a file-wide
    /// or line-targeted allow.
    pub fn suppresses(&self, rule: Rule, line: u32) -> bool {
        self.file_wide.contains(&rule)
            || self.by_line.get(&line).is_some_and(|rules| rules.contains(&rule))
    }
}

fn parse_allow_args(args: &str) -> Result<Rule, String> {
    let Some(close) = args.find(')') else {
        return Err("unterminated `lint: allow(...)` annotation".to_string());
    };
    let inner = &args[..close];
    let Some((rule_name, reason)) = inner.split_once(',') else {
        return Err(format!(
            "`lint: allow({inner})` is missing a reason; write `allow(<rule>, <reason>)`"
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("`lint: allow(...)` reason must not be empty".to_string());
    }
    let rule_name = rule_name.trim();
    Rule::from_name(rule_name)
        .ok_or_else(|| format!("unknown lint rule `{rule_name}` in allow annotation"))
}

/// Which lints run on a file, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePolicy {
    /// `unwrap`/`expect`/`panic!` and friends are findings.
    pub panic_lint: bool,
    /// `[idx]` indexing is a finding (request-path crates only).
    pub index_lint: bool,
    /// Guard scopes feed the lock graph and held-across-blocking checks.
    pub lock_lint: bool,
    /// Relaxed read-modify-writes with consumed results are findings.
    pub atomic_lint: bool,
}

/// Crates whose request paths must be panic-free: a panic in these unwinds a
/// server worker or poisons shared state.
const PANIC_FREE_CRATES: [&str; 5] = ["server", "store", "core", "obs", "flow"];

/// Crates where `[idx]` indexing is also banned. `flow`/`core` index dense
/// CSR arenas pervasively with invariant-checked cursors, so the indexing
/// sub-rule is scoped to the protocol/state layers where an out-of-bounds
/// panic is reachable from untrusted input.
const INDEX_FREE_CRATES: [&str; 2] = ["server", "store"];

/// Returns the lint policy for `rel_path` (workspace-relative, `/`-separated)
/// or `None` when the file is out of scope: vendored stand-ins, bench
/// harness code, tests/benches/examples directories, and build outputs.
pub fn policy_for(rel_path: &str) -> Option<FilePolicy> {
    let components: Vec<&str> = rel_path.split('/').collect();
    const SKIP_DIRS: [&str; 7] =
        ["target", ".git", "vendor", "tests", "benches", "examples", "fixtures"];
    if components.iter().any(|c| SKIP_DIRS.contains(c)) {
        return None;
    }
    let crate_name = match components.first() {
        Some(&"crates") => *components.get(1)?,
        // Workspace-root src/ (the facade crate).
        Some(&"src") => "rpq",
        _ => return None,
    };
    if crate_name == "bench" {
        return None;
    }
    Some(FilePolicy {
        panic_lint: PANIC_FREE_CRATES.contains(&crate_name),
        index_lint: INDEX_FREE_CRATES.contains(&crate_name),
        lock_lint: true,
        atomic_lint: true,
    })
}

/// The crate a workspace-relative path belongs to (lock classes are
/// namespaced by crate so `stripe` in `obs` and `server` stay distinct).
pub fn crate_of(rel_path: &str) -> &str {
    let mut components = rel_path.split('/');
    match components.next() {
        Some("crates") => components.next().unwrap_or("rpq"),
        _ => "rpq",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(!mask[at("live")]);
        assert!(mask[at("helper")]);
        assert!(!mask[at("after")]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() {}\n";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        let at = lexed.tokens.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(!mask[at]);
    }

    #[test]
    fn test_fn_with_following_attrs_is_masked() {
        let src = "#[test]\n#[ignore]\nfn check() { body(); }\nfn live() {}\n";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        let at = |name: &str| lexed.tokens.iter().position(|t| t.is_ident(name)).unwrap();
        assert!(mask[at("body")]);
        assert!(!mask[at("live")]);
    }

    #[test]
    fn allow_annotations_parse_and_suppress() {
        let lexed = lex("// lint: allow(panic-freedom, startup-only path)\nx.unwrap();\n\
             y.unwrap(); // lint: allow(panic-freedom, same line)\n");
        let allows = Allows::parse("f.rs", &lexed.comments);
        assert!(allows.findings.is_empty());
        assert!(allows.suppresses(Rule::PanicFreedom, 2));
        assert!(allows.suppresses(Rule::PanicFreedom, 3));
        assert!(!allows.suppresses(Rule::PanicFreedom, 5));
        assert!(!allows.suppresses(Rule::LockDiscipline, 2));
    }

    #[test]
    fn relaxed_ok_alias_and_file_wide() {
        let lexed = lex("// lint: allow-file(panic-freedom, parser keeps pos < len)\n\
             // lint: allow(relaxed-ok, monotonic ticket counter)\nt.fetch_add(1);\n");
        let allows = Allows::parse("f.rs", &lexed.comments);
        assert!(allows.findings.is_empty());
        assert!(allows.suppresses(Rule::PanicFreedom, 999));
        assert!(allows.suppresses(Rule::AtomicOrdering, 3));
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let lexed = lex("// lint: allow(panic-freedom)\nx.unwrap();\n");
        let allows = Allows::parse("f.rs", &lexed.comments);
        assert_eq!(allows.findings.len(), 1);
        assert_eq!(allows.findings[0].rule, Rule::Annotation);
    }

    #[test]
    fn policy_scoping() {
        assert!(policy_for("crates/server/src/cache.rs").unwrap().index_lint);
        assert!(policy_for("crates/flow/src/csr.rs").unwrap().panic_lint);
        assert!(!policy_for("crates/flow/src/csr.rs").unwrap().index_lint);
        assert!(!policy_for("crates/cli/src/main.rs").unwrap().panic_lint);
        assert!(policy_for("crates/vendor/rand/src/lib.rs").is_none());
        assert!(policy_for("crates/server/tests/proto.rs").is_none());
        assert!(policy_for("crates/bench/src/lib.rs").is_none());
        assert!(policy_for("src/lib.rs").unwrap().lock_lint);
    }
}
