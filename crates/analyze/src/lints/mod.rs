//! The four lint passes and their shared token-walking helpers.

pub mod atomics;
pub mod locks;
pub mod panics;
pub mod protocol;

use crate::lexer::{matching_open, TokKind, Token};

/// Walks left from `end` (the last token of a receiver expression, i.e. the
/// token just before a `.method` dot) to the first token of the whole chain:
/// `self.tick.fetch_add` → index of `self`, `registry.get(name).lock` →
/// index of `registry`, `Foo::bar().baz` → index of `Foo`.
pub(crate) fn chain_start(tokens: &[Token], end: usize) -> usize {
    let mut j = end;
    loop {
        // Step over the current chain segment.
        match tokens[j].kind {
            TokKind::Punct(')') | TokKind::Punct(']') => {
                let Some(open) = matching_open(tokens, j) else { return j };
                j = open;
                // A call's callee / an indexed receiver sits directly left.
                if j > 0 && matches!(tokens[j - 1].kind, TokKind::Ident(_)) {
                    j -= 1;
                }
            }
            TokKind::Ident(_) => {}
            _ => return j,
        }
        // Continue through `.` or `::` connectors, else the chain starts here.
        if j >= 2 && tokens[j - 1].is_punct('.') {
            j -= 2;
        } else if j >= 3 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            j -= 3;
        } else {
            return j;
        }
    }
}

/// The receiver identifier of a `.method()` call whose `.` is at `dot`:
/// the plain identifier (`databases`, `handle`, `0`), the callee of a call
/// (`stripe` in `self.stripe(k).lock()`), or the indexed collection
/// (`shards` in `self.shards[i].lock()`). `None` when the receiver is not
/// nameable (e.g. a parenthesized expression).
pub(crate) fn receiver_name(tokens: &[Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let j = dot - 1;
    match &tokens[j].kind {
        TokKind::Ident(name) => Some(name.clone()),
        TokKind::Punct(')') | TokKind::Punct(']') => {
            let open = matching_open(tokens, j)?;
            match open.checked_sub(1).map(|k| &tokens[k].kind) {
                Some(TokKind::Ident(name)) => Some(name.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn dot_before(src: &str, method: &str) -> (Vec<Token>, usize) {
        let tokens = lex(src).tokens;
        let at = tokens.iter().position(|t| t.is_ident(method)).unwrap();
        (tokens, at - 1)
    }

    #[test]
    fn receiver_of_plain_field() {
        let (tokens, dot) = dot_before("self.databases.lock()", "lock");
        assert_eq!(receiver_name(&tokens, dot).as_deref(), Some("databases"));
    }

    #[test]
    fn receiver_of_accessor_call_and_index() {
        let (tokens, dot) = dot_before("self.stripe(fp).lock()", "lock");
        assert_eq!(receiver_name(&tokens, dot).as_deref(), Some("stripe"));
        let (tokens, dot) = dot_before("self.shards[i].lock()", "lock");
        assert_eq!(receiver_name(&tokens, dot).as_deref(), Some("shards"));
    }

    #[test]
    fn chain_start_walks_calls_and_paths() {
        let (tokens, dot) = dot_before("let x = self.tick.fetch_add(1)", "fetch_add");
        assert!(tokens[chain_start(&tokens, dot - 1)].is_ident("self"));
        let (tokens, dot) = dot_before("y = Foo::bar(a, b).baz()", "baz");
        assert!(tokens[chain_start(&tokens, dot - 1)].is_ident("Foo"));
    }
}
