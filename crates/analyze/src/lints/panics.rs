//! Lint 1 — panic-freedom on request paths.
//!
//! A panic in server/store/core/obs/flow production code unwinds a worker
//! thread mid-request and poisons every lock it held; the protocol has a
//! typed `internal` error for exactly these situations. This lint flags the
//! panic-capable constructs: `.unwrap()`, `.expect(...)`, the panicking
//! macros, and (in the protocol/state crates) `[idx]` indexing.

use crate::lexer::{matching_close, TokKind, Token};
use crate::scope::FilePolicy;
use crate::{Finding, Rule};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede a `[` that is *not* a postfix index.
const KEYWORDS: [&str; 18] = [
    "in", "let", "return", "if", "else", "match", "break", "continue", "loop", "while", "for",
    "move", "mut", "ref", "as", "where", "dyn", "yield",
];

/// Runs the panic-freedom lint over one file's tokens.
pub fn check(path: &str, tokens: &[Token], masked: &[bool], policy: FilePolicy) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !policy.panic_lint {
        return findings;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] {
            continue;
        }
        match &tok.kind {
            TokKind::Punct('.') => {
                let method = match tokens.get(i + 1).map(|t| t.ident_or_empty()) {
                    Some(m @ ("unwrap" | "expect")) => m,
                    _ => continue,
                };
                if !tokens.get(i + 2).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                // `self.expect(...)` is a parser's own method (json.rs
                // style), not `Result::expect`.
                if i > 0 && tokens[i - 1].is_ident("self") {
                    continue;
                }
                findings.push(Finding::new(
                    path,
                    tokens[i + 1].line,
                    Rule::PanicFreedom,
                    format!("`.{method}()` can panic on a request path; return a typed error"),
                ));
            }
            TokKind::Ident(name)
                if PANIC_MACROS.contains(&name.as_str())
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                findings.push(Finding::new(
                    path,
                    tok.line,
                    Rule::PanicFreedom,
                    format!("`{name}!` aborts the worker thread; return a typed error"),
                ));
            }
            TokKind::Punct('[') if policy.index_lint => {
                if let Some(finding) = check_index(path, tokens, i) {
                    findings.push(finding);
                }
            }
            _ => {}
        }
    }
    findings
}

/// `recv[idx]`-style indexing: a `[` in postfix position (after an
/// identifier, call, or another index). Full-range `[..]` cannot panic and
/// is skipped.
fn check_index(path: &str, tokens: &[Token], open: usize) -> Option<Finding> {
    if open == 0 {
        return None;
    }
    let postfix = match &tokens[open - 1].kind {
        // A keyword before `[` means the bracket starts an array literal
        // (`for x in [a, b]`) or a destructuring pattern (`let [a, b] = v`),
        // not a postfix index.
        TokKind::Ident(name) => !KEYWORDS.contains(&name.as_str()),
        TokKind::Punct(')') | TokKind::Punct(']') => true,
        _ => false,
    };
    if !postfix {
        return None;
    }
    let close = matching_close(tokens, open)?;
    let inner = &tokens[open + 1..close];
    if inner.iter().all(|t| t.is_punct('.')) {
        return None;
    }
    Some(Finding::new(
        path,
        tokens[open].line,
        Rule::PanicFreedom,
        "indexing can panic on out-of-range input; use `.get(...)` or a checked cursor".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::test_region_mask;

    fn run(src: &str, policy: FilePolicy) -> Vec<Finding> {
        let lexed = lex(src);
        let masked = test_region_mask(&lexed.tokens);
        check("f.rs", &lexed.tokens, &masked, policy)
    }

    const FULL: FilePolicy =
        FilePolicy { panic_lint: true, index_lint: true, lock_lint: true, atomic_lint: true };

    #[test]
    fn unwrap_expect_and_macros_fire() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"boom\"); unreachable!(); }";
        let rules: Vec<_> = run(src, FULL).into_iter().map(|f| f.line).collect();
        assert_eq!(rules.len(), 4);
    }

    #[test]
    fn parser_self_expect_is_not_a_result_expect() {
        assert!(run("fn f(&mut self) { self.expect(b'\"'); }", FULL).is_empty());
        assert_eq!(run("fn f(&self) { self.addr.lock().expect(\"x\"); }", FULL).len(), 1);
    }

    #[test]
    fn indexing_fires_only_under_index_policy() {
        let src = "fn f() { let x = buf[i]; }";
        assert_eq!(run(src, FULL).len(), 1);
        let no_index = FilePolicy { index_lint: false, ..FULL };
        assert!(run(src, no_index).is_empty());
    }

    #[test]
    fn non_postfix_brackets_do_not_fire() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() -> Vec<u8> { vec![0; 4] }";
        assert!(run(src, FULL).is_empty());
    }

    #[test]
    fn keyword_brackets_are_not_indexing() {
        assert!(run("fn f() { for x in [1, 2] { use_it(x); } }", FULL).is_empty());
        assert!(run("fn f(v: [u8; 2]) { let [a, b] = v; touch(a, b); }", FULL).is_empty());
        assert!(run("fn f(v: &[u8]) -> u8 { return [1u8, 2][0]; }", FULL).len() == 1);
    }

    #[test]
    fn full_range_slice_is_allowed() {
        assert!(run("fn f(v: &[u8]) -> &[u8] { &v[..] }", FULL).is_empty());
        assert_eq!(run("fn f(v: &[u8]) -> &[u8] { &v[1..] }", FULL).len(), 1);
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn live() { y.unwrap(); }";
        let findings = run(src, FULL);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }
}
