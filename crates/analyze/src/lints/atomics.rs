//! Lint 3 — atomic-ordering audit.
//!
//! `Ordering::Relaxed` is correct for pure counters: increments whose result
//! nobody reads back, aggregated later by `load`. The moment a relaxed
//! read-modify-write's *return value* feeds program logic (a ticket, an id,
//! a CAS decision), the ordering becomes part of the synchronization
//! protocol and deserves either a stronger ordering or an explicit
//! `relaxed-ok` annotation explaining why relaxed still works.

use crate::lexer::{matching_close, TokKind, Token};
use crate::lints::chain_start;
use crate::{Finding, Rule};

const RMW_METHODS: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_min",
    "fetch_max",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Runs the atomic-ordering lint over one file's tokens.
pub fn check(path: &str, tokens: &[Token], masked: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if masked[i] || !tok.is_punct('.') {
            continue;
        }
        let Some(method) = tokens.get(i + 1).map(|t| t.ident_or_empty()) else { continue };
        if !RMW_METHODS.contains(&method) {
            continue;
        }
        let Some(open) = (i + 2 < tokens.len() && tokens[i + 2].is_punct('(')).then_some(i + 2)
        else {
            continue;
        };
        let Some(close) = matching_close(tokens, open) else { continue };
        let orderings: Vec<&str> = tokens[open + 1..close]
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(name) if ORDERINGS.contains(&name.as_str()) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        if orderings.is_empty() || orderings.iter().any(|o| *o != "Relaxed") {
            continue;
        }
        if result_is_discarded(tokens, i, close) {
            continue;
        }
        findings.push(Finding::new(
            path,
            tokens[i + 1].line,
            Rule::AtomicOrdering,
            format!(
                "relaxed `{method}` result is consumed — this is synchronization, not a \
                 counter; use a stronger ordering or annotate `relaxed-ok` with a proof"
            ),
        ));
    }
    findings
}

/// A pure counter bump is a whole statement of the form
/// `receiver.chain.fetch_add(…);` — the statement starts at the receiver and
/// the call's value falls off the end. Anything else (a `let`, an enclosing
/// expression, arithmetic on the result) consumes the result.
fn result_is_discarded(tokens: &[Token], dot: usize, close: usize) -> bool {
    if !tokens.get(close + 1).is_some_and(|t| t.is_punct(';')) {
        return false;
    }
    if dot == 0 {
        return true;
    }
    let start = chain_start(tokens, dot - 1);
    start == 0
        || matches!(
            tokens[start - 1].kind,
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let masked = vec![false; lexed.tokens.len()];
        check("f.rs", &lexed.tokens, &masked)
    }

    #[test]
    fn discarded_counter_bump_is_fine() {
        assert!(run("fn f() { self.hits.fetch_add(1, Ordering::Relaxed); }").is_empty());
        assert!(run("fn f() { self.buckets[idx(us)].fetch_add(1, Ordering::Relaxed); }").is_empty());
        assert!(run("fn f() { self.max.fetch_max(us, Ordering::Relaxed); }").is_empty());
    }

    #[test]
    fn consumed_results_fire() {
        let in_expr = "fn f() -> u64 { self.tick.fetch_add(1, Ordering::Relaxed) + 1 }";
        assert_eq!(run(in_expr).len(), 1);
        let in_let = "fn f() { let t = self.tick.fetch_add(1, Ordering::Relaxed); use_it(t); }";
        assert_eq!(run(in_let).len(), 1);
        let as_arg = "fn f() { g(self.tick.fetch_add(1, Ordering::Relaxed)); }";
        assert_eq!(run(as_arg).len(), 1);
    }

    #[test]
    fn stronger_orderings_are_fine() {
        assert!(
            run("fn f() { let t = self.tick.fetch_add(1, Ordering::AcqRel); g(t); }").is_empty()
        );
        let cas = "fn f() { let r = x.compare_exchange(a, b, Ordering::AcqRel, \
                   Ordering::Relaxed); g(r); }";
        assert!(run(cas).is_empty(), "mixed orderings are not all-relaxed");
    }

    #[test]
    fn relaxed_cas_fires() {
        let cas = "fn f() -> bool { x.compare_exchange(a, b, Ordering::Relaxed, \
                   Ordering::Relaxed).is_ok() }";
        assert_eq!(run(cas).len(), 1);
    }

    #[test]
    fn non_atomic_methods_without_ordering_are_ignored() {
        assert!(run("fn f() { let x = map.swap(a, b); g(x); }").is_empty());
    }
}
