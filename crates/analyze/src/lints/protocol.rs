//! Lint 4 — wire-protocol exhaustiveness.
//!
//! The NDJSON protocol has one source of truth: the verb match in
//! `Request::parse` (`crates/server/src/protocol.rs`). Everything else must
//! track it. For every verb parsed there, this lint requires:
//!
//! - a README mention (a backticked `` `verb` `` or an `"op":"verb"`
//!   example) so the protocol section cannot silently fall behind; and
//! - an entry in the server's `VERBS` table, which drives the
//!   `requests_by_verb` stats counters and the Prometheus per-verb series.
//!
//! The reverse direction is checked too: a `VERBS` entry without a parse arm
//! is a stats row that can never tick.
//!
//! Beyond the verbs, the per-request **query settings** (the `json.get("…")`
//! lookups of `parse_query_spec` — `bag`, `flow`, `want_cut`, `deadline_ms`,
//! `cost_budget_us`, …) and the solve **response fields** (the literal keys
//! of `outcome_json` / `tiered_outcome_json` — `value`, `bounds`, `tier`,
//! `degraded`, `route`, …) must each have a backticked README mention, so a
//! new wire field cannot ship undocumented.

use crate::lexer::{lex, matching_close, TokKind, Token};
use crate::{Finding, Rule};

/// A verb extracted from a match arm, with its source line.
#[derive(Debug, PartialEq, Eq)]
pub struct Verb {
    /// The wire-level op name.
    pub name: String,
    /// 1-based line of the match arm in protocol.rs.
    pub line: u32,
}

/// Extracts the verbs matched by `pub fn parse` in protocol.rs source:
/// string literals in arm position (`"verb" =>` or `"a" | "b" =>`).
pub fn parse_verbs(protocol_src: &str) -> Vec<Verb> {
    let tokens = lex(protocol_src).tokens;
    let Some(body) = parse_fn_body(&tokens) else { return Vec::new() };
    let mut verbs = Vec::new();
    for i in body.clone() {
        let TokKind::Str(value) = &tokens[i].kind else { continue };
        let arm = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokKind::Punct('|')) => true,
            Some(TokKind::Punct('=')) => tokens.get(i + 2).is_some_and(|t| t.is_punct('>')),
            _ => false,
        };
        if arm && !verbs.iter().any(|v: &Verb| v.name == *value) {
            verbs.push(Verb { name: value.clone(), line: tokens[i].line });
        }
    }
    verbs
}

/// The token index range of the body of `pub fn parse`.
fn parse_fn_body(tokens: &[Token]) -> Option<std::ops::Range<usize>> {
    for i in 0..tokens.len().saturating_sub(2) {
        if tokens[i].is_ident("pub")
            && tokens[i + 1].is_ident("fn")
            && tokens[i + 2].is_ident("parse")
        {
            let open = (i + 3..tokens.len()).find(|&j| tokens[j].is_punct('{'))?;
            let close = matching_close(tokens, open)?;
            return Some(open + 1..close);
        }
    }
    None
}

/// The token index range of the body of `fn <name>` (any visibility).
fn named_fn_body(tokens: &[Token], name: &str) -> Option<std::ops::Range<usize>> {
    for i in 0..tokens.len().saturating_sub(1) {
        if tokens[i].is_ident("fn") && tokens[i + 1].is_ident(name) {
            let open = (i + 2..tokens.len()).find(|&j| tokens[j].is_punct('{'))?;
            let close = matching_close(tokens, open)?;
            return Some(open + 1..close);
        }
    }
    None
}

/// The query settings parsed by `parse_query_spec`: every string literal in
/// a `json.get("…")` lookup inside its body.
pub fn query_spec_fields(protocol_src: &str) -> Vec<Verb> {
    let tokens = lex(protocol_src).tokens;
    let Some(body) = named_fn_body(&tokens, "parse_query_spec") else { return Vec::new() };
    let mut fields = Vec::new();
    for i in body {
        let TokKind::Str(value) = &tokens[i].kind else { continue };
        let is_get = i >= 2 && tokens[i - 1].is_punct('(') && tokens[i - 2].is_ident("get");
        if is_get && !fields.iter().any(|f: &Verb| f.name == *value) {
            fields.push(Verb { name: value.clone(), line: tokens[i].line });
        }
    }
    fields
}

/// The solve response fields: every string literal in key position (directly
/// after `(`, i.e. the first element of a `("key", value)` pair) inside the
/// bodies of `outcome_json` and `tiered_outcome_json`.
pub fn response_fields(protocol_src: &str) -> Vec<Verb> {
    let tokens = lex(protocol_src).tokens;
    let mut fields: Vec<Verb> = Vec::new();
    for renderer in ["outcome_json", "tiered_outcome_json"] {
        let Some(body) = named_fn_body(&tokens, renderer) else { continue };
        for i in body {
            let TokKind::Str(value) = &tokens[i].kind else { continue };
            if i >= 1 && tokens[i - 1].is_punct('(') && !fields.iter().any(|f| f.name == *value) {
                fields.push(Verb { name: value.clone(), line: tokens[i].line });
            }
        }
    }
    fields
}

/// Extracts the string entries of the `const VERBS` table in server.rs.
pub fn verbs_table(server_src: &str) -> Vec<Verb> {
    let tokens = lex(server_src).tokens;
    for i in 0..tokens.len().saturating_sub(1) {
        if !(tokens[i].is_ident("const") && tokens[i + 1].is_ident("VERBS")) {
            continue;
        }
        let Some(open) = (i + 2..tokens.len()).find(|&j| {
            tokens[j].is_punct('[')
                && tokens.get(j + 1).is_some_and(|t| matches!(t.kind, TokKind::Str(_)))
        }) else {
            continue;
        };
        let Some(close) = matching_close(&tokens, open) else { continue };
        return tokens[open + 1..close]
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(value) => Some(Verb { name: value.clone(), line: t.line }),
                _ => None,
            })
            .collect();
    }
    Vec::new()
}

/// Runs the exhaustiveness check given the three artifacts' contents.
/// `readme`/`server_src` are `None` when the file is missing entirely.
pub fn check(
    protocol_path: &str,
    protocol_src: &str,
    readme: Option<&str>,
    server_path: &str,
    server_src: Option<&str>,
) -> Vec<Finding> {
    let verbs = parse_verbs(protocol_src);
    let mut findings = Vec::new();
    if verbs.is_empty() {
        return findings;
    }
    for verb in &verbs {
        let documented = readme.is_some_and(|text| {
            text.contains(&format!("`{}`", verb.name))
                || text.contains(&format!("\"op\":\"{}\"", verb.name))
                || text.contains(&format!("\"op\": \"{}\"", verb.name))
        });
        if !documented {
            findings.push(Finding::new(
                protocol_path,
                verb.line,
                Rule::WireProtocol,
                format!("verb `{}` has no README protocol section", verb.name),
            ));
        }
    }
    for (fields, kind) in [
        (query_spec_fields(protocol_src), "query setting"),
        (response_fields(protocol_src), "response field"),
    ] {
        for field in fields {
            let documented = readme.is_some_and(|text| text.contains(&format!("`{}`", field.name)));
            if !documented {
                findings.push(Finding::new(
                    protocol_path,
                    field.line,
                    Rule::WireProtocol,
                    format!("{kind} `{}` has no backticked README mention", field.name),
                ));
            }
        }
    }
    let table = server_src.map(verbs_table).unwrap_or_default();
    for verb in &verbs {
        if !table.iter().any(|t| t.name == verb.name) {
            findings.push(Finding::new(
                protocol_path,
                verb.line,
                Rule::WireProtocol,
                format!(
                    "verb `{}` is missing from the server `VERBS` table (requests_by_verb)",
                    verb.name
                ),
            ));
        }
    }
    for entry in &table {
        if !verbs.iter().any(|v| v.name == entry.name) {
            findings.push(Finding::new(
                server_path,
                entry.line,
                Rule::WireProtocol,
                format!("`VERBS` lists `{}` but Request::parse has no arm for it", entry.name),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTOCOL: &str = r#"
        impl Request {
            pub fn parse(line: &str) -> Result<Request, String> {
                match op {
                    "prepare" => Ok(Request::Prepare),
                    "solve" | "solve_batch" => todo(),
                    other => Err(format!("unknown op `{other}`")),
                }
            }
        }
        fn parse_name(json: &Json) -> Result<String, String> {
            match kind { "nested" => here, _ => there }
        }
    "#;

    #[test]
    fn verbs_come_only_from_pub_fn_parse() {
        let verbs: Vec<String> = parse_verbs(PROTOCOL).into_iter().map(|v| v.name).collect();
        assert_eq!(verbs, vec!["prepare", "solve", "solve_batch"]);
    }

    const FIELDS: &str = r#"
        fn parse_query_spec(json: &Json) -> Result<QuerySpec, String> {
            let bag = json.get("bag");
            let deadline_ms = match json.get("deadline_ms") { _ => None };
            let oops = format!("not a field: {}", "loose literal");
            Ok(QuerySpec { bag, deadline_ms })
        }
        pub fn outcome_json(outcome: &O) -> Json {
            let mut pairs = vec![("value", value_json(outcome.value))];
            pairs.push(("bounds", Json::Array(vec![])));
            Json::object(pairs)
        }
        pub fn tiered_outcome_json(tiered: &T) -> Json {
            let mut pairs = vec![];
            pairs.push(("tier".to_string(), Json::Str(tiered.tier.to_string())));
            Json::Object(pairs)
        }
    "#;

    #[test]
    fn query_settings_and_response_fields_are_extracted() {
        let fields: Vec<String> = query_spec_fields(FIELDS).into_iter().map(|f| f.name).collect();
        assert_eq!(fields, vec!["bag", "deadline_ms"]);
        let fields: Vec<String> = response_fields(FIELDS).into_iter().map(|f| f.name).collect();
        assert_eq!(fields, vec!["value", "bounds", "tier"]);
    }

    #[test]
    fn undocumented_fields_fire_and_documented_ones_stay_clean() {
        let src = format!("{PROTOCOL}\n{FIELDS}");
        let server = "const VERBS: [&str; 3] = [\"prepare\", \"solve\", \"solve_batch\"];";
        let clean = "`prepare`, `solve`, `solve_batch`: settings `bag` and `deadline_ms`; \
                     responses carry `value`, `bounds` and `tier`.";
        assert!(check("p.rs", &src, Some(clean), "s.rs", Some(server)).is_empty());
        // Drop `deadline_ms` and `tier` from the docs: one finding each.
        let stale = "`prepare`, `solve`, `solve_batch`: settings `bag`; \
                     responses carry `value` and `bounds`.";
        let findings = check("p.rs", &src, Some(stale), "s.rs", Some(server));
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 2, "{messages:?}");
        assert!(messages.iter().any(|m| m.contains("query setting `deadline_ms`")));
        assert!(messages.iter().any(|m| m.contains("response field `tier`")));
    }

    #[test]
    fn verbs_table_extraction() {
        let src = "const VERBS: [&str; 2] = [\"prepare\", \"solve\"];";
        let names: Vec<String> = verbs_table(src).into_iter().map(|v| v.name).collect();
        assert_eq!(names, vec!["prepare", "solve"]);
    }

    #[test]
    fn missing_readme_and_table_entries_fire() {
        let readme = "Use `prepare` first, then send {\"op\":\"solve\"} lines.";
        let server = "const VERBS: [&str; 2] = [\"prepare\", \"retired_verb\"];";
        let findings = check("p.rs", PROTOCOL, Some(readme), "s.rs", Some(server));
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(findings.len(), 4);
        assert!(messages.iter().any(|m| m.contains("`solve_batch` has no README")));
        assert!(messages.iter().any(|m| m.contains("`solve_batch` is missing")));
        assert!(messages.iter().any(|m| m.contains("`solve` is missing")));
        assert!(messages.iter().any(|m| m.contains("`retired_verb`")));
    }

    #[test]
    fn consistent_artifacts_are_clean() {
        let readme = "`prepare`, `solve`, `solve_batch` are documented here.";
        let server = "const VERBS: [&str; 3] = [\"prepare\", \"solve\", \"solve_batch\"];";
        assert!(check("p.rs", PROTOCOL, Some(readme), "s.rs", Some(server)).is_empty());
    }
}
