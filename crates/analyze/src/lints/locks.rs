//! Lint 2 — lock discipline.
//!
//! Tracks `Mutex` guard scopes per function body (the workspace has no
//! `RwLock`; `.read(`/`.write(` would collide with `io::Read`/`io::Write`),
//! names each lock with a crate-qualified *class* (all cache stripes are one
//! class, all store database handles are one class), and derives:
//!
//! - the cross-crate lock-acquisition graph: an edge `A → B` whenever a
//!   blocking `lock()` of class `B` happens while a guard of class `A` is
//!   live. Cycles in this graph are deadlock candidates and are reported by
//!   the workspace pass ([`cycle_findings`]).
//! - locks held across solve calls or blocking I/O: a live guard at a call
//!   to the solver entry points or blocking socket/channel operations
//!   serializes unrelated requests (or worse, deadlocks on a full pipe).
//!
//! `try_lock` acquisitions cannot block, so they never create graph edges,
//! but a successfully acquired try-guard is still *held* — blocking calls
//! under it are still findings.

use crate::lexer::{matching_close, TokKind, Token};
use crate::lints::receiver_name;
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// Solver entry points and blocking operations that must not run under a
/// lock (per-database serialization being the one deliberate exception,
/// annotated at the site).
const BLOCKING_CALLS: [&str; 24] = [
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "sleep",
    "accept",
    "connect",
    "read_line",
    "read_until",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "solve",
    "solve_with_cut",
    "solve_with_cut_using",
    "solve_batch",
    "solve_traced",
    "solve_incremental",
    "solve_incremental_traced",
    "prepare",
    "get_or_prepare",
];

/// Receivers whose `.lock()` is not a `Mutex` (std stream handles).
const NOT_A_MUTEX: [&str; 3] = ["stdout", "stdin", "stderr"];

/// One acquisition observed while another lock class was held.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The class already held.
    pub from: String,
    /// The class being acquired.
    pub to: String,
    /// File of the acquisition site.
    pub file: String,
    /// Line of the acquisition site.
    pub line: u32,
}

/// Per-file lock scan output: graph edges plus direct findings.
#[derive(Debug, Default)]
pub struct LockScan {
    /// Acquired-while-holding edges, for the workspace cycle check.
    pub edges: Vec<LockEdge>,
    /// Locks held across blocking calls.
    pub findings: Vec<Finding>,
}

#[derive(Debug)]
struct Guard {
    class: String,
    name: Option<String>,
    depth: i32,
    /// Bound to a statement temporary (dropped at the next `;`/`{`/`}`)
    /// rather than a `let` binding.
    temp: bool,
    line: u32,
}

/// Scans one file for guard scopes; `crate_name` qualifies the lock classes.
pub fn scan(path: &str, crate_name: &str, tokens: &[Token], masked: &[bool]) -> LockScan {
    let mut scan = LockScan::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        let tok = &tokens[i];
        match tok.kind {
            TokKind::Punct('{') => {
                let d = depth;
                guards.retain(|g| !(g.temp && g.depth == d));
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                let d = depth;
                guards.retain(|g| g.depth <= d);
            }
            TokKind::Punct(';') => {
                let d = depth;
                guards.retain(|g| !(g.temp && g.depth == d));
            }
            TokKind::Punct('.') => {
                if let Some(acquired) = match_lock_call(tokens, i) {
                    if !masked[i] {
                        record_acquisition(
                            path,
                            crate_name,
                            tokens,
                            i,
                            acquired,
                            depth,
                            &mut guards,
                            &mut scan,
                        );
                    }
                    i += 2; // Past `.lock`; the `(` advances normally.
                    continue;
                }
                // `.callee(` form of a blocking call.
                if let Some(callee) = match_call(tokens, i + 1) {
                    check_blocking(path, tokens, i + 1, callee, masked[i], &guards, &mut scan);
                }
            }
            TokKind::Ident(ref name)
                if name == "drop"
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 3).is_some_and(|t| t.is_punct(')')) =>
            {
                // `drop(guard)` releases a named guard early.
                if let Some(TokKind::Ident(victim)) = tokens.get(i + 2).map(|t| &t.kind) {
                    guards.retain(|g| g.name.as_deref() != Some(victim));
                }
            }
            TokKind::Ident(_) => {
                // Bare `callee(` form (free function or macro-free call);
                // skip `fn callee(` definitions.
                if let Some(callee) = match_call(tokens, i) {
                    let is_def = i > 0 && tokens[i - 1].is_ident("fn");
                    let is_method = i > 0 && tokens[i - 1].is_punct('.');
                    if !is_def && !is_method {
                        check_blocking(path, tokens, i, callee, masked[i], &guards, &mut scan);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    scan
}

/// Is `tokens[dot..]` a `.lock()` / `.try_lock()` call? Returns the method.
fn match_lock_call(tokens: &[Token], dot: usize) -> Option<&str> {
    let method = tokens.get(dot + 1)?.ident_or_empty();
    if method != "lock" && method != "try_lock" {
        return None;
    }
    tokens.get(dot + 2)?.is_punct('(').then_some(method)
}

/// Is `tokens[at]` an identifier directly followed by `(`? Returns its name.
fn match_call(tokens: &[Token], at: usize) -> Option<&str> {
    match &tokens.get(at)?.kind {
        TokKind::Ident(name) if tokens.get(at + 1).is_some_and(|t| t.is_punct('(')) => Some(name),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    path: &str,
    crate_name: &str,
    tokens: &[Token],
    dot: usize,
    method: &str,
    depth: i32,
    guards: &mut Vec<Guard>,
    scan: &mut LockScan,
) {
    let Some(receiver) = receiver_name(tokens, dot) else { return };
    if NOT_A_MUTEX.contains(&receiver.as_str()) {
        return;
    }
    let class = lock_class(crate_name, &receiver);
    let line = tokens[dot + 1].line;
    if method == "lock" {
        // A blocking acquisition while holding anything is a graph edge
        // (same-class re-entry shows up as a self-loop = self-deadlock).
        for held in guards.iter() {
            scan.edges.push(LockEdge {
                from: held.class.clone(),
                to: class.clone(),
                file: path.to_string(),
                line,
            });
        }
    }
    // A `let` only binds the *guard* when the statement's chain ends at the
    // lock call (modulo `.unwrap()` / `.expect(...)` / `?` wrappers). In
    // `let req = ready.lock().unwrap().recv();` the binding is the received
    // value and the guard is a statement temporary.
    let name = guard_reaches_binding(tokens, dot).then(|| binding_name(tokens, dot)).flatten();
    guards.push(Guard { class, temp: name.is_none(), name, depth, line });
}

/// Whether the value bound by the enclosing statement is (a wrapper around)
/// the guard produced by the lock call whose `.` is at `dot`.
fn guard_reaches_binding(tokens: &[Token], dot: usize) -> bool {
    let Some(mut j) = matching_close(tokens, dot + 2).map(|c| c + 1) else { return false };
    const WRAPPERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "map_err"];
    loop {
        match tokens.get(j).map(|t| &t.kind) {
            Some(TokKind::Punct(';' | '}')) | None => return true,
            // `let Ok(g) = x.try_lock() else { … };`
            Some(TokKind::Ident(id)) if id == "else" => return true,
            Some(TokKind::Punct('?')) => j += 1,
            Some(TokKind::Punct('.')) => {
                let wrapped =
                    tokens.get(j + 1).is_some_and(|t| WRAPPERS.contains(&t.ident_or_empty()))
                        && tokens.get(j + 2).is_some_and(|t| t.is_punct('('));
                if !wrapped {
                    return false;
                }
                match matching_close(tokens, j + 2) {
                    Some(close) => j = close + 1,
                    None => return false,
                }
            }
            _ => return false,
        }
    }
}

/// The `let` binding a lock chain is assigned to, if any: handles
/// `let [mut] g = …`, `let Ok([mut] g) = …`, and plain `g = …` re-binds.
fn binding_name(tokens: &[Token], dot: usize) -> Option<String> {
    let start = crate::lints::chain_start(tokens, dot.checked_sub(1)?);
    let eq = start.checked_sub(1)?;
    if !tokens[eq].is_punct('=') {
        return None;
    }
    // Equality `==` is not a binding.
    if eq >= 1 && tokens[eq - 1].is_punct('=') {
        return None;
    }
    let mut name = None;
    for j in (eq.saturating_sub(8)..eq).rev() {
        match &tokens[j].kind {
            TokKind::Ident(id) if id == "let" => {
                return name;
            }
            TokKind::Ident(id)
                if name.is_none()
                    && !matches!(id.as_str(), "mut" | "ref" | "Ok" | "Some" | "Err") =>
            {
                name = Some(id.clone());
            }
            TokKind::Punct('(' | ')') | TokKind::Ident(_) => {}
            // Statement boundary without `let`: a plain re-assignment.
            _ => return name,
        }
    }
    name
}

fn check_blocking(
    path: &str,
    tokens: &[Token],
    at: usize,
    callee: &str,
    masked: bool,
    guards: &[Guard],
    scan: &mut LockScan,
) {
    if masked || guards.is_empty() || !BLOCKING_CALLS.contains(&callee) {
        return;
    }
    let held: Vec<String> =
        guards.iter().map(|g| format!("`{}` (line {})", g.class, g.line)).collect();
    scan.findings.push(Finding::new(
        path,
        tokens[at].line,
        Rule::LockDiscipline,
        format!("call to `{callee}` while holding {}", held.join(", ")),
    ));
}

/// Crate-qualified lock class for a receiver name. Aliases collapse the
/// different spellings of one lock (accessor, field, loop variable) so the
/// graph talks about locks, not variables.
fn lock_class(crate_name: &str, receiver: &str) -> String {
    let class = match (crate_name, receiver) {
        (_, "databases") => "store.registry",
        (_, "handle") => "store.database",
        ("server", "stripe" | "stripes" | "s") => "server.cache_stripe",
        ("obs", "shards" | "shard" | "stripe") => "obs.metrics_shard",
        (_, "addr") => "server.addr",
        (_, "ready") => "server.ready_queue",
        ("core", "0") => "core.scratch_pool",
        _ => return format!("{crate_name}.{receiver}"),
    };
    class.to_string()
}

/// Workspace pass: find cycles in the union of every file's edges. Each
/// distinct cycle is reported once, at the site of its first edge.
pub fn cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adjacency: BTreeMap<&str, BTreeMap<&str, &LockEdge>> = BTreeMap::new();
    for edge in edges {
        adjacency.entry(&edge.from).or_default().entry(&edge.to).or_insert(edge);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &origin in adjacency.keys().collect::<Vec<_>>() {
        let mut stack = vec![origin];
        let mut on_stack: BTreeSet<&str> = [origin].into();
        dfs(&adjacency, &mut stack, &mut on_stack, &mut reported, &mut findings);
    }
    findings
}

fn dfs<'e>(
    adjacency: &BTreeMap<&'e str, BTreeMap<&'e str, &'e LockEdge>>,
    stack: &mut Vec<&'e str>,
    on_stack: &mut BTreeSet<&'e str>,
    reported: &mut BTreeSet<Vec<&'e str>>,
    findings: &mut Vec<Finding>,
) {
    let current = *stack.last().expect("dfs stack is never empty");
    let Some(next_hops) = adjacency.get(current) else { return };
    for (&next, &edge) in next_hops {
        if on_stack.contains(next) {
            // Found a cycle: the suffix of the stack from `next` onward.
            let from = stack.iter().position(|&n| n == next).unwrap_or(0);
            let mut cycle: Vec<&str> = stack[from..].to_vec();
            let mut key = cycle.clone();
            key.sort_unstable();
            if reported.insert(key) {
                cycle.push(next);
                findings.push(Finding::new(
                    &edge.file,
                    edge.line,
                    Rule::LockDiscipline,
                    format!("lock-order cycle: {}", cycle.join(" -> ")),
                ));
            }
            continue;
        }
        stack.push(next);
        on_stack.insert(next);
        dfs(adjacency, stack, on_stack, reported, findings);
        stack.pop();
        on_stack.remove(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(crate_name: &str, src: &str) -> LockScan {
        let lexed = lex(src);
        let masked = vec![false; lexed.tokens.len()];
        scan("f.rs", crate_name, &lexed.tokens, &masked)
    }

    #[test]
    fn nested_acquisition_yields_edge() {
        let src = "fn f(&self) {\n  let registry = self.databases.lock().unwrap();\n  \
                   let db = handle.lock().unwrap();\n}";
        let scan = run("store", src);
        assert_eq!(scan.edges.len(), 1);
        assert_eq!(scan.edges[0].from, "store.registry");
        assert_eq!(scan.edges[0].to, "store.database");
    }

    #[test]
    fn scoped_guard_drops_before_second_lock() {
        let src = "fn f(&self) {\n  let h = { let r = self.databases.lock().unwrap(); \
                   r.get() };\n  let db = handle.lock().unwrap();\n}";
        assert!(run("store", src).edges.is_empty());
    }

    #[test]
    fn explicit_drop_releases_guard() {
        let src = "fn f(&self) { let r = self.databases.lock().unwrap(); drop(r); \
                   let db = handle.lock().unwrap(); }";
        assert!(run("store", src).edges.is_empty());
    }

    #[test]
    fn try_lock_makes_no_edge_but_holds() {
        let src = "fn f(&self) { let r = self.databases.lock().unwrap(); \
                   let Ok(db) = handle.try_lock() else { return }; db.solve(q); }";
        let scan = run("store", src);
        assert!(scan.edges.is_empty(), "try_lock cannot deadlock");
        assert_eq!(scan.findings.len(), 1, "but solving under it is held-across");
    }

    #[test]
    fn blocking_call_under_guard_fires() {
        let src = "fn f(&self) { let db = handle.lock().unwrap(); \
                   prepared.solve_incremental_traced(a, b); }";
        let scan = run("store", src);
        assert_eq!(scan.findings.len(), 1);
        assert!(scan.findings[0].message.contains("store.database"));
    }

    #[test]
    fn temp_guard_chained_recv_fires_then_dies() {
        let src = "fn f() { let req = ready.lock().unwrap().recv(); other.recv(); }";
        let scan = run("server", src);
        assert_eq!(scan.findings.len(), 1, "recv on the guard fires; after `;` it is gone");
        assert_eq!(scan.findings[0].line, 1);
    }

    #[test]
    fn std_stream_locks_are_not_mutexes() {
        let src = "fn f() { let out = std::io::stdout().lock(); out.flush(); }";
        let scan = run("cli", src);
        assert!(scan.edges.is_empty());
        assert!(scan.findings.is_empty());
    }

    #[test]
    fn fn_definitions_are_not_calls() {
        let src = "impl S { fn solve(&self) { let g = self.databases.lock().unwrap(); } }";
        assert!(run("store", src).findings.is_empty());
    }

    #[test]
    fn cycle_detection_reports_once() {
        let mk = |from: &str, to: &str, line| LockEdge {
            from: from.into(),
            to: to.into(),
            file: "f.rs".into(),
            line,
        };
        let cyclic = [mk("a", "b", 1), mk("b", "a", 2), mk("b", "c", 3)];
        let findings = cycle_findings(&cyclic);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("lock-order cycle"));
        let acyclic = [mk("a", "b", 1), mk("b", "c", 2), mk("a", "c", 3)];
        assert!(cycle_findings(&acyclic).is_empty());
    }

    #[test]
    fn self_deadlock_is_a_cycle() {
        let src = "fn f(&self) { let a = self.databases.lock().unwrap(); \
                   let b = self.databases.lock().unwrap(); }";
        let scan = run("store", src);
        assert_eq!(scan.edges.len(), 1);
        let findings = cycle_findings(&scan.edges);
        assert_eq!(findings.len(), 1);
    }
}
