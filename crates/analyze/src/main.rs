#![forbid(unsafe_code)]
//! CLI for the workspace lints: `cargo run -p rpq-analyze [root]`.
//!
//! Exit codes: `0` clean (suppressed findings allowed), `1` findings,
//! `2` usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match rpq_analyze::root_from_args(&args) {
        Ok(root) => root,
        Err(usage) => {
            eprintln!("{usage}");
            return ExitCode::from(2);
        }
    };
    match rpq_analyze::analyze_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            println!(
                "rpq-analyze: {} files, {} findings ({} suppressed by `lint: allow`)",
                report.files,
                report.findings.len(),
                report.suppressed
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(err) => {
            eprintln!("rpq-analyze: cannot analyze {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
