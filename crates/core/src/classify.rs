//! The Figure 1 classification engine.
//!
//! Given a regular language `L`, [`classify`] decides — when the paper's
//! results allow it — whether the resilience problem `RES(L)` is in PTIME or
//! NP-hard, and returns a machine-checkable certificate:
//!
//! * **PTIME** when `IF(L)` is local (Theorem 3.13), a bipartite chain
//!   language (Proposition 7.6), or one-dangling (Proposition 7.9);
//! * **NP-hard** when `IF(L)` is four-legged (Theorem 5.3, which also covers
//!   every non-star-free infix-free language by Lemma 5.6), when `IF(L)` is
//!   finite with a repeated letter (Theorem 6.1), or when it is one of the
//!   specific languages settled by an explicit gadget (Propositions 4.1, 4.13,
//!   7.4, 7.11);
//! * **Unclassified** otherwise — the classification of the paper is not a
//!   full dichotomy (Section 7 lists the remaining open cases).
//!
//! The classifier also reports the neutral-letter dichotomy (Proposition 5.7)
//! when a neutral letter is present.

use rpq_automata::finite::FiniteLanguage;
use rpq_automata::four_legged::four_legged_witness;
use rpq_automata::local::{is_local, CartesianViolation};
use rpq_automata::word::Word;
use rpq_automata::{finite, neutral, Language};

/// Why a language is tractable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TractabilityReason {
    /// `IF(L)` contains ε: the resilience is always `+∞` (trivially computable).
    EpsilonInLanguage,
    /// `IF(L)` is a local language (Theorem 3.13).
    Local,
    /// `IF(L)` is a bipartite chain language (Proposition 7.6).
    BipartiteChain,
    /// `IF(L)` is a one-dangling language (Proposition 7.9).
    OneDangling {
        /// The dangling two-letter word `xy`.
        dangling_word: Word,
    },
}

/// Why a language is NP-hard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HardnessReason {
    /// `IF(L)` is four-legged (Theorem 5.3); the witness is a letter-Cartesian
    /// violation with non-empty legs.
    FourLegged(CartesianViolation),
    /// `IF(L)` contains a word with a repeated letter and is finite
    /// (Theorem 6.1), or contains a square word `xx` (in which case the
    /// vertex-cover reduction of Proposition 4.1 applies directly, finite or
    /// not — this is the argument used for Proposition 5.7).
    RepeatedLetter {
        /// A word of `IF(L)` with a repeated letter.
        witness_word: Word,
    },
    /// `IF(L)` is one of the specific languages proved hard by an explicit
    /// gadget in the paper (Propositions 7.4 and 7.11).
    KnownGadget {
        /// Which proposition settles it.
        proposition: &'static str,
    },
}

/// The outcome of classifying a language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// Resilience (in both set and bag semantics) is in PTIME.
    Tractable(TractabilityReason),
    /// Resilience (already in set semantics) is NP-hard.
    NpHard(HardnessReason),
    /// The paper's results do not settle this language.
    Unclassified,
}

impl Classification {
    /// Whether the classification is a PTIME verdict.
    pub fn is_tractable(&self) -> bool {
        matches!(self, Classification::Tractable(_))
    }

    /// Whether the classification is an NP-hardness verdict.
    pub fn is_np_hard(&self) -> bool {
        matches!(self, Classification::NpHard(_))
    }

    /// Whether the language remains unclassified.
    pub fn is_unclassified(&self) -> bool {
        matches!(self, Classification::Unclassified)
    }

    /// A short human-readable label, matching the regions of Figure 1.
    pub fn label(&self) -> String {
        match self {
            Classification::Tractable(TractabilityReason::EpsilonInLanguage) => {
                "PTIME (ε ∈ L, resilience is +∞)".to_string()
            }
            Classification::Tractable(TractabilityReason::Local) => {
                "PTIME (local, Thm 3.13)".to_string()
            }
            Classification::Tractable(TractabilityReason::BipartiteChain) => {
                "PTIME (bipartite chain, Prp 7.6)".to_string()
            }
            Classification::Tractable(TractabilityReason::OneDangling { .. }) => {
                "PTIME (one-dangling, Prp 7.9)".to_string()
            }
            Classification::NpHard(HardnessReason::FourLegged(_)) => {
                "NP-hard (four-legged, Thm 5.3)".to_string()
            }
            Classification::NpHard(HardnessReason::RepeatedLetter { .. }) => {
                "NP-hard (repeated letter, Thm 6.1 / Prp 4.1)".to_string()
            }
            Classification::NpHard(HardnessReason::KnownGadget { proposition }) => {
                format!("NP-hard (explicit gadget, {proposition})")
            }
            Classification::Unclassified => "Unclassified".to_string(),
        }
    }
}

/// Classifies the resilience problem of a regular language, following
/// Figure 1 of the paper. The classification always works on the infix-free
/// sublanguage `IF(L)`, since `Q_L = Q_{IF(L)}`.
pub fn classify(language: &Language) -> Classification {
    let if_language = language.infix_free();

    if if_language.contains_epsilon() {
        return Classification::Tractable(TractabilityReason::EpsilonInLanguage);
    }

    // Tractable cases.
    if is_local(&if_language) {
        return Classification::Tractable(TractabilityReason::Local);
    }
    if let Ok(finite_words) = FiniteLanguage::from_language(&if_language) {
        if finite_words.is_bipartite_chain_language() {
            return Classification::Tractable(TractabilityReason::BipartiteChain);
        }
    }
    if let Some(decomposition) = finite::one_dangling_decomposition(&if_language) {
        return Classification::Tractable(TractabilityReason::OneDangling {
            dangling_word: decomposition.dangling_word(),
        });
    }

    // Hard cases. Repeated-letter verdicts are reported first so that the
    // reasons match the regions of Figure 1 (some languages, e.g. aaaa, are
    // both four-legged and covered by Theorem 6.1).
    if let Ok(finite_words) = FiniteLanguage::from_language(&if_language) {
        if let Some(word) = finite_words.word_with_repeated_letter() {
            return Classification::NpHard(HardnessReason::RepeatedLetter {
                witness_word: word.clone(),
            });
        }
    }
    // Square words xx make the Proposition 4.1 reduction apply directly, even
    // for infinite languages (this is the hard branch of Proposition 5.7).
    if let Some(square) = if_language
        .alphabet()
        .iter()
        .map(|x| Word::from_letters([x, x]))
        .find(|w| if_language.contains(w))
    {
        return Classification::NpHard(HardnessReason::RepeatedLetter { witness_word: square });
    }
    if let Some(witness) = four_legged_witness(&if_language) {
        return Classification::NpHard(HardnessReason::FourLegged(witness));
    }
    if let Ok(finite_words) = FiniteLanguage::from_language(&if_language) {
        let _ = &finite_words;
        // Specific languages settled by explicit gadgets (up to renaming we
        // only check literal equality, which covers the Figure 1 entries).
        for (proposition, words) in [
            ("Prp 7.4", vec!["ab", "bc", "ca"]),
            ("Prp 7.11", vec!["abcd", "be", "ef"]),
            ("Prp 7.11", vec!["abcd", "bef"]),
        ] {
            let reference = Language::from_strs(words.iter().copied());
            if if_language.equals(&reference.with_alphabet(if_language.alphabet())) {
                return Classification::NpHard(HardnessReason::KnownGadget { proposition });
            }
        }
    }

    Classification::Unclassified
}

/// The Proposition 5.7 dichotomy: for a language with a neutral letter, the
/// classification is never `Unclassified`. Returns `None` when the language
/// has no neutral letter (the dichotomy then does not apply).
pub fn classify_with_neutral_letter(language: &Language) -> Option<Classification> {
    let neutral_letters = neutral::neutral_letters(language);
    if neutral_letters.is_empty() {
        return None;
    }
    let if_language = language.infix_free();
    if if_language.contains_epsilon() {
        return Some(Classification::Tractable(TractabilityReason::EpsilonInLanguage));
    }
    if is_local(&if_language) {
        Some(Classification::Tractable(TractabilityReason::Local))
    } else {
        // Lemma 5.8: either IF(L) is four-legged, or it contains xx for some x.
        if let Some(witness) = four_legged_witness(&if_language) {
            Some(Classification::NpHard(HardnessReason::FourLegged(witness)))
        } else {
            let xx = if_language
                .alphabet()
                .iter()
                .map(|x| Word::from_letters([x, x]))
                .find(|w| if_language.contains(w))
                // lint: allow(panic-freedom, Lemma 5.8 proves the witness word exists in this branch)
                .expect("Lemma 5.8: a non-local, non-four-legged IF(L) with a neutral letter contains xx");
            Some(Classification::NpHard(HardnessReason::RepeatedLetter { witness_word: xx }))
        }
    }
}

/// A row of the Figure 1 reproduction: a language together with its expected
/// and computed classification labels.
#[derive(Debug, Clone)]
pub struct Figure1Row {
    /// The regular expression, as written in Figure 1.
    pub pattern: &'static str,
    /// The region of Figure 1 the language belongs to.
    pub expected: &'static str,
    /// The classification computed by [`classify`].
    pub computed: Classification,
}

/// Re-derives the classification of every example language of Figure 1.
pub fn figure1_rows() -> Vec<Figure1Row> {
    // (pattern, expected region) — following Figure 1 of the paper.
    let entries: Vec<(&'static str, &'static str)> = vec![
        // PTIME, local.
        ("abc|abd", "PTIME: local"),
        ("ab|ad|cd", "PTIME: local"),
        ("ax*b", "PTIME: local"),
        // PTIME, bipartite chain languages.
        ("ab|bc", "PTIME: bipartite chain"),
        ("axb|byc", "PTIME: bipartite chain"),
        // PTIME, one-dangling languages.
        ("abc|be", "PTIME: one-dangling"),
        ("abcd|ce", "PTIME: one-dangling"),
        ("abcd|be", "PTIME: one-dangling"),
        ("ax*b|xd", "PTIME: one-dangling"),
        // NP-hard, four-legged.
        ("axb|cxd", "NP-hard: four-legged"),
        ("ax*b|cxd", "NP-hard: four-legged"),
        ("b(aa)*d", "NP-hard: four-legged (non-star-free)"),
        // NP-hard, finite with repeated letter.
        ("aa", "NP-hard: repeated letter"),
        ("aaaa", "NP-hard: repeated letter"),
        ("abca|cab", "NP-hard: repeated letter"),
        // NP-hard, explicit gadgets.
        ("ab|bc|ca", "NP-hard: explicit gadget (Prp 7.4)"),
        ("abcd|be|ef", "NP-hard: explicit gadget (Prp 7.11)"),
        ("abcd|bef", "NP-hard: explicit gadget (Prp 7.11)"),
        // Unclassified examples.
        ("abc|bcd", "Unclassified"),
        ("abc|bef", "Unclassified"),
        ("ab*c|ba", "Unclassified"),
        ("ab*d|ac*d|bc", "Unclassified"),
    ];
    entries
        .into_iter()
        .map(|(pattern, expected)| Figure1Row {
            pattern,
            expected,
            // lint: allow(panic-freedom, the Figure 1 pattern table is static and covered by tests)
            computed: classify(&Language::parse(pattern).expect("Figure 1 patterns parse")),
        })
        .collect()
}

/// Verifies a tractability certificate: re-checks the language-theoretic
/// property underlying the verdict (used by tests and by the Figure 1 bench).
pub fn verify_classification(language: &Language, classification: &Classification) -> bool {
    let if_language = language.infix_free();
    match classification {
        Classification::Tractable(TractabilityReason::EpsilonInLanguage) => {
            if_language.contains_epsilon()
        }
        Classification::Tractable(TractabilityReason::Local) => is_local(&if_language),
        Classification::Tractable(TractabilityReason::BipartiteChain) => {
            FiniteLanguage::from_language(&if_language)
                .map(|f| f.is_bipartite_chain_language())
                .unwrap_or(false)
        }
        Classification::Tractable(TractabilityReason::OneDangling { dangling_word }) => {
            finite::one_dangling_decomposition(&if_language)
                .map(|d| d.dangling_word().len() == 2 && if_language.contains(dangling_word))
                .unwrap_or(false)
        }
        Classification::NpHard(HardnessReason::FourLegged(witness)) => {
            if_language.is_infix_free()
                && witness.verify(&if_language)
                && witness.has_nonempty_legs()
        }
        Classification::NpHard(HardnessReason::RepeatedLetter { witness_word }) => {
            if_language.contains(witness_word) && witness_word.has_repeated_letter()
        }
        Classification::NpHard(HardnessReason::KnownGadget { .. }) => true,
        Classification::Unclassified => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn figure_1_rows_match_expectations() {
        for row in figure1_rows() {
            let computed = &row.computed;
            let ok = match row.expected {
                e if e.starts_with("PTIME: local") => {
                    matches!(computed, Classification::Tractable(TractabilityReason::Local))
                }
                e if e.starts_with("PTIME: bipartite chain") => matches!(
                    computed,
                    Classification::Tractable(TractabilityReason::BipartiteChain)
                ),
                e if e.starts_with("PTIME: one-dangling") => matches!(
                    computed,
                    Classification::Tractable(TractabilityReason::OneDangling { .. })
                ),
                e if e.starts_with("NP-hard: four-legged") => {
                    matches!(computed, Classification::NpHard(HardnessReason::FourLegged(_)))
                }
                e if e.starts_with("NP-hard: repeated letter") => matches!(
                    computed,
                    Classification::NpHard(HardnessReason::RepeatedLetter { .. })
                ),
                e if e.starts_with("NP-hard: explicit gadget") => {
                    matches!(computed, Classification::NpHard(HardnessReason::KnownGadget { .. }))
                }
                "Unclassified" => computed.is_unclassified(),
                other => panic!("unknown expectation {other}"),
            };
            assert!(
                ok,
                "language {} expected {} but computed {}",
                row.pattern,
                row.expected,
                computed.label()
            );
        }
    }

    #[test]
    fn certificates_verify() {
        for row in figure1_rows() {
            let l = lang(row.pattern);
            assert!(
                verify_classification(&l, &row.computed),
                "certificate for {} must verify",
                row.pattern
            );
        }
    }

    #[test]
    fn neutral_letter_dichotomy() {
        // L1 = e*be*ce*|e*de*fe* has e neutral and IF(L1) four-legged → NP-hard.
        let l1 = lang("e*be*ce*|e*de*fe*");
        let c1 = classify_with_neutral_letter(&l1).unwrap();
        assert!(c1.is_np_hard());
        // L2 = e*(a|c)e*(a|d)e* has e neutral and aa ∈ IF(L2) → NP-hard.
        let l2 = lang("e*(a|c)e*(a|d)e*");
        let c2 = classify_with_neutral_letter(&l2).unwrap();
        assert!(c2.is_np_hard());
        // e*ae* has e neutral and IF = {a} local → PTIME.
        let l3 = lang("e*ae*");
        let c3 = classify_with_neutral_letter(&l3).unwrap();
        assert!(c3.is_tractable());
        // A language without a neutral letter is not covered.
        assert!(classify_with_neutral_letter(&lang("ab|bc")).is_none());
        // The general classifier agrees with the dichotomy on these languages.
        assert!(classify(&l1).is_np_hard());
        assert!(classify(&l2).is_np_hard());
        assert!(classify(&l3).is_tractable());
    }

    #[test]
    fn infix_free_reduction_changes_the_verdict() {
        // L = a|aa is not local, but IF(L) = a is: the classifier must say PTIME.
        assert!(classify(&lang("a|aa")).is_tractable());
        // L = abbc|bb has IF(L) = bb: NP-hard by repeated letter.
        assert!(classify(&lang("abbc|bb")).is_np_hard());
    }

    #[test]
    fn epsilon_language() {
        assert_eq!(
            classify(&lang("a*")),
            Classification::Tractable(TractabilityReason::EpsilonInLanguage)
        );
        assert!(classify(&lang("a*")).label().contains("+∞"));
    }

    #[test]
    fn labels_are_informative() {
        assert!(classify(&lang("ax*b")).label().contains("local"));
        assert!(classify(&lang("aa")).label().contains("repeated letter"));
        assert!(classify(&lang("axb|cxd")).label().contains("four-legged"));
        assert!(classify(&lang("ab|bc|ca")).label().contains("gadget"));
        assert!(classify(&lang("abc|bcd")).label().contains("Unclassified"));
    }

    #[test]
    fn mirror_invariance_of_classification_kind() {
        for pattern in ["ax*b", "aa", "axb|cxd", "ab|bc", "abc|be", "abc|bcd"] {
            let l = lang(pattern);
            let c = classify(&l);
            let cm = classify(&l.mirror());
            assert_eq!(c.is_tractable(), cm.is_tractable(), "{pattern}");
            assert_eq!(c.is_np_hard(), cm.is_np_hard(), "{pattern}");
        }
    }
}
