//! Exact (exponential-time) resilience solvers, used as ground truth.
//!
//! Resilience is NP-hard for many languages (Sections 4–6 of the paper), so a
//! general-purpose solver cannot be polynomial. This module implements a
//! branch-and-bound over **witness walks**: as long as the query still holds,
//! pick one `L`-walk and branch over which of its facts to remove. This is
//! correct for every regular language (not only finite ones), terminates
//! because every branch removes a fact, and is fast enough for the small
//! instances used by the hardness-reduction tests and the exact-vs-polynomial
//! cross-check benchmark.

use crate::rpq::{ResilienceValue, Rpq};
use rpq_graphdb::{find_witness_walk, FactId, GraphDb};
use std::collections::BTreeSet;

/// The result of an exact resilience computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactResilience {
    /// The resilience value.
    pub value: ResilienceValue,
    /// An optimal contingency set (empty when the query does not hold or when
    /// the value is infinite).
    pub contingency_set: BTreeSet<FactId>,
    /// Number of branch-and-bound nodes explored (for reporting).
    pub explored_nodes: u64,
}

/// Computes the exact resilience of a query on a database by branch and bound
/// over witness walks.
///
/// ```
/// use rpq_resilience::exact::resilience_exact;
/// use rpq_resilience::rpq::{ResilienceValue, Rpq};
/// use rpq_graphdb::GraphDb;
///
/// let mut db = GraphDb::new();
/// db.add_fact_by_names("u", 'a', "v");
/// db.add_fact_by_names("v", 'a', "w");
/// db.add_fact_by_names("w", 'a', "x");
/// let result = resilience_exact(&Rpq::parse("aa").unwrap(), &db);
/// assert_eq!(result.value, ResilienceValue::Finite(1)); // remove the middle fact
/// ```
pub fn resilience_exact(rpq: &Rpq, db: &GraphDb) -> ExactResilience {
    let language = rpq.language();
    if language.contains_epsilon() {
        // Every sub-database (including the empty one) satisfies the query.
        return ExactResilience {
            value: ResilienceValue::Infinite,
            contingency_set: BTreeSet::new(),
            explored_nodes: 0,
        };
    }
    if !rpq.holds_on(db) {
        return ExactResilience {
            value: ResilienceValue::Finite(0),
            contingency_set: BTreeSet::new(),
            explored_nodes: 1,
        };
    }

    // Upper bound: remove every endogenous fact. When ε ∉ L and no fact is
    // exogenous this is always a contingency set; with exogenous facts it may
    // fail, in which case no contingency set exists at all and the resilience
    // is +∞ (exogenous facts can never be removed).
    let all_facts: BTreeSet<FactId> = db.endogenous_facts().collect();
    if !rpq.is_contingency_set(db, &all_facts) {
        return ExactResilience {
            value: ResilienceValue::Infinite,
            contingency_set: BTreeSet::new(),
            explored_nodes: 1,
        };
    }
    let mut best_cost: u128 = rpq.cost(db, &all_facts);
    let mut best_set = all_facts;
    let mut explored: u64 = 0;

    let mut removed = BTreeSet::new();
    branch(rpq, db, &mut removed, 0, &mut best_cost, &mut best_set, &mut explored);

    ExactResilience {
        value: ResilienceValue::Finite(best_cost),
        contingency_set: best_set,
        explored_nodes: explored,
    }
}

fn branch(
    rpq: &Rpq,
    db: &GraphDb,
    removed: &mut BTreeSet<FactId>,
    cost: u128,
    best_cost: &mut u128,
    best_set: &mut BTreeSet<FactId>,
    explored: &mut u64,
) {
    *explored += 1;
    if cost >= *best_cost {
        return;
    }
    let Some(walk) = find_witness_walk(db, rpq.language(), removed) else {
        // No L-walk remains: `removed` is a contingency set.
        *best_cost = cost;
        *best_set = removed.clone();
        return;
    };
    // Branch on which fact of the witness walk to remove. Every contingency
    // set must hit this walk, so the branching is exhaustive. Exogenous facts
    // cannot be removed; if the walk only uses exogenous facts, this subtree
    // contains no contingency set at all.
    let distinct: BTreeSet<FactId> = walk.into_iter().filter(|&f| !db.is_exogenous(f)).collect();
    for fact in distinct {
        let fact_cost = rpq.semantics().fact_cost(db, fact) as u128;
        removed.insert(fact);
        branch(rpq, db, removed, cost + fact_cost, best_cost, best_set, explored);
        removed.remove(&fact);
    }
}

/// Computes the exact resilience by enumerating all subsets of facts
/// (reference implementation, `O(2^|D|)`): only usable on very small
/// databases, but free of any clever pruning and therefore a good oracle for
/// property-based tests.
pub fn resilience_by_enumeration(rpq: &Rpq, db: &GraphDb) -> ResilienceValue {
    resilience_by_enumeration_limited(rpq, db, DEFAULT_ENUMERATION_LIMIT)
        // lint: allow(panic-freedom, test oracle documented to require at most 24 facts)
        .expect("subset enumeration is limited to 24 facts")
}

/// The default fact limit of the subset-enumeration oracle (see
/// [`resilience_by_enumeration_limited`]); also the default of
/// `SolveOptions::enumeration_limit`.
pub const DEFAULT_ENUMERATION_LIMIT: usize = 24;

/// The largest honorable `limit` for [`resilience_by_enumeration_limited`]:
/// the subset mask is a `u128`, so more than 127 facts cannot be enumerated
/// regardless of the configured limit. Callers clamp to this before building
/// error messages so reported limits stay truthful.
pub const MAX_ENUMERATION_LIMIT: usize = 127;

/// Like [`resilience_by_enumeration`], but returns `None` instead of panicking
/// when the database has more than `limit` endogenous facts (`2^limit` subsets
/// would be enumerated; limits above [`MAX_ENUMERATION_LIMIT`] are clamped).
/// The engine surfaces this as the typed `ResilienceError::InstanceTooLarge`
/// error.
pub fn resilience_by_enumeration_limited(
    rpq: &Rpq,
    db: &GraphDb,
    limit: usize,
) -> Option<ResilienceValue> {
    let language = rpq.language();
    if language.contains_epsilon() {
        return Some(ResilienceValue::Infinite);
    }
    let facts: Vec<FactId> = db.endogenous_facts().collect();
    if facts.len() > limit.min(MAX_ENUMERATION_LIMIT) {
        return None;
    }
    let mut best: Option<u128> = None;
    for mask in 0u128..(1u128 << facts.len()) {
        let subset: BTreeSet<FactId> = facts
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &f)| f)
            .collect();
        if rpq.is_contingency_set(db, &subset) {
            let cost = rpq.cost(db, &subset);
            best = Some(best.map_or(cost, |b: u128| b.min(cost)));
        }
    }
    // With exogenous facts the query may hold on every removable subset, in
    // which case the resilience is +∞.
    Some(best.map_or(ResilienceValue::Infinite, ResilienceValue::Finite))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Word;
    use rpq_graphdb::generate::word_path;

    #[test]
    fn epsilon_language_has_infinite_resilience() {
        let db = word_path(&Word::from_str_word("ab"));
        let q = Rpq::parse("a*").unwrap();
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Infinite);
        assert_eq!(resilience_by_enumeration(&q, &db), ResilienceValue::Infinite);
    }

    #[test]
    fn query_not_holding_has_zero_resilience() {
        let db = word_path(&Word::from_str_word("ab"));
        let q = Rpq::parse("ba").unwrap();
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Finite(0));
        assert!(resilience_exact(&q, &db).contingency_set.is_empty());
    }

    #[test]
    fn single_path_instances() {
        // On the path a x x b, the query a x* b has resilience 1.
        let db = word_path(&Word::from_str_word("axxb"));
        let q = Rpq::parse("ax*b").unwrap();
        let result = resilience_exact(&q, &db);
        assert_eq!(result.value, ResilienceValue::Finite(1));
        assert_eq!(result.contingency_set.len(), 1);
        assert!(q.is_contingency_set(&db, &result.contingency_set));
    }

    #[test]
    fn triangle_of_aa_matches() {
        // Path of 4 a-facts: a a a a. Matches of aa: (1,2),(2,3),(3,4): a
        // vertex cover of the path graph needs 2 facts? The match graph is a
        // path with 4 vertices and 3 edges: minimum vertex cover has size 2...
        // wait, facts are vertices: f1-f2, f2-f3, f3-f4: picking f2 and f3
        // covers all three edges, and 1 fact cannot. So resilience 2.
        let db = word_path(&Word::from_str_word("aaaa"));
        let q = Rpq::parse("aa").unwrap();
        let result = resilience_exact(&q, &db);
        assert_eq!(result.value, ResilienceValue::Finite(2));
        assert_eq!(resilience_by_enumeration(&q, &db), ResilienceValue::Finite(2));
    }

    #[test]
    fn bag_semantics_uses_multiplicities() {
        let mut db = rpq_graphdb::GraphDb::new();
        let f1 = db.add_fact_by_names("s", 'a', "u");
        let _f2 = db.add_fact_by_names("u", 'x', "v");
        let f3 = db.add_fact_by_names("v", 'b', "t");
        db.set_multiplicity(f1, 10);
        db.set_multiplicity(f3, 7);
        let q = Rpq::parse("axb").unwrap().with_bag_semantics();
        // Cheapest cut: the x fact with multiplicity 1.
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Finite(1));
        let set_q = Rpq::parse("axb").unwrap();
        assert_eq!(resilience_exact(&set_q, &db).value, ResilienceValue::Finite(1));
        // Make x expensive instead.
        let x = db.find_node("u").unwrap();
        let v = db.find_node("v").unwrap();
        let fx = db.find_fact(x, rpq_automata::alphabet::Letter('x'), v).unwrap();
        db.set_multiplicity(fx, 100);
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Finite(7));
        // Under set semantics the multiplicities are ignored: still 1.
        assert_eq!(resilience_exact(&set_q, &db).value, ResilienceValue::Finite(1));
    }

    #[test]
    fn branch_and_bound_agrees_with_enumeration_on_random_instances() {
        use rpq_automata::{Alphabet, Language};
        use rpq_graphdb::generate::random_labeled_graph;
        let alphabet = Alphabet::from_chars("ab");
        for seed in 0..8 {
            let db = random_labeled_graph(4, 7, &alphabet, seed);
            for pattern in ["aa", "ab", "ab|ba", "aba"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let bb = resilience_exact(&q, &db).value;
                let enumerated = resilience_by_enumeration(&q, &db);
                assert_eq!(bb, enumerated, "pattern {pattern}, seed {seed}");
            }
        }
    }

    #[test]
    fn contingency_set_is_optimal_and_valid() {
        let db = word_path(&Word::from_str_word("aaa"));
        let q = Rpq::parse("aa").unwrap();
        let result = resilience_exact(&q, &db);
        assert_eq!(result.value, ResilienceValue::Finite(1));
        assert!(q.is_contingency_set(&db, &result.contingency_set));
        assert_eq!(q.cost(&db, &result.contingency_set), 1);
        assert!(result.explored_nodes >= 1);
    }
}
