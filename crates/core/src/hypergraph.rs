//! The hypergraph of matches and its condensation (Section 4.3 of the paper).
//!
//! The resilience of `Q_L` on `D` under set semantics is the minimum size of a
//! hitting set of the **hypergraph of matches** `H_{L,D}`, whose vertices are
//! the facts of `D` and whose hyperedges are the matches of `L` (the fact sets
//! of `L`-walks). The two **condensation rules** (edge-domination and
//! node-domination, Claim 4.8) simplify the hypergraph without changing the
//! minimum hitting-set size; they are the tool used to verify hardness gadgets
//! (Definition 4.9).

use rpq_automata::finite::FiniteLanguage;
use rpq_automata::Language;
use rpq_graphdb::{enumerate_matches, eval::enumerate_matches_regular, FactId, GraphDb};
use std::collections::BTreeSet;

/// A hypergraph whose vertices are database facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    vertices: BTreeSet<FactId>,
    edges: Vec<BTreeSet<FactId>>,
}

impl Hypergraph {
    /// Builds a hypergraph from explicit vertices and hyperedges.
    pub fn new(vertices: BTreeSet<FactId>, edges: Vec<BTreeSet<FactId>>) -> Hypergraph {
        for e in &edges {
            assert!(e.is_subset(&vertices), "hyperedges must only use declared vertices");
        }
        Hypergraph { vertices, edges }
    }

    /// The hypergraph of matches `H_{L,D}` of a finite language on a database.
    pub fn of_matches(db: &GraphDb, language: &FiniteLanguage) -> Hypergraph {
        let vertices: BTreeSet<FactId> = db.fact_ids().collect();
        let edges = enumerate_matches(db, language);
        Hypergraph { vertices, edges }
    }

    /// The hypergraph of matches of an arbitrary regular language on an
    /// **acyclic** database (used by the hardness gadgets of Section 5, whose
    /// languages may be infinite). Returns `None` if the database has a cycle.
    pub fn of_matches_regular(db: &GraphDb, language: &Language) -> Option<Hypergraph> {
        let vertices: BTreeSet<FactId> = db.fact_ids().collect();
        let edges = enumerate_matches_regular(db, language)?;
        Some(Hypergraph { vertices, edges })
    }

    /// The vertices (facts).
    pub fn vertices(&self) -> &BTreeSet<FactId> {
        &self.vertices
    }

    /// The hyperedges (matches).
    pub fn edges(&self) -> &[BTreeSet<FactId>] {
        &self.edges
    }

    /// The hyperedges incident to a vertex.
    pub fn incident_edges(&self, v: FactId) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| e.contains(&v)).map(|(i, _)| i).collect()
    }

    /// Whether a fact set is a hitting set (intersects every hyperedge).
    pub fn is_hitting_set(&self, set: &BTreeSet<FactId>) -> bool {
        self.edges.iter().all(|e| !e.is_disjoint(set))
    }

    /// Applies the two condensation rules (edge-domination and
    /// node-domination) until no more apply, never removing the vertices in
    /// `protected` by node-domination.
    ///
    /// By Claim 4.8 the minimum size of a hitting set is preserved. Protecting
    /// vertices is needed when checking Definition 4.9, which asks for *some*
    /// condensation forming an odd path between the two endpoint facts (which
    /// must therefore survive).
    pub fn condense(&self, protected: &BTreeSet<FactId>) -> Hypergraph {
        let mut vertices = self.vertices.clone();
        let mut edges = self.edges.clone();
        loop {
            let mut changed = false;

            // Edge-domination: drop any edge that is a (non-strict) superset of
            // another edge. Also drop duplicate edges.
            let mut kept: Vec<BTreeSet<FactId>> = Vec::new();
            for (i, e) in edges.iter().enumerate() {
                let dominated = edges
                    .iter()
                    .enumerate()
                    .any(|(j, other)| i != j && other.is_subset(e) && (other != e || j < i));
                if dominated {
                    changed = true;
                } else {
                    kept.push(e.clone());
                }
            }
            edges = kept;

            // Node-domination: remove a vertex v (not protected) whose incident
            // edge set is included in that of another vertex v'.
            let vertex_list: Vec<FactId> = vertices.iter().copied().collect();
            'outer: for &v in &vertex_list {
                if protected.contains(&v) {
                    continue;
                }
                let edges_v: Vec<usize> =
                    (0..edges.len()).filter(|&i| edges[i].contains(&v)).collect();
                for &v2 in &vertex_list {
                    if v2 == v {
                        continue;
                    }
                    let dominated = edges_v.iter().all(|&i| edges[i].contains(&v2));
                    if dominated {
                        vertices.remove(&v);
                        for e in &mut edges {
                            e.remove(&v);
                        }
                        changed = true;
                        break 'outer;
                    }
                }
            }

            if !changed {
                break;
            }
        }
        Hypergraph { vertices, edges }
    }

    /// Computes a minimum hitting set exactly (branch and bound over
    /// hyperedges). `weights` gives the cost of each vertex; pass `|_| 1` for
    /// plain cardinality.
    ///
    /// This is exponential in general (hitting set is NP-hard); it is intended
    /// for the gadget databases and small validation instances.
    pub fn minimum_hitting_set(
        &self,
        weights: impl Fn(FactId) -> u64 + Copy,
    ) -> (u128, BTreeSet<FactId>) {
        // Start from the trivial hitting set: all vertices occurring in edges.
        let mut best_set: BTreeSet<FactId> =
            self.edges.iter().flat_map(|e| e.iter().copied()).collect();
        let mut best_cost: u128 = best_set.iter().map(|&v| weights(v) as u128).sum();
        if self.edges.iter().any(|e| e.is_empty()) {
            // An empty hyperedge cannot be hit: by convention (matching
            // resilience with ε ∈ L) the minimum is unbounded; we signal this
            // with u128::MAX.
            return (u128::MAX, BTreeSet::new());
        }
        let mut current = BTreeSet::new();
        self.hitting_branch(0, &mut current, 0, &mut best_cost, &mut best_set, weights);
        (best_cost, best_set)
    }

    fn hitting_branch(
        &self,
        cost: u128,
        current: &mut BTreeSet<FactId>,
        from_edge: usize,
        best_cost: &mut u128,
        best_set: &mut BTreeSet<FactId>,
        weights: impl Fn(FactId) -> u64 + Copy,
    ) {
        if cost >= *best_cost {
            return;
        }
        // Find the first edge not yet hit.
        let next = (from_edge..self.edges.len()).find(|&i| self.edges[i].is_disjoint(current));
        let Some(edge_index) = next else {
            *best_cost = cost;
            *best_set = current.clone();
            return;
        };
        let candidates: Vec<FactId> = self.edges[edge_index].iter().copied().collect();
        for v in candidates {
            current.insert(v);
            self.hitting_branch(
                cost + weights(v) as u128,
                current,
                edge_index + 1,
                best_cost,
                best_set,
                weights,
            );
            current.remove(&v);
        }
    }

    /// Checks whether the hypergraph is an **odd path** from `from` to `to`
    /// (Definition 4.9): every hyperedge has size 2, and the graph formed by
    /// the non-isolated vertices is a simple path `from = w₁ — w₂ — … — w₂ₖ = to`
    /// (an even number of vertices, hence an odd number of edges). Isolated
    /// vertices are ignored.
    pub fn is_odd_path(&self, from: FactId, to: FactId) -> bool {
        if self.edges.iter().any(|e| e.len() != 2) {
            return false;
        }
        if from == to {
            return false;
        }
        // Build adjacency between facts.
        let mut adjacency: std::collections::BTreeMap<FactId, BTreeSet<FactId>> =
            std::collections::BTreeMap::new();
        for e in &self.edges {
            let items: Vec<FactId> = e.iter().copied().collect();
            adjacency.entry(items[0]).or_default().insert(items[1]);
            adjacency.entry(items[1]).or_default().insert(items[0]);
        }
        let Some(from_adj) = adjacency.get(&from) else { return false };
        if from_adj.len() != 1 {
            return false;
        }
        // Walk from `from` and check we traverse a simple path ending at `to`
        // covering all edges.
        let mut visited: BTreeSet<FactId> = BTreeSet::from([from]);
        let mut current = from;
        loop {
            let next: Vec<FactId> =
                adjacency[&current].iter().copied().filter(|n| !visited.contains(n)).collect();
            match next.len() {
                0 => break,
                1 => {
                    current = next[0];
                    if adjacency[&current].len() > 2 {
                        return false;
                    }
                    visited.insert(current);
                }
                _ => return false,
            }
        }
        if current != to {
            return false;
        }
        // All non-isolated vertices must be on the path, and the number of
        // edges (= vertices on the path − 1) must be odd.
        if visited.len() != adjacency.len() {
            return false;
        }
        (visited.len() - 1) % 2 == 1 && self.edges.len() == visited.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Word;
    use rpq_graphdb::generate::word_path;

    fn fid(i: u32) -> FactId {
        FactId(i)
    }

    fn hg(num_vertices: u32, edges: &[&[u32]]) -> Hypergraph {
        Hypergraph::new(
            (0..num_vertices).map(FactId).collect(),
            edges.iter().map(|e| e.iter().map(|&i| fid(i)).collect()).collect(),
        )
    }

    #[test]
    fn of_matches_on_a_path() {
        let db = word_path(&Word::from_str_word("aaa"));
        let h = Hypergraph::of_matches(&db, &FiniteLanguage::from_strs(["aa"]));
        assert_eq!(h.vertices().len(), 3);
        assert_eq!(h.edges().len(), 2);
        let (cost, set) = h.minimum_hitting_set(|_| 1);
        assert_eq!(cost, 1);
        assert!(h.is_hitting_set(&set));
    }

    #[test]
    fn of_matches_regular_handles_infinite_languages() {
        let db = word_path(&Word::from_str_word("axxb"));
        let lang = Language::parse("ax*b").unwrap();
        let h = Hypergraph::of_matches_regular(&db, &lang).unwrap();
        assert_eq!(h.edges().len(), 1);
        assert_eq!(h.edges()[0].len(), 4);
    }

    #[test]
    fn hitting_set_with_weights() {
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        let (cost, set) = h.minimum_hitting_set(|_| 1);
        assert_eq!(cost, 1);
        assert_eq!(set, [fid(1)].into_iter().collect());
        // Make the middle vertex expensive: the optimum switches to {0, 2}.
        let (cost, set) = h.minimum_hitting_set(|v| if v == fid(1) { 10 } else { 1 });
        assert_eq!(cost, 2);
        assert_eq!(set, [fid(0), fid(2)].into_iter().collect());
    }

    #[test]
    fn hitting_set_with_empty_edge_is_unbounded() {
        let h = hg(2, &[&[0], &[]]);
        let (cost, _) = h.minimum_hitting_set(|_| 1);
        assert_eq!(cost, u128::MAX);
    }

    #[test]
    fn edge_domination() {
        // Edge {0,1} dominates {0,1,2}: the latter disappears.
        let h = hg(3, &[&[0, 1], &[0, 1, 2]]);
        let c = h.condense(&BTreeSet::new());
        assert_eq!(c.edges().len(), 1);
        // Hitting-set size preserved.
        assert_eq!(h.minimum_hitting_set(|_| 1).0, c.minimum_hitting_set(|_| 1).0);
    }

    #[test]
    fn node_domination() {
        // Vertex 2 only appears in the edge {1,2}; vertex 1 appears in both
        // edges, so 2 is dominated by 1 and can be removed.
        let h = hg(3, &[&[0, 1], &[1, 2]]);
        let protected = BTreeSet::from([fid(0)]);
        let c = h.condense(&protected);
        assert!(!c.vertices().contains(&fid(2)) || !c.vertices().contains(&fid(1)));
        assert_eq!(h.minimum_hitting_set(|_| 1).0, 1);
    }

    #[test]
    fn condensation_preserves_hitting_set_size() {
        // Claim 4.8, checked on a batch of small hypergraphs.
        let cases = vec![
            hg(4, &[&[0, 1], &[1, 2], &[2, 3]]),
            hg(5, &[&[0, 1, 2], &[2, 3], &[3, 4], &[0, 4]]),
            hg(6, &[&[0, 1], &[1, 2, 3], &[3, 4], &[4, 5], &[0, 5]]),
            hg(4, &[&[0], &[0, 1], &[2, 3], &[1, 2, 3]]),
        ];
        for h in cases {
            let c = h.condense(&BTreeSet::new());
            assert_eq!(
                h.minimum_hitting_set(|_| 1).0,
                c.minimum_hitting_set(|_| 1).0,
                "condensation must preserve the minimum hitting-set size"
            );
        }
    }

    #[test]
    fn odd_path_recognition() {
        // 0-1-2-3: 3 edges (odd) between endpoints 0 and 3.
        let path = hg(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(path.is_odd_path(fid(0), fid(3)));
        assert!(path.is_odd_path(fid(3), fid(0)));
        assert!(!path.is_odd_path(fid(0), fid(2)));
        // Even path: 0-1-2 has 2 edges.
        let even = hg(3, &[&[0, 1], &[1, 2]]);
        assert!(!even.is_odd_path(fid(0), fid(2)));
        // A cycle is not a path.
        let cycle = hg(4, &[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(!cycle.is_odd_path(fid(0), fid(3)));
        // A branching vertex disqualifies.
        let star = hg(4, &[&[0, 1], &[1, 2], &[1, 3]]);
        assert!(!star.is_odd_path(fid(0), fid(3)));
        // Hyperedges of size 3 disqualify.
        let hyper = hg(4, &[&[0, 1, 2], &[2, 3]]);
        assert!(!hyper.is_odd_path(fid(0), fid(3)));
        // Isolated vertices are ignored.
        let with_isolated = hg(5, &[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(with_isolated.is_odd_path(fid(0), fid(3)));
        // A disconnected extra component disqualifies (its vertices are not on the path).
        let disconnected = hg(6, &[&[0, 1], &[1, 2], &[2, 3], &[4, 5]]);
        assert!(!disconnected.is_odd_path(fid(0), fid(3)));
    }

    #[test]
    fn figure_3_gadget_for_aa_condenses_to_an_odd_path() {
        // Reproduce Figure 3b/3c: the completed gadget for aa.
        let mut db = GraphDb::new();
        let f_in = db.add_fact_by_names("su", 'a', "tu"); // endpoint fact F_in
        let g1 = db.add_fact_by_names("tu", 'a', "1");
        let _g2 = db.add_fact_by_names("1", 'a', "2");
        let _g3 = db.add_fact_by_names("2", 'a', "3");
        let _g4 = db.add_fact_by_names("tv", 'a', "2");
        let f_out = db.add_fact_by_names("sv", 'a', "tv"); // endpoint fact F_out
        let h = Hypergraph::of_matches(&db, &FiniteLanguage::from_strs(["aa"]));
        // The graph of aa-matches is a path of length 5 (Figure 3c).
        assert_eq!(h.edges().len(), 5);
        let protected = BTreeSet::from([f_in, f_out]);
        let c = h.condense(&protected);
        assert!(c.is_odd_path(f_in, f_out));
        // Sanity: the first edge of the path is {F_in, tu -a-> 1}.
        assert!(h.edges().contains(&[f_in, g1].into_iter().collect()));
    }
}
