//! Approximation algorithms for resilience on the NP-hard side.
//!
//! The paper classifies which RPQs admit *exact* polynomial algorithms; for
//! the NP-hard languages (Sections 4–6) one still wants usable bounds. This
//! module provides two classical polynomial approximations for finite
//! languages, both operating on the hypergraph of matches `H_{L,D}`
//! (Definition 4.7), whose minimum hitting set equals the resilience:
//!
//! * [`resilience_greedy`] — the greedy hitting-set heuristic (repeatedly
//!   remove the fact of best coverage-per-cost), an `O(log m)`-approximation;
//! * [`resilience_k_approximation`] — the "disjoint matches" bound: any
//!   maximal set of pairwise fact-disjoint matches gives a lower bound (each
//!   must be hit separately), and removing *all* facts of those matches gives
//!   an upper bound within a factor `k`, the maximum word length of the
//!   (infix-free) language. This mirrors the classical LP-duality argument
//!   used in the ILP/LP line of work on resilience for CQs [30].
//!
//! Both are only used for finite languages (where matches can be enumerated)
//! and report certified lower and upper bounds.

use crate::hypergraph::Hypergraph;
use crate::rpq::{ResilienceValue, Rpq};
use rpq_automata::finite::FiniteLanguage;
use rpq_graphdb::{FactId, GraphDb};
use std::collections::BTreeSet;

/// The outcome of an approximate resilience computation: a certified sandwich
/// `lower ≤ RES(Q, D) ≤ upper` together with the contingency set achieving the
/// upper bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproximateResilience {
    /// A certified lower bound on the resilience.
    pub lower_bound: u128,
    /// A certified upper bound on the resilience (the cost of `contingency_set`).
    pub upper_bound: u128,
    /// A contingency set achieving `upper_bound`.
    pub contingency_set: BTreeSet<FactId>,
}

impl ApproximateResilience {
    /// Whether the bounds coincide (the approximation happens to be exact).
    pub fn is_tight(&self) -> bool {
        self.lower_bound == self.upper_bound
    }
}

/// Errors raised by the approximation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApproxError {
    /// The language is infinite (or could not be enumerated), so the
    /// hypergraph of matches cannot be built.
    NotFinite,
    /// ε belongs to the language: the resilience is `+∞` and no finite bound
    /// exists.
    InfiniteResilience,
    /// Some match consists only of exogenous facts: no contingency set exists
    /// and the resilience is `+∞`.
    ProtectedMatch,
}

impl std::fmt::Display for ApproxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApproxError::NotFinite => write!(f, "the language is not finite"),
            ApproxError::InfiniteResilience => write!(f, "ε ∈ L: the resilience is +∞"),
            ApproxError::ProtectedMatch => {
                write!(f, "a match uses only exogenous facts: the resilience is +∞")
            }
        }
    }
}

impl std::error::Error for ApproxError {}

fn matches_hypergraph(rpq: &Rpq, db: &GraphDb) -> Result<Hypergraph, ApproxError> {
    let language = rpq.infix_free_language();
    if language.contains_epsilon() {
        return Err(ApproxError::InfiniteResilience);
    }
    let finite = FiniteLanguage::from_language(&language).map_err(|_| ApproxError::NotFinite)?;
    Ok(Hypergraph::of_matches(db, &finite))
}

/// Greedy hitting set over the hypergraph of matches: repeatedly pick the
/// (endogenous) fact covering the most still-unhit matches per unit of cost.
/// Returns a certified sandwich; the upper bound is within a `ln m + 1` factor
/// of the optimum (the classical greedy set-cover guarantee), where `m` is the
/// number of matches.
pub fn resilience_greedy(rpq: &Rpq, db: &GraphDb) -> Result<ApproximateResilience, ApproxError> {
    let hypergraph = matches_hypergraph(rpq, db)?;
    let lower_bound = disjoint_matches_lower_bound(rpq, db, &hypergraph)?;

    let mut unhit: Vec<&BTreeSet<FactId>> = hypergraph.edges().iter().collect();
    let mut chosen: BTreeSet<FactId> = BTreeSet::new();
    let mut upper_bound: u128 = 0;
    while !unhit.is_empty() {
        // Pick the endogenous fact with the best (coverage / cost) ratio.
        let mut best: Option<(FactId, usize, u128)> = None;
        for &fact in hypergraph.vertices() {
            if db.is_exogenous(fact) || chosen.contains(&fact) {
                continue;
            }
            let coverage = unhit.iter().filter(|m| m.contains(&fact)).count();
            if coverage == 0 {
                continue;
            }
            let cost = rpq.semantics().fact_cost(db, fact) as u128;
            let better = match best {
                None => true,
                // Compare coverage/cost ratios without floating point:
                // coverage_a * cost_b > coverage_b * cost_a.
                Some((_, bc, bcost)) => (coverage as u128) * bcost > (bc as u128) * cost,
            };
            if better {
                best = Some((fact, coverage, cost));
            }
        }
        let Some((fact, _, cost)) = best else {
            // Some remaining match has only exogenous facts.
            return Err(ApproxError::ProtectedMatch);
        };
        chosen.insert(fact);
        upper_bound += cost;
        unhit.retain(|m| !m.contains(&fact));
    }
    debug_assert!(rpq.is_contingency_set(db, &chosen));
    Ok(ApproximateResilience { lower_bound, upper_bound, contingency_set: chosen })
}

/// The `k`-approximation (for `k` the maximum word length of `IF(L)`): greedily
/// collect a maximal family of pairwise fact-disjoint matches, whose combined
/// cheapest-fact costs form a lower bound, and remove **all** facts of the
/// collected matches, which hits every match (by maximality) and costs at most
/// `k` times the optimum under set semantics.
pub fn resilience_k_approximation(
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<ApproximateResilience, ApproxError> {
    let hypergraph = matches_hypergraph(rpq, db)?;
    let lower_bound = disjoint_matches_lower_bound(rpq, db, &hypergraph)?;

    // Collect a maximal family of pairwise disjoint matches and take all of
    // their (endogenous) facts.
    let mut used: BTreeSet<FactId> = BTreeSet::new();
    let mut chosen: BTreeSet<FactId> = BTreeSet::new();
    for m in hypergraph.edges() {
        if m.iter().any(|f| used.contains(f)) {
            continue;
        }
        used.extend(m.iter().copied());
        chosen.extend(m.iter().copied().filter(|&f| !db.is_exogenous(f)));
        if m.iter().all(|&f| db.is_exogenous(f)) {
            return Err(ApproxError::ProtectedMatch);
        }
    }
    // `chosen` hits every match: a match disjoint from all selected ones would
    // have been selected too. It may not hit matches that only intersected the
    // selected ones through exogenous facts, so top up greedily if needed.
    let mut upper: u128 = chosen.iter().map(|&f| rpq.semantics().fact_cost(db, f) as u128).sum();
    for m in hypergraph.edges() {
        if m.iter().any(|f| chosen.contains(f)) {
            continue;
        }
        let extra = m
            .iter()
            .copied()
            .filter(|&f| !db.is_exogenous(f))
            .min_by_key(|&f| rpq.semantics().fact_cost(db, f));
        let Some(extra) = extra else {
            return Err(ApproxError::ProtectedMatch);
        };
        chosen.insert(extra);
        upper += rpq.semantics().fact_cost(db, extra) as u128;
    }
    debug_assert!(rpq.is_contingency_set(db, &chosen));
    Ok(ApproximateResilience { lower_bound, upper_bound: upper, contingency_set: chosen })
}

/// A certified lower bound: the total cost of the cheapest endogenous fact of
/// each match in a maximal family of pairwise disjoint matches (each must be
/// hit by a distinct fact). Errors when a match has no endogenous fact.
fn disjoint_matches_lower_bound(
    rpq: &Rpq,
    db: &GraphDb,
    hypergraph: &Hypergraph,
) -> Result<u128, ApproxError> {
    let mut used: BTreeSet<FactId> = BTreeSet::new();
    let mut bound: u128 = 0;
    for m in hypergraph.edges() {
        if m.is_empty() {
            return Err(ApproxError::InfiniteResilience);
        }
        if m.iter().any(|f| used.contains(f)) {
            continue;
        }
        used.extend(m.iter().copied());
        let cheapest = m
            .iter()
            .copied()
            .filter(|&f| !db.is_exogenous(f))
            .map(|f| rpq.semantics().fact_cost(db, f) as u128)
            .min();
        match cheapest {
            Some(c) => bound += c,
            None => return Err(ApproxError::ProtectedMatch),
        }
    }
    Ok(bound)
}

/// Convenience wrapper returning the best of the two upper bounds as a
/// [`ResilienceValue`] together with the matching contingency set.
pub fn resilience_approximate(
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<(ResilienceValue, BTreeSet<FactId>), ApproxError> {
    let greedy = resilience_greedy(rpq, db)?;
    let k_approx = resilience_k_approximation(rpq, db)?;
    let best = if greedy.upper_bound <= k_approx.upper_bound { greedy } else { k_approx };
    Ok((ResilienceValue::Finite(best.upper_bound), best.contingency_set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use rpq_automata::{Alphabet, Language, Word};
    use rpq_graphdb::generate::{random_labeled_graph, word_path};

    fn query(pattern: &str) -> Rpq {
        Rpq::new(Language::parse(pattern).unwrap())
    }

    #[test]
    fn bounds_sandwich_the_exact_value_on_random_instances() {
        let alphabet = Alphabet::from_chars("ab");
        for seed in 0..10 {
            let db = random_labeled_graph(5, 10, &alphabet, seed);
            for pattern in ["aa", "aba|bab", "aab"] {
                let q = query(pattern);
                let exact = resilience_exact(&q, &db).value.finite().unwrap();
                for approx in [
                    resilience_greedy(&q, &db).unwrap(),
                    resilience_k_approximation(&q, &db).unwrap(),
                ] {
                    assert!(approx.lower_bound <= exact, "{pattern} seed {seed}");
                    assert!(approx.upper_bound >= exact, "{pattern} seed {seed}");
                    assert!(q.is_contingency_set(&db, &approx.contingency_set));
                    assert_eq!(
                        q.cost(&db, &approx.contingency_set),
                        approx.upper_bound,
                        "{pattern} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn k_approximation_respects_the_word_length_factor() {
        // For aa (k = 2) the upper bound is at most twice the exact value.
        let alphabet = Alphabet::from_chars("a");
        for seed in 0..8 {
            let db = random_labeled_graph(5, 8, &alphabet, seed);
            let q = query("aa");
            let exact = resilience_exact(&q, &db).value.finite().unwrap();
            let approx = resilience_k_approximation(&q, &db).unwrap();
            assert!(approx.upper_bound <= 2 * exact.max(1), "seed {seed}");
        }
    }

    #[test]
    fn exact_on_trivial_instances() {
        let db = word_path(&Word::from_str_word("aa"));
        let q = query("aa");
        let approx = resilience_greedy(&q, &db).unwrap();
        assert!(approx.is_tight());
        assert_eq!(approx.upper_bound, 1);
    }

    #[test]
    fn infinite_and_non_finite_cases_are_reported() {
        let db = word_path(&Word::from_str_word("aa"));
        assert_eq!(
            resilience_greedy(&query("a*"), &db).unwrap_err(),
            ApproxError::InfiniteResilience
        );
        assert_eq!(resilience_greedy(&query("ax*b"), &db).unwrap_err(), ApproxError::NotFinite);
    }

    #[test]
    fn exogenous_matches_are_detected() {
        let mut db = word_path(&Word::from_str_word("aa"));
        for fact in db.fact_ids().collect::<Vec<_>>() {
            db.set_exogenous(fact, true);
        }
        assert_eq!(resilience_greedy(&query("aa"), &db).unwrap_err(), ApproxError::ProtectedMatch);
        assert_eq!(
            resilience_k_approximation(&query("aa"), &db).unwrap_err(),
            ApproxError::ProtectedMatch
        );
    }

    #[test]
    fn bag_semantics_costs_are_used() {
        let mut db = GraphDb::new();
        let s = db.node("s");
        let u = db.node("u");
        let t = db.node("t");
        let f1 = db.add_fact_with_multiplicity(s, 'a'.into(), u, 10);
        let f2 = db.add_fact_with_multiplicity(u, 'a'.into(), t, 1);
        let q = query("aa").with_bag_semantics();
        let approx = resilience_greedy(&q, &db).unwrap();
        assert_eq!(approx.upper_bound, 1);
        assert_eq!(approx.contingency_set, [f2].into_iter().collect());
        let _ = f1;
    }
}
