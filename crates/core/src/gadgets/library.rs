//! Concrete hardness gadgets from the paper's figures.
//!
//! Each constructor returns the pre-gadget exactly as drawn in the paper
//! (node names follow the figure labels); the accompanying tests mechanically
//! re-verify Definition 4.9 with [`PreGadget::verify`], reproducing the
//! companion sanity-check tool described in Section 4.3.
//!
//! Gadgets transcribed here as fixed databases:
//!
//! | Figure | Language | Result |
//! |---|---|---|
//! | Fig. 3b | `aa` | Proposition 4.1 |
//! | Fig. 4a | `axb\|cxd` | Proposition 4.13 |
//! | Fig. 10 | `aaa` | Claim 6.11 |
//! | Fig. 13 | `ab\|bc\|ca` | Proposition 7.4 |
//!
//! The *parameterized* gadget families of Theorem 5.3 Case 1 (Figure 5),
//! Lemma 6.6 (Figures 7–8), Claims 6.10/6.14 (Figures 9 and 11) and
//! Proposition 7.11 (Figures 15–16) are built programmatically in
//! [`super::families`]; only Figure 6 (Theorem 5.3 Case 2) and Figure 12
//! (Claim 6.13) remain untranscribed, and those hardness verdicts are
//! certified by the four-legged / repeated-letter witnesses instead
//! (see `DESIGN.md`).

use super::PreGadget;
use rpq_automata::alphabet::Letter;
use rpq_graphdb::GraphDb;

/// The gadget for `aa` from Figure 3b (Proposition 4.1).
///
/// Pre-gadget facts: `t_in → 1 → 2 → 3` and `t_out → 2`, all labeled `a`.
pub fn gadget_aa() -> PreGadget {
    gadget_aa_with_letter(Letter('a'))
}

/// The Figure 3b gadget with an arbitrary letter in place of `a`: the gadget
/// used whenever a square word `xx` belongs to the (infix-free) language
/// (Proposition 4.1 and the hard branch of Proposition 5.7).
pub fn gadget_aa_with_letter(a: Letter) -> PreGadget {
    let mut db = GraphDb::new();
    let t_in = db.node("t_in");
    let t_out = db.node("t_out");
    let n1 = db.node("1");
    let n2 = db.node("2");
    let n3 = db.node("3");
    db.add_fact(t_in, a, n1);
    db.add_fact(n1, a, n2);
    db.add_fact(n2, a, n3);
    db.add_fact(t_out, a, n2);
    // lint: allow(panic-freedom, the static Figure 3b database is verified by tests)
    PreGadget::new(db, t_in, t_out, a).expect("Figure 3b pre-gadget is well-formed")
}

/// The gadget for `aaa` from Figure 10 (Claim 6.11), which the paper notes is
/// identical to the Figure 3b gadget.
pub fn gadget_aaa() -> PreGadget {
    gadget_aa()
}

/// The gadget for `axb|cxd` from Figure 4a (Proposition 4.13).
///
/// Node names follow the figure (internal nodes 1–16); the endpoint letter is `a`.
pub fn gadget_axb_cxd() -> PreGadget {
    let mut db = GraphDb::new();
    let t_in = db.node("t_in");
    let t_out = db.node("t_out");
    let facts: &[(&str, char, &str)] = &[
        ("t_in", 'x', "1"),
        ("1", 'b', "2"),
        ("1", 'd', "3"),
        ("4", 'x', "1"),
        ("5", 'a', "4"),
        ("6", 'c', "4"),
        ("7", 'x', "1"),
        ("8", 'c', "7"),
        ("7", 'x', "9"),
        ("9", 'd', "10"),
        ("9", 'b', "11"),
        ("13", 'a', "12"),
        ("12", 'x', "9"),
        ("14", 'c', "12"),
        ("12", 'x', "15"),
        ("15", 'b', "16"),
        ("t_out", 'x', "15"),
    ];
    for &(src, label, dst) in facts {
        let s = db.node(src);
        let t = db.node(dst);
        db.add_fact(s, Letter(label), t);
    }
    // lint: allow(panic-freedom, the static Figure 4a database is verified by tests)
    PreGadget::new(db, t_in, t_out, Letter('a')).expect("Figure 4a pre-gadget is well-formed")
}

/// The gadget for `ab|bc|ca` from Figure 13 (Proposition 7.4).
///
/// The pre-gadget is a path `t_in → 1 → 2 → 3 → 4 → 5` labeled `b c a b c`
/// plus a fact `t_out → 4` labeled `b`; the endpoint letter is `a`.
pub fn gadget_ab_bc_ca() -> PreGadget {
    let mut db = GraphDb::new();
    let t_in = db.node("t_in");
    let t_out = db.node("t_out");
    let facts: &[(&str, char, &str)] = &[
        ("t_in", 'b', "1"),
        ("1", 'c', "2"),
        ("2", 'a', "3"),
        ("3", 'b', "4"),
        ("4", 'c', "5"),
        ("t_out", 'b', "4"),
    ];
    for &(src, label, dst) in facts {
        let s = db.node(src);
        let t = db.node(dst);
        db.add_fact(s, Letter(label), t);
    }
    // lint: allow(panic-freedom, the static Figure 13 database is verified by tests)
    PreGadget::new(db, t_in, t_out, Letter('a')).expect("Figure 13 pre-gadget is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use crate::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
    use crate::rpq::{ResilienceValue, Rpq};
    use rpq_automata::Language;

    #[test]
    fn figure_3_gadget_for_aa_is_valid() {
        let report = gadget_aa().verify(&Language::parse("aa").unwrap());
        assert!(report.is_valid, "{:?}", report.failure);
        // Figure 3c: the graph of matches is a path of length 5.
        assert_eq!(report.num_matches, 5);
        assert_eq!(report.path_length, Some(5));
    }

    #[test]
    fn figure_10_gadget_for_aaa_is_valid() {
        let report = gadget_aaa().verify(&Language::parse("aaa").unwrap());
        assert!(report.is_valid, "{:?}", report.failure);
        assert!(report.path_length.unwrap() % 2 == 1);
    }

    #[test]
    fn figure_4_gadget_for_axb_cxd_is_valid() {
        let language = Language::parse("axb|cxd").unwrap();
        let report = gadget_axb_cxd().verify(&language);
        assert!(report.is_valid, "{:?}", report.failure);
        // Figure 4b lists the matches of the completed gadget; the condensed
        // path of Figure 4c has 10 vertices hence 9 edges.
        assert_eq!(report.path_length, Some(9));
    }

    #[test]
    fn figure_13_gadget_for_ab_bc_ca_is_valid() {
        let language = Language::parse("ab|bc|ca").unwrap();
        let report = gadget_ab_bc_ca().verify(&language);
        assert!(report.is_valid, "{:?}", report.failure);
        assert_eq!(report.num_matches, 7);
        assert_eq!(report.path_length, Some(7));
    }

    #[test]
    fn gadgets_are_not_valid_for_other_languages() {
        // The aa gadget is not a gadget for axb|cxd and vice versa.
        assert!(!gadget_aa().verify(&Language::parse("axb|cxd").unwrap()).is_valid);
        assert!(!gadget_ab_bc_ca().verify(&Language::parse("aa").unwrap()).is_valid);
    }

    #[test]
    fn vertex_cover_reduction_with_the_ab_bc_ca_gadget() {
        let gadget = gadget_ab_bc_ca();
        let language = Language::parse("ab|bc|ca").unwrap();
        let ell = gadget.verify(&language).path_length.unwrap();
        let query = Rpq::new(language);
        for graph in [UndirectedGraph::new(3, [(0, 1), (1, 2)]), UndirectedGraph::new(2, [(0, 1)])]
        {
            let encoding = gadget.encode_graph(&graph);
            let resilience = resilience_exact(&query, &encoding).value;
            let expected = subdivision_vertex_cover_number(&graph, ell);
            assert_eq!(resilience, ResilienceValue::Finite(expected as u128));
        }
    }

    #[test]
    fn vertex_cover_reduction_with_the_axb_cxd_gadget() {
        let gadget = gadget_axb_cxd();
        let language = Language::parse("axb|cxd").unwrap();
        let ell = gadget.verify(&language).path_length.unwrap();
        let query = Rpq::new(language);
        let graph = UndirectedGraph::new(2, [(0, 1)]);
        let encoding = gadget.encode_graph(&graph);
        let resilience = resilience_exact(&query, &encoding).value;
        let expected = subdivision_vertex_cover_number(&graph, ell);
        assert_eq!(resilience, ResilienceValue::Finite(expected as u128));
    }
}
