//! Parameterized hardness-gadget families (Theorems 5.3 and 6.1, Prop. 7.11).
//!
//! The concrete gadgets of [`super::library`] transcribe fixed figures of the
//! paper (`aa`, `axb|cxd`, `aaa`, `ab|bc|ca`). The hardness proofs of
//! Sections 5 and 6, however, use *families* of gadgets parameterized by
//! words extracted from the language (stable legs, maximal-gap words, …).
//! This module builds those families programmatically:
//!
//! | Family | Paper artifact | Parameters |
//! |---|---|---|
//! | [`theorem_5_3_case_1_gadget`] | Figure 5 (Theorem 5.3, Case 1) | stable legs `α', β', γ', δ'` and body `x` |
//! | [`lemma_6_6_gadget`] | Figures 7–8 (Lemma 6.6) | letter `a`, gap `γ`, tail `δ` |
//! | [`claim_6_10_gadget`] | Figure 9 (Claim 6.10) | letters `a`, `b` with `aba, bab ∈ L` |
//! | [`claim_6_11_gadget`] | Figure 10 (Claim 6.11) | letter `a` with `aaa ∈ L` |
//! | [`claim_6_14_gadget`] | Figure 11 (Claim 6.14) | word `aaδ` (generalizes `aab`) |
//! | [`gadget_abcd_be_ef`] / [`gadget_abcd_bef`] | Figures 15–16 (Prop. 7.11) | fixed |
//!
//! Every family constructor only *builds* a candidate pre-gadget; validity for
//! a concrete language is always established mechanically by
//! [`PreGadget::verify`] (the analogue of the paper's companion sanity-check
//! tool). The [`find_gadget`] driver follows the case analysis of the
//! Theorem 6.1 / Theorem 5.3 proofs, generates the applicable candidates
//! (also for the mirror language, cf. Proposition 6.3), verifies each, and
//! returns the first gadget that checks out together with its provenance.
//!
//! Two figures are **not** covered by a family yet: Figure 6 (Theorem 5.3,
//! Case 2 — some infix of `γ'xβ'` is in `L`) and Figure 12 (Claim 6.13, the
//! non-overlapping case with words `axηya` and `yax`). For languages that
//! only fall in those cases, [`find_gadget`] returns `None` and the
//! NP-hardness verdict of the classifier rests on the corresponding witness
//! certificates instead (see `DESIGN.md`).

use super::library;
use super::{GadgetError, GadgetReport, PreGadget};
use rpq_automata::alphabet::Letter;
use rpq_automata::finite::FiniteLanguage;
use rpq_automata::four_legged::{four_legged_witness, legs_are_stable, stabilize_legs};
use rpq_automata::local::CartesianViolation;
use rpq_automata::word::Word;
use rpq_automata::Language;
use rpq_graphdb::GraphDb;
use std::collections::BTreeMap;

/// Which gadget family produced a verified gadget (provenance for reports and
/// for the per-experiment index of `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetFamily {
    /// Figure 3b — the fixed gadget for `aa` (Proposition 4.1), reused for any
    /// language whose infix-free sublanguage contains a square word `xx`.
    Figure3b,
    /// Figure 4a — the fixed gadget for `axb|cxd` (Proposition 4.13).
    Figure4a,
    /// Figure 5 — the Theorem 5.3 Case 1 family, parameterized by stable legs.
    Figure5Case1,
    /// Figure 7 — the Lemma 6.6 family for a maximal-gap word `aγa` (`δ = ε`).
    Figure7,
    /// Figure 8 — the Lemma 6.6 family for a maximal-gap word `aγaδ` (`δ ≠ ε`).
    Figure8,
    /// Figure 9 — the Claim 6.10 gadget for languages containing `aba` and `bab`.
    Figure9,
    /// Figure 10 — the Claim 6.11 gadget for languages containing `aaa`.
    Figure10,
    /// Figure 11 — the Claim 6.14 family for languages containing `aaδ` with `δ ≠ ε`.
    Figure11,
    /// Figure 13 — the fixed gadget for `ab|bc|ca` (Proposition 7.4).
    Figure13,
    /// Figure 15 — the gadget for `abcd|be|ef` (Proposition 7.11).
    Figure15,
    /// Figure 16 — the gadget for `abcd|bef` (Proposition 7.11).
    Figure16,
}

impl GadgetFamily {
    /// The paper result this family belongs to.
    pub fn paper_result(&self) -> &'static str {
        match self {
            GadgetFamily::Figure3b => "Proposition 4.1",
            GadgetFamily::Figure4a => "Proposition 4.13",
            GadgetFamily::Figure5Case1 => "Theorem 5.3 (Case 1)",
            GadgetFamily::Figure7 | GadgetFamily::Figure8 => "Lemma 6.6",
            GadgetFamily::Figure9 => "Claim 6.10",
            GadgetFamily::Figure10 => "Claim 6.11",
            GadgetFamily::Figure11 => "Claim 6.14",
            GadgetFamily::Figure13 => "Proposition 7.4",
            GadgetFamily::Figure15 | GadgetFamily::Figure16 => "Proposition 7.11",
        }
    }
}

/// A gadget that has been mechanically verified for a language (or for its
/// mirror), together with its provenance.
#[derive(Debug, Clone)]
pub struct VerifiedGadget {
    /// The verified pre-gadget.
    pub gadget: PreGadget,
    /// The family that produced it.
    pub family: GadgetFamily,
    /// When `true`, the gadget certifies hardness of the *mirror* language
    /// `L^R`; by Proposition 6.3 this implies hardness of `L` itself.
    pub for_mirror: bool,
    /// The verification report (odd-path length, number of matches).
    pub report: GadgetReport,
}

// ---------------------------------------------------------------------------
// Sketch builder: pre-gadgets described by word-labeled paths between named
// nodes, with ε-paths handled by node unification (the "merge the head node
// with the tail node" convention used by the paper's figures).
// ---------------------------------------------------------------------------

/// A lightweight builder for pre-gadgets whose edges are paths labeled by
/// whole words. Empty words merge their endpoints, as in the paper's figures.
struct Sketch {
    facts: Vec<(String, Letter, String)>,
    merges: Vec<(String, String)>,
    fresh_counter: usize,
}

impl Sketch {
    fn new() -> Sketch {
        Sketch { facts: Vec::new(), merges: Vec::new(), fresh_counter: 0 }
    }

    fn fresh(&mut self) -> String {
        self.fresh_counter += 1;
        format!("__fresh_{}", self.fresh_counter)
    }

    /// Adds a path labeled by `word` from node `from` to node `to`, creating
    /// fresh intermediate nodes. An empty word records a merge of the two
    /// endpoints instead.
    fn path(&mut self, from: &str, to: &str, word: &Word) {
        if word.is_empty() {
            self.merges.push((from.to_string(), to.to_string()));
            return;
        }
        let mut prev = from.to_string();
        for (i, letter) in word.iter().enumerate() {
            let next = if i + 1 == word.len() { to.to_string() } else { self.fresh() };
            self.facts.push((prev, letter, next.clone()));
            prev = next;
        }
    }

    /// Adds a path labeled by `word` from `from` to a fresh dangling node
    /// (used for the `δ`-tails of Figure 8). Does nothing for the empty word.
    fn dangling_path(&mut self, from: &str, word: &Word) {
        if word.is_empty() {
            return;
        }
        let end = self.fresh();
        self.path(from, &end, word);
    }

    /// Resolves the recorded merges (union-find over node names), deduplicates
    /// facts, and builds the pre-gadget.
    fn build(self, t_in: &str, t_out: &str, letter: Letter) -> Result<PreGadget, GadgetError> {
        // Union-find over node names.
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        fn find(parent: &mut BTreeMap<String, String>, name: &str) -> String {
            let p = parent.get(name).cloned().unwrap_or_else(|| name.to_string());
            if p == name {
                return p;
            }
            let root = find(parent, &p);
            parent.insert(name.to_string(), root.clone());
            root
        }
        for (a, b) in &self.merges {
            let ra = find(&mut parent, a);
            let rb = find(&mut parent, b);
            if ra != rb {
                // Keep the distinguished endpoint names as representatives so
                // that `t_in`/`t_out` survive the unification.
                let (keep, drop) = if rb == t_in || rb == t_out { (rb, ra) } else { (ra, rb) };
                parent.insert(drop, keep);
            }
        }
        let mut db = GraphDb::new();
        let t_in_id = db.node(&find(&mut parent, t_in));
        let t_out_id = db.node(&find(&mut parent, t_out));
        if t_in_id == t_out_id {
            return Err(GadgetError("t_in and t_out were merged by an ε-path".into()));
        }
        let mut seen: std::collections::BTreeSet<(String, Letter, String)> = Default::default();
        for (src, label, dst) in &self.facts {
            let s = find(&mut parent, src);
            let d = find(&mut parent, dst);
            if !seen.insert((s.clone(), *label, d.clone())) {
                continue; // identical fact already added (set semantics)
            }
            let s_id = db.node(&s);
            let d_id = db.node(&d);
            db.add_fact(s_id, *label, d_id);
        }
        PreGadget::new(db, t_in_id, t_out_id, letter)
    }
}

// ---------------------------------------------------------------------------
// Theorem 5.3, Case 1 (Figure 5).
// ---------------------------------------------------------------------------

/// Builds the Theorem 5.3 **Case 1** gadget (Figure 5) from a four-legged
/// witness with stable legs: the generalization of the Figure 4a gadget in
/// which the single letters `a, b, c, d` of `axb|cxd` are replaced by the
/// words `α' = aα`, `β'`, `γ'`, `δ'` (the first letter of `α'` is the
/// endpoint letter of the completion).
///
/// The construction is only meaningful under the Case 1 hypothesis (no infix
/// of `γ'xβ'` belongs to the language); callers must confirm validity with
/// [`PreGadget::verify`], which [`find_gadget`] does automatically.
pub fn theorem_5_3_case_1_gadget(witness: &CartesianViolation) -> Result<PreGadget, GadgetError> {
    if !witness.has_nonempty_legs() {
        return Err(GadgetError("Theorem 5.3 requires non-empty legs".into()));
    }
    let x = Word::single(witness.body);
    let alpha_prime = &witness.alpha; // α' = a·α
    let beta_prime = &witness.beta;
    let gamma_prime = &witness.gamma;
    let delta_prime = &witness.delta;
    let endpoint_letter = alpha_prime
        .first()
        .ok_or_else(|| GadgetError("Theorem 5.3 requires non-empty legs".into()))?;
    let alpha_tail = alpha_prime.slice(1, alpha_prime.len());

    let mut sketch = Sketch::new();
    // The skeleton follows Figure 4a; `t_in`/`t_out` are continued by the tail
    // of α' (the completion supplies its first letter).
    sketch.path("t_in", "in_mid", &alpha_tail);
    sketch.path("in_mid", "1", &x);
    sketch.path("1", "2", beta_prime);
    sketch.path("1", "3", delta_prime);
    sketch.path("4", "1", &x);
    sketch.path("5", "4", alpha_prime);
    sketch.path("6", "4", gamma_prime);
    sketch.path("8", "7", gamma_prime);
    sketch.path("7", "1", &x);
    sketch.path("7", "9", &x);
    sketch.path("9", "10", delta_prime);
    sketch.path("9", "11", beta_prime);
    sketch.path("13", "12", alpha_prime);
    sketch.path("12", "9", &x);
    sketch.path("14", "12", gamma_prime);
    sketch.path("12", "15", &x);
    sketch.path("15", "16", beta_prime);
    sketch.path("t_out", "out_mid", &alpha_tail);
    sketch.path("out_mid", "15", &x);
    sketch.build("t_in", "t_out", endpoint_letter)
}

// ---------------------------------------------------------------------------
// Lemma 6.6 (Figures 7 and 8).
// ---------------------------------------------------------------------------

/// Builds the Lemma 6.6 gadget for a maximal-gap word `aγaδ` with `β = ε`,
/// under the hypothesis that no infix of `γaγ` belongs to the language.
///
/// * `δ = ε` gives the Figure 7 shape (a chain of four `a`-edges separated by
///   `γ`-paths, with the out-endpoint branching into the last `a`-edge);
/// * `δ ≠ ε` adds the dangling `δ`-tails of Figure 8;
/// * `γ = ε` degenerates to the Figure 3b shape (for `δ = ε`) or to the
///   Figure 11 shape (for `δ ≠ ε`) — see [`claim_6_14_gadget`].
pub fn lemma_6_6_gadget(a: Letter, gamma: &Word, delta: &Word) -> Result<PreGadget, GadgetError> {
    if gamma.is_empty() {
        // Degenerate shapes: the general chain would merge the out-endpoint
        // into the head of an `a`-fact, so reuse the dedicated constructions.
        return if delta.is_empty() {
            Ok(library::gadget_aa_with_letter(a))
        } else {
            claim_6_14_gadget(a, delta)
        };
    }
    let a_word = Word::single(a);
    let mut sketch = Sketch::new();
    // Chain: t_in -γ→ s1 -a→ e1 -γ→ s2 -a→ e2 -γ→ s3 -a→ e3, plus the branch
    // e4 -γ→ s3 (so that the fourth a-edge a(s4, e4) feeds the third) and the
    // out-endpoint path t_out -γ→ s4.
    sketch.path("t_in", "s1", gamma);
    sketch.path("s1", "e1", &a_word);
    sketch.path("e1", "s2", gamma);
    sketch.path("s2", "e2", &a_word);
    sketch.path("e2", "s3", gamma);
    sketch.path("s3", "e3", &a_word);
    sketch.path("s4", "e4", &a_word);
    sketch.path("e4", "s3", gamma);
    sketch.path("t_out", "s4", gamma);
    if !delta.is_empty() {
        // Figure 8: a δ-tail after every a-edge target (one per node).
        for node in ["e1", "e2", "e3", "e4"] {
            sketch.dangling_path(node, delta);
        }
    }
    sketch.build("t_in", "t_out", a)
}

// ---------------------------------------------------------------------------
// Claims 6.10, 6.11, 6.14 (Figures 9, 10, 11).
// ---------------------------------------------------------------------------

/// Builds the Claim 6.10 gadget (Figure 9) for an infix-free language
/// containing both `aba` and `bab`.
pub fn claim_6_10_gadget(a: Letter, b: Letter) -> Result<PreGadget, GadgetError> {
    if a == b {
        return Err(GadgetError("Claim 6.10 requires two distinct letters".into()));
    }
    let mut db = GraphDb::new();
    let facts: &[(&str, Letter, &str)] = &[
        ("t_in", b, "1"),
        ("5", b, "1"),
        ("1", a, "2"),
        ("2", b, "3"),
        ("3", a, "4"),
        ("t_out", b, "7"),
        ("8", b, "7"),
        ("7", a, "4"),
        ("4", b, "6"),
    ];
    let t_in = db.node("t_in");
    let t_out = db.node("t_out");
    for &(src, label, dst) in facts {
        let s = db.node(src);
        let d = db.node(dst);
        db.add_fact(s, label, d);
    }
    PreGadget::new(db, t_in, t_out, a)
}

/// Builds the Claim 6.11 gadget (Figure 10) for an infix-free language
/// containing `aaa`; the shape is the Figure 3b gadget.
pub fn claim_6_11_gadget(a: Letter) -> PreGadget {
    library::gadget_aa_with_letter(a)
}

/// Builds the Claim 6.14 gadget (Figure 11), generalized from the word `aab`
/// to any word `aaδ` with `δ ≠ ε`: facts `t_in -a→ 1`, a `δ`-path out of `1`,
/// `t_out -a→ 3`, `3 -a→ 1`, and a `δ`-path out of `3`.
pub fn claim_6_14_gadget(a: Letter, delta: &Word) -> Result<PreGadget, GadgetError> {
    if delta.is_empty() {
        return Err(GadgetError("Claim 6.14 requires a non-empty tail δ".into()));
    }
    let a_word = Word::single(a);
    let mut sketch = Sketch::new();
    sketch.path("t_in", "1", &a_word);
    sketch.dangling_path("1", delta);
    sketch.path("t_out", "3", &a_word);
    sketch.path("3", "1", &a_word);
    sketch.dangling_path("3", delta);
    sketch.build("t_in", "t_out", a)
}

// ---------------------------------------------------------------------------
// Proposition 7.11 (Figures 15 and 16).
// ---------------------------------------------------------------------------

fn prop_7_11_db() -> (GraphDb, rpq_graphdb::NodeId, rpq_graphdb::NodeId) {
    let mut db = GraphDb::new();
    let t_in = db.node("t_in");
    let t_out = db.node("t_out");
    let facts: &[(&str, char, &str)] = &[
        ("t_in", 'b', "1"),
        ("1", 'c', "2"),
        ("2", 'd', "3"),
        ("1", 'e', "4"),
        ("4", 'f', "5"),
        ("8", 'e', "4"),
        ("7", 'b', "8"),
        ("6", 'a', "7"),
        ("8", 'c', "9"),
        ("9", 'd', "10"),
        ("t_out", 'b', "11"),
        ("11", 'c', "9"),
    ];
    for &(src, label, dst) in facts {
        let s = db.node(src);
        let d = db.node(dst);
        db.add_fact(s, Letter(label), d);
    }
    (db, t_in, t_out)
}

/// The gadget for `abcd|be|ef` (Figure 15, Proposition 7.11).
///
/// The node numbering differs slightly from the paper's drawing (which is not
/// fully machine-readable); validity is established mechanically by
/// [`PreGadget::verify`], which reproduces the odd condensed path of the
/// figure (7 edges).
pub fn gadget_abcd_be_ef() -> PreGadget {
    let (db, t_in, t_out) = prop_7_11_db();
    // lint: allow(panic-freedom, the static Figure 15 database is verified by tests)
    PreGadget::new(db, t_in, t_out, Letter('a')).expect("Figure 15 pre-gadget is well-formed")
}

/// The gadget for `abcd|bef` (Figure 16, Proposition 7.11). As the paper
/// notes, the database is identical to the Figure 15 gadget; only the
/// condensed hypergraph of matches differs (a 5-edge odd path).
pub fn gadget_abcd_bef() -> PreGadget {
    gadget_abcd_be_ef()
}

// ---------------------------------------------------------------------------
// The driver: Theorem 6.1 / Theorem 5.3 case analysis with mechanical
// verification of every candidate.
// ---------------------------------------------------------------------------

/// A candidate gadget together with its provenance, before verification.
struct Candidate {
    gadget: PreGadget,
    family: GadgetFamily,
    for_mirror: bool,
}

fn push_candidate(
    candidates: &mut Vec<Candidate>,
    result: Result<PreGadget, GadgetError>,
    family: GadgetFamily,
    for_mirror: bool,
) {
    if let Ok(gadget) = result {
        candidates.push(Candidate { gadget, family, for_mirror });
    }
}

/// Candidates derived from the Theorem 6.1 case analysis applied to one
/// orientation of the (finite, infix-free) language.
fn finite_candidates(language: &Language, for_mirror: bool, out: &mut Vec<Candidate>) {
    let Ok(finite) = FiniteLanguage::from_language(language) else {
        return;
    };
    // Square word xx ⇒ the Proposition 4.1 reduction applies directly.
    for letter in finite.alphabet().iter() {
        if finite.contains(&Word::from_letters([letter, letter])) {
            out.push(Candidate {
                gadget: library::gadget_aa_with_letter(letter),
                family: GadgetFamily::Figure3b,
                for_mirror,
            });
        }
        // aaa ∈ L ⇒ Claim 6.11.
        if finite.contains(&Word::from_letters([letter, letter, letter])) {
            out.push(Candidate {
                gadget: claim_6_11_gadget(letter),
                family: GadgetFamily::Figure10,
                for_mirror,
            });
        }
    }
    // aba, bab ∈ L ⇒ Claim 6.10.
    for a in finite.alphabet().iter() {
        for b in finite.alphabet().iter() {
            if a == b {
                continue;
            }
            let aba = Word::from_letters([a, b, a]);
            let bab = Word::from_letters([b, a, b]);
            if finite.contains(&aba) && finite.contains(&bab) {
                push_candidate(out, claim_6_10_gadget(a, b), GadgetFamily::Figure9, for_mirror);
            }
        }
    }
    // Maximal-gap word β a γ a δ (Definition 6.4).
    let Some(max_gap) = finite.maximal_gap_word() else {
        return;
    };
    let decomposition = &max_gap.decomposition;
    let a = decomposition.letter;
    let beta = &decomposition.beta;
    let gamma = &decomposition.gamma;
    let delta = &decomposition.delta;
    if !beta.is_empty() {
        // The proof reduces to β = ε by mirroring; the mirror orientation is
        // explored separately by `find_gadget`.
        return;
    }
    // Lemma 6.6 shapes (valid when no infix of γaγ is in L — verification
    // decides, so we simply propose the candidates).
    if delta.is_empty() {
        let family = if gamma.is_empty() { GadgetFamily::Figure3b } else { GadgetFamily::Figure7 };
        push_candidate(out, lemma_6_6_gadget(a, gamma, &Word::epsilon()), family, for_mirror);
    } else if gamma.is_empty() {
        // The gap is empty: the Lemma 6.6 chain degenerates to the Claim 6.14
        // shape, so report the Figure 11 provenance directly.
        push_candidate(out, claim_6_14_gadget(a, delta), GadgetFamily::Figure11, for_mirror);
    } else {
        push_candidate(out, lemma_6_6_gadget(a, gamma, delta), GadgetFamily::Figure8, for_mirror);
    }
    // aaδ ∈ L for some letter/tail (Claim 6.14), independently of the
    // maximal-gap choice.
    for word in finite.words() {
        if word.len() >= 3 && word.letter_at(0) == word.letter_at(1) {
            let head = word.letter_at(0);
            let tail = word.slice(2, word.len());
            if !tail.is_empty() {
                push_candidate(
                    out,
                    claim_6_14_gadget(head, &tail),
                    GadgetFamily::Figure11,
                    for_mirror,
                );
            }
        }
    }
}

/// Whether a four-legged witness with stable legs falls in Case 1 of the
/// Theorem 5.3 proof: no infix of `γ'xβ'` is in the language.
fn is_case_1(language: &Language, witness: &CartesianViolation) -> bool {
    let word = Word::concat_all([&witness.gamma, &Word::single(witness.body), &witness.beta]);
    word.infixes().iter().all(|w| !language.contains(w))
}

/// Candidates derived from the Theorem 5.3 analysis (four-legged languages)
/// applied to one orientation of the language.
fn four_legged_candidates(language: &Language, for_mirror: bool, out: &mut Vec<Candidate>) {
    let mut witnesses: Vec<CartesianViolation> = Vec::new();
    if let Some(witness) = four_legged_witness(language) {
        let stable = stabilize_legs(language, &witness);
        if legs_are_stable(language, &stable) {
            witnesses.push(stable);
        }
    }
    // For finite languages, also enumerate stable Case 1 witnesses directly
    // from all word decompositions (the automatic witness may land in Case 2
    // while another decomposition of the same language is Case 1).
    if let Ok(finite) = FiniteLanguage::from_language(language) {
        witnesses.extend(enumerate_stable_witnesses(language, &finite, 16));
    }
    for witness in witnesses {
        if is_case_1(language, &witness) {
            push_candidate(
                out,
                theorem_5_3_case_1_gadget(&witness),
                GadgetFamily::Figure5Case1,
                for_mirror,
            );
        }
        // Case 2 (Figure 6) is not transcribed; see the module documentation.
    }
}

/// Enumerates four-legged witnesses with stable legs of a finite infix-free
/// language by considering every pair of words and every split position
/// (bounded by `limit` to keep the candidate pool small).
fn enumerate_stable_witnesses(
    language: &Language,
    finite: &FiniteLanguage,
    limit: usize,
) -> Vec<CartesianViolation> {
    let mut found = Vec::new();
    for first in finite.words() {
        for second in finite.words() {
            for i in 1..first.len().saturating_sub(1) {
                let x = first.letter_at(i);
                for j in 1..second.len().saturating_sub(1) {
                    if second.letter_at(j) != x {
                        continue;
                    }
                    let violation = CartesianViolation {
                        body: x,
                        alpha: first.slice(0, i),
                        beta: first.slice(i + 1, first.len()),
                        gamma: second.slice(0, j),
                        delta: second.slice(j + 1, second.len()),
                    };
                    if violation.has_nonempty_legs()
                        && violation.verify(language)
                        && legs_are_stable(language, &violation)
                    {
                        found.push(violation);
                        if found.len() >= limit {
                            return found;
                        }
                    }
                }
            }
        }
    }
    found
}

/// Candidates for the specific languages settled by fixed gadgets
/// (Propositions 4.1, 4.13, 7.4 and 7.11).
fn library_candidates(language: &Language, for_mirror: bool, out: &mut Vec<Candidate>) {
    let equals = |pattern: &str| {
        Language::parse(pattern)
            .map(|l| language.equals(&l.with_alphabet(language.alphabet())))
            .unwrap_or(false)
    };
    if equals("aa") {
        out.push(Candidate {
            gadget: library::gadget_aa(),
            family: GadgetFamily::Figure3b,
            for_mirror,
        });
    }
    if equals("axb|cxd") {
        out.push(Candidate {
            gadget: library::gadget_axb_cxd(),
            family: GadgetFamily::Figure4a,
            for_mirror,
        });
    }
    if equals("ab|bc|ca") {
        out.push(Candidate {
            gadget: library::gadget_ab_bc_ca(),
            family: GadgetFamily::Figure13,
            for_mirror,
        });
    }
    if equals("abcd|be|ef") {
        out.push(Candidate {
            gadget: gadget_abcd_be_ef(),
            family: GadgetFamily::Figure15,
            for_mirror,
        });
    }
    if equals("abcd|bef") {
        out.push(Candidate {
            gadget: gadget_abcd_bef(),
            family: GadgetFamily::Figure16,
            for_mirror,
        });
    }
}

/// Searches for a mechanically verified hardness gadget for the infix-free
/// sublanguage of `language`, following the case analysis of the paper's
/// hardness proofs (Sections 4–7). Candidates are generated both for `IF(L)`
/// and for its mirror (Proposition 6.3) and each candidate is verified with
/// [`PreGadget::verify`]; the first valid one is returned.
///
/// A `Some` result is a *certificate of NP-hardness* of `RES_set(L)` by
/// Proposition 4.11 (possibly through Proposition 6.3 when
/// [`VerifiedGadget::for_mirror`] is set). A `None` result does **not** mean
/// the language is tractable: Figure 6 (Theorem 5.3 Case 2) and Figure 12
/// (Claim 6.13) are not transcribed, and unclassified languages have no
/// gadget at all.
pub fn find_gadget(language: &Language) -> Option<VerifiedGadget> {
    let if_language = language.infix_free();
    if if_language.contains_epsilon() || if_language.is_empty() {
        return None;
    }
    let mirror = if_language.mirror();

    let mut candidates: Vec<Candidate> = Vec::new();
    library_candidates(&if_language, false, &mut candidates);
    library_candidates(&mirror, true, &mut candidates);
    finite_candidates(&if_language, false, &mut candidates);
    finite_candidates(&mirror, true, &mut candidates);
    four_legged_candidates(&if_language, false, &mut candidates);
    four_legged_candidates(&mirror, true, &mut candidates);

    for candidate in candidates {
        let target = if candidate.for_mirror { &mirror } else { &if_language };
        let report = candidate.gadget.verify(target);
        if report.is_valid {
            return Some(VerifiedGadget {
                gadget: candidate.gadget,
                family: candidate.family,
                for_mirror: candidate.for_mirror,
                report,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use crate::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
    use crate::rpq::{ResilienceValue, Rpq};

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn figure_5_family_reproduces_figure_4_for_axb_cxd() {
        // For axb|cxd the stable legs are single letters and the Case 1 family
        // degenerates exactly to the Figure 4a geometry (9-edge condensed path).
        let l = lang("axb|cxd");
        let witness = four_legged_witness(&l).expect("axb|cxd is four-legged");
        let stable = stabilize_legs(&l, &witness);
        let gadget = theorem_5_3_case_1_gadget(&stable).unwrap();
        let report = gadget.verify(&l);
        assert!(report.is_valid, "{:?}", report.failure);
        assert_eq!(report.path_length, Some(9));
    }

    #[test]
    fn figure_5_family_handles_longer_legs() {
        // α' = ae, γ' = ce: a genuine Case 1 language with legs of length 2.
        let l = lang("aexb|cexd");
        let found = find_gadget(&l).expect("four-legged Case 1 language has a gadget");
        assert_eq!(found.family, GadgetFamily::Figure5Case1);
        assert!(found.report.path_length.unwrap() % 2 == 1);
    }

    #[test]
    fn figure_5_family_handles_non_star_free_languages() {
        // b(aa)*d is non-star-free, hence four-legged (Lemma 5.6); the stable
        // legs found by the library give a Case 1 gadget.
        let l = lang("b(aa)*d");
        let found = find_gadget(&l);
        if let Some(found) = &found {
            assert!(found.report.is_valid);
        }
        // At minimum the four-legged witness must exist; the gadget search may
        // legitimately fail only if the witness falls in Case 2.
        assert!(four_legged_witness(&l).is_some());
    }

    #[test]
    fn lemma_6_6_family_for_gap_words() {
        // abca: maximal-gap word abca (β=ε, γ=bc, δ=ε) with no infix of
        // γaγ = bcabc in the language → Figure 7 shape.
        for pattern in ["abca", "axya"] {
            let l = lang(pattern);
            let found = find_gadget(&l).unwrap_or_else(|| panic!("{pattern} should have a gadget"));
            assert!(found.report.is_valid);
            assert!(found.report.path_length.unwrap() % 2 == 1, "{pattern}");
        }
    }

    #[test]
    fn lemma_6_6_figure_8_with_nonempty_delta() {
        // abcab: maximal-gap decomposition a·bc·a·b has β=ε? The maximal-gap
        // word of {abcab} is abcab = β a γ a δ with β=ε, γ=bc, δ=b. No infix of
        // γaγ = bcabc is in the language (abcab is not an infix of bcabc), so
        // Figure 8 applies.
        let l = lang("abcab");
        let gadget =
            lemma_6_6_gadget(Letter('a'), &Word::from_str_word("bc"), &Word::from_str_word("b"))
                .unwrap();
        let report = gadget.verify(&l);
        assert!(report.is_valid, "{:?}", report.failure);
        assert_eq!(report.path_length, Some(5));
    }

    #[test]
    fn claim_6_10_gadget_for_aba_bab() {
        let l = Language::from_strs(["aba", "bab"]);
        let gadget = claim_6_10_gadget(Letter('a'), Letter('b')).unwrap();
        let report = gadget.verify(&l);
        assert!(report.is_valid, "{:?}", report.failure);
        // Figure 9: condensed path of 5 edges.
        assert_eq!(report.path_length, Some(5));
        assert!(claim_6_10_gadget(Letter('a'), Letter('a')).is_err());
    }

    #[test]
    fn claim_6_14_gadget_for_aab_and_longer_tails() {
        // aab (Figure 11): 3-edge condensed path.
        let l = lang("aab");
        let gadget = claim_6_14_gadget(Letter('a'), &Word::from_str_word("b")).unwrap();
        let report = gadget.verify(&l);
        assert!(report.is_valid, "{:?}", report.failure);
        assert_eq!(report.path_length, Some(3));
        // Longer tails: aabc.
        let l2 = lang("aabc");
        let gadget2 = claim_6_14_gadget(Letter('a'), &Word::from_str_word("bc")).unwrap();
        assert!(gadget2.verify(&l2).is_valid);
        // Empty tails are rejected.
        assert!(claim_6_14_gadget(Letter('a'), &Word::epsilon()).is_err());
    }

    #[test]
    fn mirror_orientation_covers_baa() {
        // baa has its repeated letters at the end; the driver must find a
        // gadget through the mirror language aab (Proposition 6.3).
        let found = find_gadget(&lang("baa")).expect("baa is settled through its mirror");
        assert!(found.for_mirror);
        assert!(found.report.is_valid);
    }

    #[test]
    fn figures_15_and_16_are_valid() {
        let report_15 = gadget_abcd_be_ef().verify(&lang("abcd|be|ef"));
        assert!(report_15.is_valid, "{:?}", report_15.failure);
        assert_eq!(report_15.path_length, Some(7));
        let report_16 = gadget_abcd_bef().verify(&lang("abcd|bef"));
        assert!(report_16.is_valid, "{:?}", report_16.failure);
        assert_eq!(report_16.path_length, Some(5));
    }

    #[test]
    fn find_gadget_covers_most_figure_1_hard_languages() {
        // The NP-hard examples of Figure 1 whose hardness proofs go through
        // the transcribed families come with a mechanically verified gadget
        // certificate (possibly through the mirror).
        for pattern in ["aa", "axb|cxd", "ab|bc|ca", "abcd|be|ef", "abcd|bef", "aab", "abca"] {
            let found = find_gadget(&lang(pattern));
            assert!(found.is_some(), "no verified gadget found for {pattern}");
            let found = found.unwrap();
            assert!(found.report.is_valid, "{pattern}");
            assert!(found.report.path_length.unwrap() % 2 == 1, "{pattern}");
        }
    }

    #[test]
    fn documented_gaps_figure_6_and_figure_12() {
        // aaaa only admits Case 2 stable legs (Figure 6) or the overlapping
        // analysis, and abca|cab falls in the Claim 6.13 non-overlapping case
        // (Figure 12); neither figure family is transcribed, so the driver is
        // allowed to give up on them — their NP-hardness verdicts rest on the
        // repeated-letter certificates of the classifier instead. If a later
        // extension makes these succeed, this test should be updated (it only
        // requires that an answer, when given, is a genuinely verified gadget).
        for pattern in ["aaaa", "abca|cab"] {
            if let Some(found) = find_gadget(&lang(pattern)) {
                assert!(found.report.is_valid, "{pattern}");
                assert!(found.report.path_length.unwrap() % 2 == 1, "{pattern}");
            }
        }
    }

    #[test]
    fn find_gadget_returns_none_for_tractable_languages() {
        for pattern in ["ax*b", "ab|ad|cd", "ab|bc", "abc|be", "a"] {
            assert!(find_gadget(&lang(pattern)).is_none(), "{pattern} is tractable");
        }
    }

    #[test]
    fn family_gadgets_support_the_vertex_cover_reduction() {
        // End-to-end Proposition 4.11 check with family-generated gadgets.
        for pattern in ["aab", "abca"] {
            let l = lang(pattern);
            let found = find_gadget(&l).unwrap();
            assert!(!found.for_mirror, "{pattern} should be settled directly");
            let ell = found.report.path_length.unwrap();
            let query = Rpq::new(l);
            for graph in [UndirectedGraph::new(3, [(0, 1), (1, 2)]), UndirectedGraph::cycle(3)] {
                let encoding = found.gadget.encode_graph(&graph);
                let resilience = resilience_exact(&query, &encoding).value;
                let expected = subdivision_vertex_cover_number(&graph, ell);
                assert_eq!(
                    resilience,
                    ResilienceValue::Finite(expected as u128),
                    "{pattern} on a graph with {} vertices",
                    graph.num_vertices
                );
            }
        }
    }

    #[test]
    fn gadget_family_provenance_labels() {
        assert_eq!(GadgetFamily::Figure5Case1.paper_result(), "Theorem 5.3 (Case 1)");
        assert_eq!(GadgetFamily::Figure8.paper_result(), "Lemma 6.6");
        assert_eq!(GadgetFamily::Figure15.paper_result(), "Proposition 7.11");
    }
}
