//! Hardness gadgets (Section 4.2–4.4 of the paper).
//!
//! A **pre-gadget** is a database with two distinguished elements `t_in`,
//! `t_out` (never heads of facts) and a letter `a`; its **completion** adds
//! endpoint facts `s_in --a--> t_in` and `s_out --a--> t_out`. The pre-gadget
//! is a **gadget** for a language `L` (Definition 4.9) when the hypergraph of
//! matches of `L` on the completion condenses to an odd path between the two
//! endpoint facts. Gadgets imply NP-hardness of resilience via a reduction
//! from minimum vertex cover (Proposition 4.11): the input graph is encoded by
//! replacing each edge with a copy of the gadget (Definition 4.5).
//!
//! This module is the analogue of the paper's companion implementation [3]: it
//! mechanically re-verifies the gadgets (the concrete ones from the paper's
//! figures live in [`library`]) and provides the graph-encoding machinery used
//! to validate the reduction end to end on small instances.

pub mod families;
pub mod library;

use crate::hypergraph::Hypergraph;
use crate::reductions::UndirectedGraph;
use rpq_automata::alphabet::Letter;
use rpq_automata::Language;
use rpq_graphdb::{eval::has_directed_cycle, FactId, GraphDb, NodeId};
use std::collections::BTreeSet;
use std::fmt;

/// A pre-gadget (Definition 4.3).
#[derive(Debug, Clone)]
pub struct PreGadget {
    db: GraphDb,
    t_in: NodeId,
    t_out: NodeId,
    letter: Letter,
}

/// Errors raised when constructing or using gadgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetError(pub String);

impl fmt::Display for GadgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid gadget: {}", self.0)
    }
}

impl std::error::Error for GadgetError {}

/// The completion of a pre-gadget (Definition 4.3): the database with the two
/// endpoint facts added.
#[derive(Debug, Clone)]
pub struct CompletedGadget {
    /// The completed database `D'`.
    pub db: GraphDb,
    /// The endpoint fact `F_in = s_in --a--> t_in`.
    pub f_in: FactId,
    /// The endpoint fact `F_out = s_out --a--> t_out`.
    pub f_out: FactId,
}

/// The result of mechanically verifying a gadget against a language
/// (Definition 4.9), in the spirit of the paper's companion implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GadgetReport {
    /// Whether the pre-gadget conditions hold and the condensed hypergraph of
    /// matches is an odd path between the endpoint facts.
    pub is_valid: bool,
    /// Number of matches of the language on the completion.
    pub num_matches: usize,
    /// The number of edges of the condensed odd path (the subdivision length ℓ),
    /// when the gadget is valid.
    pub path_length: Option<usize>,
    /// Human-readable explanation when the gadget is invalid.
    pub failure: Option<String>,
}

impl PreGadget {
    /// Builds a pre-gadget, checking Definition 4.3's conditions: the
    /// in-element and out-element are distinct and never occur as heads of
    /// facts.
    pub fn new(
        db: GraphDb,
        t_in: NodeId,
        t_out: NodeId,
        letter: Letter,
    ) -> Result<PreGadget, GadgetError> {
        if t_in == t_out {
            return Err(GadgetError("t_in and t_out must be distinct".into()));
        }
        for (_, fact) in db.facts() {
            if fact.target == t_in || fact.target == t_out {
                return Err(GadgetError(format!(
                    "element {} occurs as the head of a fact",
                    db.node_name(fact.target)
                )));
            }
        }
        Ok(PreGadget { db, t_in, t_out, letter })
    }

    /// The pre-gadget database `D`.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The in-element `t_in`.
    pub fn t_in(&self) -> NodeId {
        self.t_in
    }

    /// The out-element `t_out`.
    pub fn t_out(&self) -> NodeId {
        self.t_out
    }

    /// The endpoint letter `a`.
    pub fn letter(&self) -> Letter {
        self.letter
    }

    /// The completion `D'` of the pre-gadget, with the two endpoint facts.
    pub fn completion(&self) -> CompletedGadget {
        let mut db = self.db.clone();
        let s_in = db.node("__s_in");
        let s_out = db.node("__s_out");
        let f_in = db.add_fact(s_in, self.letter, self.t_in);
        let f_out = db.add_fact(s_out, self.letter, self.t_out);
        CompletedGadget { db, f_in, f_out }
    }

    /// Mechanically verifies that the pre-gadget is a gadget for `language`
    /// (Definition 4.9). The verification enumerates the matches of the
    /// language on the completion (which must be acyclic), condenses the
    /// hypergraph of matches while protecting the endpoint facts, and checks
    /// that the result is an odd path between them.
    pub fn verify(&self, language: &Language) -> GadgetReport {
        let completion = self.completion();
        if has_directed_cycle(&completion.db) {
            return GadgetReport {
                is_valid: false,
                num_matches: 0,
                path_length: None,
                failure: Some("the completed gadget has a directed cycle".into()),
            };
        }
        let Some(hypergraph) = Hypergraph::of_matches_regular(&completion.db, language) else {
            return GadgetReport {
                is_valid: false,
                num_matches: 0,
                path_length: None,
                failure: Some("match enumeration failed".into()),
            };
        };
        let num_matches = hypergraph.edges().len();
        let protected: BTreeSet<FactId> = [completion.f_in, completion.f_out].into_iter().collect();
        let condensed = hypergraph.condense(&protected);
        if condensed.is_odd_path(completion.f_in, completion.f_out) {
            GadgetReport {
                is_valid: true,
                num_matches,
                path_length: Some(condensed.edges().len()),
                failure: None,
            }
        } else {
            GadgetReport {
                is_valid: false,
                num_matches,
                path_length: None,
                failure: Some(format!(
                    "the condensed hypergraph of matches ({} vertices, {} edges) is not an odd path",
                    condensed.vertices().len(),
                    condensed.edges().len()
                )),
            }
        }
    }

    /// Encodes a directed graph with this pre-gadget (Definition 4.5): one
    /// `a`-fact `s_u → t_u` per vertex, and one fresh copy of the pre-gadget
    /// per edge `(u, v)`, identifying its in-element with `t_u` and its
    /// out-element with `t_v`.
    ///
    /// The input is an [`UndirectedGraph`]; edges are oriented from their
    /// smaller to their larger endpoint (the orientation is arbitrary, cf. the
    /// proof of Proposition 4.11).
    pub fn encode_graph(&self, graph: &UndirectedGraph) -> GraphDb {
        let mut out = GraphDb::new();
        // Vertex facts.
        let mut t_nodes: Vec<NodeId> = Vec::with_capacity(graph.num_vertices);
        for u in 0..graph.num_vertices {
            let s_u = out.node(&format!("s_{u}"));
            let t_u = out.node(&format!("t_{u}"));
            out.add_fact(s_u, self.letter, t_u);
            t_nodes.push(t_u);
        }
        // One copy of the pre-gadget per edge.
        for (edge_index, &(u, v)) in graph.edges.iter().enumerate() {
            for (_, fact) in self.db.facts() {
                let map = |node: NodeId, out: &mut GraphDb| -> NodeId {
                    if node == self.t_in {
                        t_nodes[u]
                    } else if node == self.t_out {
                        t_nodes[v]
                    } else {
                        out.node(&format!("e{edge_index}_{}", self.db.node_name(node)))
                    }
                };
                let source = map(fact.source, &mut out);
                let target = map(fact.target, &mut out);
                out.add_fact(source, fact.label, target);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use crate::reductions::subdivision_vertex_cover_number;
    use crate::rpq::{ResilienceValue, Rpq};

    #[test]
    fn pre_gadget_conditions_are_enforced() {
        // t_in occurring as a head is rejected.
        let mut db = GraphDb::new();
        let t_in = db.node("t_in");
        let t_out = db.node("t_out");
        let other = db.node("x");
        db.add_fact(other, Letter('a'), t_in);
        assert!(PreGadget::new(db.clone(), t_in, t_out, Letter('a')).is_err());
        // Distinctness is required.
        let db2 = GraphDb::new();
        let mut db2 = db2;
        let t = db2.node("t");
        assert!(PreGadget::new(db2, t, t, Letter('a')).is_err());
        // A well-formed pre-gadget is accepted.
        let mut db3 = GraphDb::new();
        let t_in = db3.node("t_in");
        let t_out = db3.node("t_out");
        let mid = db3.node("m");
        db3.add_fact(t_in, Letter('a'), mid);
        db3.add_fact(t_out, Letter('a'), mid);
        let g = PreGadget::new(db3, t_in, t_out, Letter('a')).unwrap();
        assert_eq!(g.letter(), Letter('a'));
        assert_ne!(g.t_in(), g.t_out());
    }

    #[test]
    fn completion_adds_two_endpoint_facts() {
        let gadget = library::gadget_aa();
        let completion = gadget.completion();
        assert_eq!(completion.db.num_facts(), gadget.db().num_facts() + 2);
        assert_ne!(completion.f_in, completion.f_out);
    }

    #[test]
    fn invalid_gadget_is_reported() {
        // A pre-gadget whose matches do NOT condense to an odd path for aa:
        // a single a-fact out of t_in (one match of even path length 1? no —
        // one match {F_in, g} IS an odd path of length 1; use a gadget with no
        // connection to t_out instead, which fails the path check).
        let mut db = GraphDb::new();
        let t_in = db.node("t_in");
        let t_out = db.node("t_out");
        let m = db.node("m");
        db.add_fact(t_in, Letter('a'), m);
        let _ = t_out;
        let gadget = PreGadget::new(db, t_in, t_out, Letter('a')).unwrap();
        let report = gadget.verify(&Language::parse("aa").unwrap());
        assert!(!report.is_valid);
        assert!(report.failure.is_some());
    }

    #[test]
    fn encoding_reproduces_proposition_4_1() {
        // End-to-end check of Proposition 4.11 with the aa gadget: the
        // resilience of the encoding equals vc(G) + m(ℓ−1)/2.
        let gadget = library::gadget_aa();
        let language = Language::parse("aa").unwrap();
        let report = gadget.verify(&language);
        assert!(report.is_valid);
        let ell = report.path_length.unwrap();
        assert_eq!(ell, 5);

        let query = Rpq::new(language);
        for graph in [
            UndirectedGraph::cycle(3),
            UndirectedGraph::new(4, [(0, 1), (1, 2), (2, 3)]),
            UndirectedGraph::new(3, [(0, 1)]),
        ] {
            let encoding = gadget.encode_graph(&graph);
            let resilience = resilience_exact(&query, &encoding).value;
            let expected = subdivision_vertex_cover_number(&graph, ell);
            assert_eq!(
                resilience,
                ResilienceValue::Finite(expected as u128),
                "graph with {} vertices / {} edges",
                graph.num_vertices,
                graph.num_edges()
            );
        }
    }
}
