//! Vertex-cover machinery for the hardness reductions (Section 4).
//!
//! Proposition 4.11 reduces minimum vertex cover to resilience: encode the
//! input graph by replacing each edge with a copy of a hardness gadget, and
//! the resilience of the encoding equals `k + m·(ℓ−1)/2` where `k` is the
//! vertex cover number, `m` the number of edges, and `ℓ` the (odd) length of
//! the gadget's condensed match path (Proposition 4.2). This module provides
//! exact vertex-cover solvers and the odd-subdivision arithmetic needed to
//! validate the reduction end to end on small graphs.

use std::collections::BTreeSet;

/// An undirected graph given by its number of vertices and its edge list
/// (self-loops are not allowed; duplicate edges are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    /// Number of vertices (vertices are `0..num_vertices`).
    pub num_vertices: usize,
    /// Edges as unordered pairs `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
}

impl UndirectedGraph {
    /// Builds a graph, normalizing and deduplicating the edge list.
    pub fn new(num_vertices: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set = BTreeSet::new();
        for (u, v) in edges {
            assert!(u != v, "self-loops are not allowed");
            assert!(u < num_vertices && v < num_vertices, "vertex out of range");
            set.insert((u.min(v), u.max(v)));
        }
        UndirectedGraph { num_vertices, edges: set.into_iter().collect() }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// A complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let edges = (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)));
        Self::new(n, edges)
    }

    /// A cycle on `n ≥ 3` vertices.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3);
        Self::new(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// An Erdős–Rényi style random graph with the given edge probability.
    pub fn random(n: usize, edge_probability: f64, seed: u64) -> Self {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|_| rng.gen_bool(edge_probability))
            .collect::<Vec<_>>();
        Self::new(n, edges)
    }

    /// Whether a vertex set covers every edge.
    pub fn is_vertex_cover(&self, cover: &BTreeSet<usize>) -> bool {
        self.edges.iter().all(|&(u, v)| cover.contains(&u) || cover.contains(&v))
    }

    /// The minimum vertex cover, computed exactly by branch and bound
    /// (exponential; intended for the small validation graphs).
    pub fn minimum_vertex_cover(&self) -> BTreeSet<usize> {
        let mut best: BTreeSet<usize> = (0..self.num_vertices).collect();
        let mut current = BTreeSet::new();
        self.branch(&mut current, 0, &mut best);
        best
    }

    /// The vertex cover number of the graph.
    pub fn vertex_cover_number(&self) -> usize {
        self.minimum_vertex_cover().len()
    }

    fn branch(&self, current: &mut BTreeSet<usize>, from_edge: usize, best: &mut BTreeSet<usize>) {
        if current.len() >= best.len() {
            return;
        }
        let next = (from_edge..self.edges.len())
            .find(|&i| !current.contains(&self.edges[i].0) && !current.contains(&self.edges[i].1));
        let Some(i) = next else {
            *best = current.clone();
            return;
        };
        let (u, v) = self.edges[i];
        for pick in [u, v] {
            current.insert(pick);
            self.branch(current, i + 1, best);
            current.remove(&pick);
        }
    }

    /// The `ℓ`-subdivision of the graph for an odd `ℓ`: every edge is replaced
    /// by a path of length `ℓ` through fresh vertices.
    pub fn odd_subdivision(&self, ell: usize) -> UndirectedGraph {
        assert!(ell >= 1 && ell % 2 == 1, "the subdivision length must be odd");
        let mut edges = Vec::new();
        let mut next_vertex = self.num_vertices;
        for &(u, v) in &self.edges {
            let mut previous = u;
            for step in 1..ell {
                let fresh = next_vertex;
                next_vertex += 1;
                edges.push((previous, fresh));
                previous = fresh;
                let _ = step;
            }
            edges.push((previous, v));
        }
        UndirectedGraph::new(next_vertex, edges)
    }
}

/// Proposition 4.2: the vertex cover number of an odd `ℓ`-subdivision of `G`
/// is `vc(G) + m·(ℓ−1)/2` where `m` is the number of edges of `G`.
pub fn subdivision_vertex_cover_number(graph: &UndirectedGraph, ell: usize) -> usize {
    assert!(ell % 2 == 1);
    graph.vertex_cover_number() + graph.num_edges() * (ell - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_cover_of_simple_graphs() {
        let triangle = UndirectedGraph::cycle(3);
        assert_eq!(triangle.vertex_cover_number(), 2);
        let square = UndirectedGraph::cycle(4);
        assert_eq!(square.vertex_cover_number(), 2);
        let c5 = UndirectedGraph::cycle(5);
        assert_eq!(c5.vertex_cover_number(), 3);
        let k4 = UndirectedGraph::complete(4);
        assert_eq!(k4.vertex_cover_number(), 3);
        let path = UndirectedGraph::new(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(path.vertex_cover_number(), 2);
        let empty = UndirectedGraph::new(3, []);
        assert_eq!(empty.vertex_cover_number(), 0);
        let star = UndirectedGraph::new(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(star.vertex_cover_number(), 1);
    }

    #[test]
    fn minimum_cover_is_a_cover() {
        for seed in 0..5 {
            let g = UndirectedGraph::random(7, 0.4, seed);
            let cover = g.minimum_vertex_cover();
            assert!(g.is_vertex_cover(&cover));
            // No vertex can be dropped.
            for &v in &cover {
                let mut smaller = cover.clone();
                smaller.remove(&v);
                // The smaller set may still be a cover only if it is not minimum;
                // minimality of cardinality is what the solver guarantees, so we
                // check optimality against brute force instead for small graphs.
                let _ = smaller;
            }
            // Brute-force optimality check.
            let n = g.num_vertices;
            let mut best = usize::MAX;
            for mask in 0u32..(1 << n) {
                let set: BTreeSet<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
                if g.is_vertex_cover(&set) {
                    best = best.min(set.len());
                }
            }
            assert_eq!(cover.len(), best, "seed {seed}");
        }
    }

    #[test]
    fn proposition_4_2_on_small_graphs() {
        // Check vc(G') = vc(G) + m(ℓ−1)/2 for ℓ ∈ {3, 5} by direct computation.
        let graphs = vec![
            UndirectedGraph::cycle(3),
            UndirectedGraph::cycle(4),
            UndirectedGraph::complete(4),
            UndirectedGraph::new(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]),
            UndirectedGraph::random(5, 0.5, 7),
        ];
        for g in graphs {
            for ell in [1usize, 3, 5] {
                let subdivided = g.odd_subdivision(ell);
                assert_eq!(
                    subdivided.vertex_cover_number(),
                    subdivision_vertex_cover_number(&g, ell),
                    "ℓ={ell}"
                );
            }
        }
    }

    #[test]
    fn subdivision_structure() {
        let g = UndirectedGraph::new(2, [(0, 1)]);
        let s = g.odd_subdivision(5);
        assert_eq!(s.num_vertices, 2 + 4);
        assert_eq!(s.num_edges(), 5);
        let identity = g.odd_subdivision(1);
        assert_eq!(identity.num_edges(), 1);
        assert_eq!(identity.num_vertices, 2);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_subdivision_is_rejected() {
        UndirectedGraph::cycle(3).odd_subdivision(2);
    }
}
