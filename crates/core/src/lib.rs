//! # `rpq-resilience`: resilience of Regular Path Queries
//!
//! This crate is the core contribution of the workspace: it implements the
//! algorithms, hardness machinery and complexity classifier of the paper
//! *"Resilience for Regular Path Queries: Towards a Complexity Classification"*
//! (PODS 2025).
//!
//! The **resilience** of a Boolean query `Q` on a database `D` is the minimum
//! number of facts (minimum total multiplicity, under bag semantics) to remove
//! from `D` so that `Q` no longer holds. For a regular language `L`, the query
//! `Q_L` asks for the existence of a walk labeled by a word of `L`.
//!
//! ## What is provided
//!
//! * [`rpq`] — the [`rpq::Rpq`] query type tying a language to the
//!   set/bag-semantics resilience problem.
//! * [`exact`] — exponential-time exact solvers (witness-walk branch and bound,
//!   and hitting-set search over the hypergraph of matches) used as ground
//!   truth on small instances.
//! * [`algorithms`] — the paper's polynomial algorithms:
//!   [`algorithms::local`] (Theorem 3.13), [`algorithms::chain`]
//!   (Proposition 7.6), [`algorithms::one_dangling`] (Proposition 7.9), and a
//!   [`algorithms::solve`] dispatcher.
//! * [`engine`] — the prepared-query engine ([`engine::Engine`],
//!   [`engine::PreparedQuery`], [`engine::SolveOptions`]): the query-only
//!   classification is computed once and reused across databases, with a
//!   configurable MinCut backend; the entry point for batch workloads.
//! * [`hypergraph`] — the hypergraph of matches, condensation rules and
//!   minimum hitting sets (Section 4.3).
//! * [`gadgets`] — hardness gadgets (Definitions 4.3–4.9), the graph encoding
//!   and gadget verification machinery, and the concrete gadget library for
//!   every figure of the paper.
//! * [`reductions`] — the vertex-cover reduction (Propositions 4.2 and 4.11)
//!   together with an exact vertex-cover solver for end-to-end validation.
//! * [`classify`] — the Figure 1 classification engine: given a regular
//!   language, decide (when possible) whether its resilience problem is in
//!   PTIME or NP-hard, with a machine-checkable certificate.
//!
//! ## Quick example
//!
//! ```
//! use rpq_resilience::prelude::*;
//! use rpq_automata::Language;
//!
//! // Build a tiny graph database.
//! let mut db = GraphDb::new();
//! db.add_fact_by_names("s", 'a', "u");
//! db.add_fact_by_names("u", 'x', "v");
//! db.add_fact_by_names("v", 'x', "w");
//! db.add_fact_by_names("w", 'b', "t");
//!
//! // The RPQ a x* b holds; its resilience is 1 (cut any single edge).
//! let query = Rpq::new(Language::parse("a x* b").unwrap());
//! let result = solve(&query, &db).unwrap();
//! assert_eq!(result.value, ResilienceValue::Finite(1));
//! ```

#![forbid(unsafe_code)]
pub mod algorithms;
pub mod approx;
pub mod classify;
pub mod engine;
pub mod exact;
pub mod gadgets;
pub mod hypergraph;
pub mod reductions;
pub mod router;
pub mod rpq;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::algorithms::{
        solve, solve_mirrored, solve_with, Algorithm, ResilienceError, ResilienceOutcome,
    };
    pub use crate::classify::{classify, Classification};
    pub use crate::engine::{
        Engine, IncrementalSolver, PlanReport, PreparedQuery, SolveMode, SolveOptions,
    };
    pub use crate::rpq::{ResilienceValue, Rpq, Semantics};
    pub use rpq_flow::FlowAlgorithm;
    pub use rpq_graphdb::{Fact, FactId, GraphDb, NodeId};
}

pub use rpq::{ResilienceValue, Rpq, Semantics};
pub use rpq_obs as obs;
