//! Deadline-aware tier routing with certified degradation.
//!
//! The engine has three answer tiers: the paper's polynomial flow reductions
//! (`"poly"`), the exponential ground truths (`"exact"`), and the certified
//! approximations (`"approx"`). This module turns tier choice into a
//! cost-model decision instead of a per-call flag: every prepared plan
//! carries a [`CostModel`] calibrated against the committed `BENCH_scaling` /
//! `BENCH_flow_ablation` artifacts, and
//! [`route`](crate::engine::PreparedQuery::route) compares the projected cost
//! of the planned backend against the caller's [`RouteBudget`].
//!
//! * The estimate fits (or no budget was given) → the planned backend runs
//!   and the answer is **bit-identical** to an unrouted solve.
//! * The estimate does not fit → the router degrades down a ladder of
//!   *certified* cheaper tiers: the greedy `O(log m)` approximation when the
//!   language is finite and its estimate fits, then the always-applicable
//!   [`Algorithm::TrivialBounds`] sandwich. Degraded answers always carry
//!   valid `lower ≤ RES(Q, D) ≤ upper` bounds (or are exactly `0` / `+∞`);
//!   the router never refuses a request.
//!
//! A [`Router`] additionally carries the server's overload hook: when its
//! queue-depth probe reports a ready queue at or beyond the shed threshold,
//! the effective budget is tightened so expensive solves shed to cheaper
//! tiers *before* the queue grows unboundedly.

use crate::algorithms::{Algorithm, ResilienceOutcome};
use crate::rpq::{ResilienceValue, Rpq};
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::{FactId, GraphDb};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A caller-supplied bound on how much a solve may cost. Both knobs project
/// onto one scale — estimated microseconds of solve time — and the tighter
/// one wins. The default ([`RouteBudget::UNLIMITED`]) never degrades.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteBudget {
    /// Wall-clock deadline in milliseconds: the router only runs backends
    /// whose projected cost fits inside it.
    pub deadline_ms: Option<u64>,
    /// Abstract cost budget in estimated microseconds of solve time
    /// (`deadline_ms × 1000` on the same scale), for callers that meter cost
    /// rather than latency.
    pub cost_budget_us: Option<u64>,
}

impl RouteBudget {
    /// No deadline and no cost budget: the planned backend always runs.
    pub const UNLIMITED: RouteBudget = RouteBudget { deadline_ms: None, cost_budget_us: None };

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline_ms(deadline_ms: u64) -> RouteBudget {
        RouteBudget { deadline_ms: Some(deadline_ms), ..RouteBudget::UNLIMITED }
    }

    /// A budget with only an abstract cost budget (estimated microseconds).
    pub fn with_cost_budget_us(cost_budget_us: u64) -> RouteBudget {
        RouteBudget { cost_budget_us: Some(cost_budget_us), ..RouteBudget::UNLIMITED }
    }

    /// Whether neither knob is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.cost_budget_us.is_none()
    }

    /// The single effective limit in estimated microseconds: the tighter of
    /// the two knobs, `None` when unlimited.
    pub fn limit_us(&self) -> Option<u64> {
        let deadline = self.deadline_ms.map(|ms| ms.saturating_mul(1_000));
        match (deadline, self.cost_budget_us) {
            (Some(d), Some(c)) => Some(d.min(c)),
            (Some(d), None) => Some(d),
            (None, c) => c,
        }
    }
}

/// The asymptotic shape of a backend's projected cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// `base_ns + ns_per_fact × |D|`: the polynomial reductions (the pruned
    /// product / flow network is linear in the database) and the
    /// approximations (hypergraph construction plus greedy passes).
    Linear {
        /// Fixed per-solve overhead in nanoseconds.
        base_ns: u64,
        /// Marginal cost per fact in nanoseconds.
        ns_per_fact: u64,
    },
    /// `base_ns × 2^(facts / facts_per_doubling)`: the exponential exact
    /// solvers, measured over *endogenous* facts.
    Exponential {
        /// Cost of the smallest instance in nanoseconds.
        base_ns: u64,
        /// How many additional facts double the projected cost.
        facts_per_doubling: u64,
    },
}

/// A per-plan structural cost estimate: which algorithm family the plan
/// classified into and how its solve time scales with the database, with
/// coefficients calibrated against the committed `BENCH_scaling` and
/// `BENCH_flow_ablation` artifacts (medians on the corpus generators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// The backend the model projects.
    pub algorithm: Algorithm,
    /// The projected growth class and its calibrated coefficients.
    pub class: CostClass,
}

impl CostModel {
    /// The calibrated model for a plan. Coefficients come from the committed
    /// benchmark artifacts: `BENCH_scaling` puts the Theorem 3.13 local
    /// reduction at ≈4.2 µs/fact (Dinic), the Proposition 7.6 chain
    /// reduction at ≈1.3 µs/fact and the Proposition 7.9 rewriting at
    /// ≈2.1 µs/fact; `BENCH_flow_ablation` shows Edmonds–Karp trailing the
    /// other MinCut backends by ≈8× on dense instances; the branch and bound
    /// roughly doubles every 2 facts (101 µs at 10 → 1.06 ms at 18) and the
    /// subset enumeration every fact.
    pub fn for_plan(algorithm: Algorithm, flow_backend: FlowAlgorithm) -> CostModel {
        let flow_mult = match flow_backend {
            FlowAlgorithm::EdmondsKarp => 8,
            FlowAlgorithm::Dinic | FlowAlgorithm::PushRelabel | FlowAlgorithm::Auto => 1,
        };
        let class = match algorithm {
            Algorithm::Local => {
                CostClass::Linear { base_ns: 2_000, ns_per_fact: 4_200 * flow_mult }
            }
            Algorithm::BipartiteChain => {
                CostClass::Linear { base_ns: 2_000, ns_per_fact: 1_300 * flow_mult }
            }
            Algorithm::OneDangling => {
                CostClass::Linear { base_ns: 2_000, ns_per_fact: 2_100 * flow_mult }
            }
            Algorithm::ExactBranchAndBound => {
                CostClass::Exponential { base_ns: 2_000, facts_per_doubling: 2 }
            }
            Algorithm::ExactEnumeration => {
                CostClass::Exponential { base_ns: 200, facts_per_doubling: 1 }
            }
            Algorithm::ApproxGreedy => CostClass::Linear { base_ns: 70_000, ns_per_fact: 2_000 },
            Algorithm::ApproxKDisjoint => CostClass::Linear { base_ns: 70_000, ns_per_fact: 1_500 },
            Algorithm::TrivialBounds => CostClass::Linear { base_ns: 1_000, ns_per_fact: 200 },
        };
        CostModel { algorithm, class }
    }

    /// The projected solve cost in nanoseconds for an instance with `facts`
    /// facts (endogenous facts for the exponential solvers). Saturating.
    pub fn estimate_ns(&self, facts: u64) -> u128 {
        match self.class {
            CostClass::Linear { base_ns, ns_per_fact } => {
                base_ns as u128 + ns_per_fact as u128 * facts as u128
            }
            CostClass::Exponential { base_ns, facts_per_doubling } => {
                let doublings = (facts / facts_per_doubling.max(1)).min(100) as u32;
                (base_ns as u128).saturating_mul(1u128 << doublings.min(100))
            }
        }
    }

    /// The projected solve cost for `db` in microseconds (saturating to
    /// `u64::MAX`): the exponential solvers scale over endogenous facts, the
    /// linear ones over the whole fact table (the flow network includes
    /// exogenous edges at `+∞` capacity).
    pub fn estimate_us_for(&self, db: &GraphDb) -> u64 {
        let facts = match self.class {
            CostClass::Linear { .. } => db.num_facts() as u64,
            CostClass::Exponential { .. } => db.endogenous_facts().count() as u64,
        };
        u64::try_from(self.estimate_ns(facts) / 1_000).unwrap_or(u64::MAX)
    }

    /// A stable machine-readable JSON rendering of the model, embedded in
    /// [`crate::engine::PlanReport::to_json`], e.g.
    /// `{"algorithm":"local","class":"linear","base_ns":2000,"ns_per_fact":4200}`.
    pub fn to_json(&self) -> String {
        match self.class {
            CostClass::Linear { base_ns, ns_per_fact } => format!(
                "{{\"algorithm\":\"{}\",\"class\":\"linear\",\"base_ns\":{base_ns},\
                 \"ns_per_fact\":{ns_per_fact}}}",
                self.algorithm.name()
            ),
            CostClass::Exponential { base_ns, facts_per_doubling } => format!(
                "{{\"algorithm\":\"{}\",\"class\":\"exponential\",\"base_ns\":{base_ns},\
                 \"facts_per_doubling\":{facts_per_doubling}}}",
                self.algorithm.name()
            ),
        }
    }
}

/// The result of a routed solve: the outcome itself plus the routing
/// decision — which tier answered, what the plan wanted, whether (and why)
/// the router degraded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredOutcome {
    /// The answer. When `degraded`, always certified: exact, `+∞`, or
    /// carrying valid `[lower, upper]` bounds.
    pub outcome: ResilienceOutcome,
    /// The tier that answered (`outcome.algorithm.tier()`): `"poly"`,
    /// `"exact"` or `"approx"`.
    pub tier: &'static str,
    /// The backend the plan would have run with an unlimited budget.
    pub planned: Algorithm,
    /// Whether the router fell back to a cheaper tier than planned.
    pub degraded: bool,
    /// Whether overload shedding tightened the budget this solve ran under
    /// (set even when the tightened budget still fit the planned backend).
    pub shed: bool,
    /// Why this tier answered (budget fit, degradation, overload shed).
    pub reason: String,
    /// The projected cost of the *planned* backend in microseconds.
    pub estimated_cost_us: u64,
}

/// Dispatch policy shared by every solve entry point: resolves a caller's
/// [`RouteBudget`] into an effective per-solve limit, optionally tightened
/// by a server-overload probe. The engine and CLI use
/// [`Router::default()`]; the server installs a probe reading its
/// ready-queue depth via [`Router::with_overload_probe`].
#[derive(Clone, Default)]
pub struct Router {
    shed_queue_depth: Option<u64>,
    shed_cost_budget_us: u64,
    probe: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

/// The default ready-queue depth at which an overloaded server starts
/// shedding to cheaper tiers.
pub const DEFAULT_SHED_QUEUE_DEPTH: u64 = 32;

/// The default budget (estimated microseconds) imposed on every solve while
/// the overload probe reports a queue at or beyond the shed threshold.
pub const DEFAULT_SHED_COST_BUDGET_US: u64 = 10_000;

impl Router {
    /// A router that never sheds: budgets pass through untightened.
    pub fn new() -> Router {
        Router::default()
    }

    /// Installs an overload probe (e.g. the server's ready-queue depth) with
    /// the default shed thresholds. While `probe() >=` the shed depth, every
    /// budget is tightened to at most the shed cost budget.
    pub fn with_overload_probe(self, probe: Arc<dyn Fn() -> u64 + Send + Sync>) -> Router {
        Router {
            shed_queue_depth: Some(self.shed_queue_depth.unwrap_or(DEFAULT_SHED_QUEUE_DEPTH)),
            shed_cost_budget_us: if self.shed_cost_budget_us == 0 {
                DEFAULT_SHED_COST_BUDGET_US
            } else {
                self.shed_cost_budget_us
            },
            probe: Some(probe),
        }
    }

    /// Overrides the shed thresholds (see [`Router::with_overload_probe`]).
    pub fn with_shed_thresholds(self, queue_depth: u64, cost_budget_us: u64) -> Router {
        Router {
            shed_queue_depth: Some(queue_depth),
            shed_cost_budget_us: cost_budget_us.max(1),
            probe: self.probe,
        }
    }

    /// The current reading of the overload probe (`0` without one).
    pub fn queue_depth(&self) -> u64 {
        self.probe.as_ref().map_or(0, |p| p())
    }

    /// Whether the probe currently reports overload.
    pub fn is_overloaded(&self) -> bool {
        match (self.probe.as_ref(), self.shed_queue_depth) {
            (Some(probe), Some(depth)) => probe() >= depth,
            _ => false,
        }
    }

    /// Resolves a budget into the effective per-solve limit (estimated
    /// microseconds; `None` = unlimited) and whether overload shedding
    /// tightened it.
    pub fn effective_limit_us(&self, budget: &RouteBudget) -> (Option<u64>, bool) {
        let limit = budget.limit_us();
        if self.is_overloaded() {
            let shed = self.shed_cost_budget_us.max(1);
            let tightened = limit.map_or(shed, |l| l.min(shed));
            (Some(tightened), tightened < limit.unwrap_or(u64::MAX))
        } else {
            (limit, false)
        }
    }
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Router")
            .field("shed_queue_depth", &self.shed_queue_depth)
            .field("shed_cost_budget_us", &self.shed_cost_budget_us)
            .field("probe", &self.probe.as_ref().map(|_| "…"))
            .finish()
    }
}

/// The always-applicable certified sandwich of last resort
/// ([`Algorithm::TrivialBounds`]), in linear time:
///
/// * the query does not hold → exactly `0` (bounds `[0, 0]`, the empty set
///   as witness);
/// * the query survives deleting every endogenous fact → exactly `+∞`;
/// * otherwise → `[min endogenous fact cost, cost(all endogenous facts)]`
///   with the full endogenous fact set as the witness achieving the upper
///   bound.
pub(crate) fn trivial_bounds(rpq: &Rpq, db: &GraphDb, want_cut: bool) -> ResilienceOutcome {
    if !rpq.holds_on(db) {
        return ResilienceOutcome {
            value: ResilienceValue::Finite(0),
            algorithm: Algorithm::TrivialBounds,
            contingency_set: want_cut.then(Vec::new),
            bounds: Some((0, 0)),
        };
    }
    let all: BTreeSet<FactId> = db.endogenous_facts().collect();
    if !rpq.is_contingency_set(db, &all) {
        // Even the full endogenous deletion leaves a match: no contingency
        // set exists (matches the exact backends' +∞ convention).
        return ResilienceOutcome::new(ResilienceValue::Infinite, Algorithm::TrivialBounds, None);
    }
    // The query holds, so every contingency set is nonempty and costs at
    // least the cheapest endogenous fact; deleting everything endogenous
    // breaks it, so its total cost is an upper bound.
    let lower =
        all.iter().map(|&f| rpq.semantics().fact_cost(db, f) as u128).min().unwrap_or(1).max(1);
    let upper = rpq.cost(db, &all);
    debug_assert!(lower <= upper);
    ResilienceOutcome {
        value: ResilienceValue::Finite(upper),
        algorithm: Algorithm::TrivialBounds,
        contingency_set: want_cut.then(|| all.into_iter().collect()),
        bounds: Some((lower, upper)),
    }
}

// Routers are shared across server worker threads and batch workers.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Router>();
    assert_send_sync::<RouteBudget>();
    assert_send_sync::<TieredOutcome>();
    assert_send_sync::<CostModel>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn budget_limits_take_the_tighter_knob() {
        assert_eq!(RouteBudget::UNLIMITED.limit_us(), None);
        assert!(RouteBudget::UNLIMITED.is_unlimited());
        assert_eq!(RouteBudget::with_deadline_ms(5).limit_us(), Some(5_000));
        assert_eq!(RouteBudget::with_cost_budget_us(700).limit_us(), Some(700));
        let both = RouteBudget { deadline_ms: Some(5), cost_budget_us: Some(700) };
        assert_eq!(both.limit_us(), Some(700));
        let both = RouteBudget { deadline_ms: Some(5), cost_budget_us: Some(9_000) };
        assert_eq!(both.limit_us(), Some(5_000));
        // Deadlines near u64::MAX must not overflow the ms → µs conversion.
        assert_eq!(RouteBudget::with_deadline_ms(u64::MAX).limit_us(), Some(u64::MAX));
    }

    #[test]
    fn cost_models_scale_with_the_calibrated_coefficients() {
        let local = CostModel::for_plan(Algorithm::Local, FlowAlgorithm::Dinic);
        assert_eq!(local.estimate_ns(1_000), 2_000 + 4_200 * 1_000);
        // Edmonds–Karp carries the measured ≈8× ablation penalty.
        let ek = CostModel::for_plan(Algorithm::Local, FlowAlgorithm::EdmondsKarp);
        assert!(ek.estimate_ns(1_000) > 8 * 4_200 * 1_000 / 2);
        // The exponential models saturate instead of overflowing.
        let exact = CostModel::for_plan(Algorithm::ExactBranchAndBound, FlowAlgorithm::Dinic);
        assert!(exact.estimate_ns(10) < exact.estimate_ns(18));
        assert!(exact.estimate_ns(10_000) >= exact.estimate_ns(200));
        // JSON renderings carry the class and its coefficients.
        assert!(local.to_json().contains("\"class\":\"linear\""));
        assert!(exact.to_json().contains("\"facts_per_doubling\":2"));
    }

    #[test]
    fn overload_probes_tighten_budgets_at_the_shed_threshold() {
        let depth = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&depth);
        let router = Router::new()
            .with_overload_probe(Arc::new(move || probe.load(Ordering::Relaxed)))
            .with_shed_thresholds(4, 2_500);
        // Below the threshold: budgets pass through untouched.
        assert_eq!(router.effective_limit_us(&RouteBudget::UNLIMITED), (None, false));
        assert_eq!(
            router.effective_limit_us(&RouteBudget::with_deadline_ms(100)),
            (Some(100_000), false)
        );
        // At the threshold: everything is clamped to the shed budget.
        depth.store(4, Ordering::Relaxed);
        assert!(router.is_overloaded());
        assert_eq!(router.effective_limit_us(&RouteBudget::UNLIMITED), (Some(2_500), true));
        assert_eq!(
            router.effective_limit_us(&RouteBudget::with_deadline_ms(100)),
            (Some(2_500), true)
        );
        // Budgets already tighter than the shed budget are not loosened.
        assert_eq!(
            router.effective_limit_us(&RouteBudget::with_cost_budget_us(300)),
            (Some(300), false)
        );
        // A router without a probe never sheds.
        assert!(!Router::new().is_overloaded());
        assert_eq!(Router::new().queue_depth(), 0);
    }
}
