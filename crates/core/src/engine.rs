//! The prepared-query engine: plan once, solve many.
//!
//! The tractable cases of the paper (Theorem 3.13, Propositions 7.6 and 7.9)
//! all hinge on a **query-only** analysis — the infix-free sublanguage, the
//! ε-check, the locality test and its RO-εNFA, the finiteness / bipartite
//! chain analysis, the one-dangling decomposition — that is independent of
//! the database. [`Engine::prepare`] runs that analysis exactly once and
//! caches the result in a [`PreparedQuery`]; [`PreparedQuery::solve`] and
//! [`PreparedQuery::solve_batch`] then only perform the per-database half of
//! the chosen reduction (building and cutting one flow network, or running
//! the exact/approximate solvers). Server-style workloads that evaluate one
//! query over many databases skip all reclassification:
//!
//! ```
//! use rpq_resilience::engine::Engine;
//! use rpq_resilience::rpq::Rpq;
//! use rpq_graphdb::GraphDb;
//!
//! let engine = Engine::new();
//! let prepared = engine.prepare(&Rpq::parse("a x* b").unwrap()).unwrap();
//! println!("{}", prepared.plan()); // which algorithm, and why
//!
//! let mut db = GraphDb::new();
//! db.add_fact_by_names("s", 'a', "u");
//! db.add_fact_by_names("u", 'x', "v");
//! db.add_fact_by_names("v", 'b', "t");
//! let outcome = prepared.solve(&db).unwrap();
//! assert_eq!(outcome.value.finite(), Some(1));
//! ```
//!
//! [`SolveOptions`] configures the engine: every MinCut backend of
//! [`rpq_flow`] ([`FlowAlgorithm`]) is selectable end to end, the exponential
//! exact fallback can be disabled for latency-sensitive callers, the
//! subset-enumeration oracle gets a typed size limit, and contingency-set
//! extraction can be switched off when only the value is needed.
//!
//! The legacy entry points [`crate::algorithms::solve`] and
//! [`crate::algorithms::solve_with`] are thin wrappers over a default
//! `Engine` and return identical outcomes.

use crate::algorithms::chain::ChainPlan;
use crate::algorithms::one_dangling::OneDanglingPlan;
use crate::algorithms::{
    incremental, local, normalize_approximation, Algorithm, ResilienceError, ResilienceOutcome,
    SolveScratch,
};
use crate::approx::{resilience_greedy, resilience_k_approximation};
use crate::exact::{
    resilience_by_enumeration_limited, resilience_exact, DEFAULT_ENUMERATION_LIMIT,
    MAX_ENUMERATION_LIMIT,
};
use crate::router::{trivial_bounds, CostModel, RouteBudget, Router, TieredOutcome};
use crate::rpq::{ResilienceValue, Rpq};
use rpq_automata::local::is_local;
use rpq_automata::ro_enfa::RoEnfa;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::{FactChange, GraphDb};
use rpq_obs::Trace;
use std::fmt;
use std::sync::Mutex;

/// Configuration of a resilience [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// The MinCut backend used by every flow-based reduction (Theorem 3.13,
    /// Propositions 7.6 and 7.9).
    pub flow_backend: FlowAlgorithm,
    /// Whether queries outside every known tractable family may fall back to
    /// the exponential exact branch and bound. When `false`, preparing such a
    /// query fails with [`ResilienceError::ExactFallbackDisabled`] instead of
    /// arming an exponential solver.
    pub exact_fallback: bool,
    /// The fact limit of the [`Algorithm::ExactEnumeration`] oracle: larger
    /// databases yield [`ResilienceError::InstanceTooLarge`] instead of a
    /// `2^facts` enumeration.
    pub enumeration_limit: usize,
    /// Whether to extract an optimal contingency set alongside the value
    /// (when the chosen algorithm can produce one). Disable for value-only
    /// batch workloads.
    pub want_cut: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            flow_backend: FlowAlgorithm::default(),
            exact_fallback: true,
            enumeration_limit: DEFAULT_ENUMERATION_LIMIT,
            want_cut: true,
        }
    }
}

/// A resilience solver with fixed [`SolveOptions`]. The engine is stateless
/// besides its options; [`Engine::prepare`] produces the per-query state.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    options: SolveOptions,
}

/// The cached per-query strategy: everything derivable from the language
/// alone, so that solving is purely per-database work.
#[derive(Debug, Clone)]
enum Strategy {
    /// `ε ∈ IF(L)`: the resilience is `+∞` on every database. The tag records
    /// which algorithm family reported it (for outcome compatibility).
    EpsilonInfinite { tag: Algorithm },
    /// Theorem 3.13 with a prepared RO-εNFA.
    Local { ro: RoEnfa },
    /// Proposition 7.6 with a prepared chain plan.
    Chain { plan: ChainPlan },
    /// Proposition 7.9 with a prepared (normalized) decomposition. When
    /// `fallback_to_exact` is set (automatic dispatch), databases with
    /// exogenous facts are routed to the exact solver instead of erroring.
    OneDangling { plan: OneDanglingPlan, fallback_to_exact: bool },
    /// Exponential branch and bound over witness walks.
    ExactBranchAndBound,
    /// Subset enumeration (size-limited reference oracle).
    ExactEnumeration,
    /// Certified greedy `O(log m)`-approximation.
    ApproxGreedy,
    /// Certified disjoint-matches `k`-approximation.
    ApproxKDisjoint,
    /// Always-applicable linear-time certified sandwich (the router's final
    /// degradation tier; see [`crate::router`]).
    TrivialBounds,
}

/// A human- and machine-readable report of a prepared query's plan: which
/// algorithm was chosen and why (see [`PreparedQuery::plan`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// The algorithm the prepared query will run.
    pub algorithm: Algorithm,
    /// Why this algorithm applies (or was forced).
    pub reason: String,
    /// A rendering of the infix-free sublanguage the analysis worked on.
    pub infix_free: String,
    /// Whether the algorithm was forced by the caller rather than chosen by
    /// the classification (see [`Engine::prepare_with`]).
    pub forced: bool,
    /// The structural cost estimate of the chosen backend: growth class and
    /// coefficients calibrated against the committed benchmark artifacts.
    /// [`CostModel::estimate_us_for`] projects it onto a concrete database;
    /// the router compares that projection against the caller's budget.
    pub cost: CostModel,
}

impl PlanReport {
    /// A stable machine-readable JSON rendering of the report, e.g.
    /// `{"algorithm":"local","reason":"…","infix_free":"…","forced":false,"cost":{…}}`.
    /// Used by server front ends; the output is always a well-formed JSON
    /// object with exactly these five keys.
    pub fn to_json(&self) -> String {
        fn escape(s: &str, out: &mut String) {
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
        }
        let mut out = String::from("{\"algorithm\":\"");
        escape(self.algorithm.name(), &mut out);
        out.push_str("\",\"reason\":\"");
        escape(&self.reason, &mut out);
        out.push_str("\",\"infix_free\":\"");
        escape(&self.infix_free, &mut out);
        out.push_str("\",\"forced\":");
        out.push_str(if self.forced { "true" } else { "false" });
        out.push_str(",\"cost\":");
        out.push_str(&self.cost.to_json());
        out.push('}');
        out
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}: {} [IF(L) = {}]",
            self.algorithm,
            if self.forced { " (forced)" } else { "" },
            self.reason,
            self.infix_free
        )
    }
}

/// An upper bound on the number of [`SolveScratch`] buffers a plan retains:
/// enough for any realistic worker count, small enough that a burst of
/// threads cannot pin unbounded memory to a cached plan.
const MAX_POOLED_SCRATCH: usize = 64;

/// A pool of [`SolveScratch`] buffers owned by a [`PreparedQuery`], so that
/// repeated solves (and each worker thread of a parallel batch) reuse warm
/// flow buffers instead of reallocating them per database. Cloned plans start
/// with a fresh, empty pool.
#[derive(Debug, Default)]
struct ScratchPool(Mutex<Vec<SolveScratch>>);

impl ScratchPool {
    /// Checks a scratch out of the pool (a fresh one when the pool is empty).
    fn take(&self) -> SolveScratch {
        match self.0.lock() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            Err(_) => SolveScratch::new(),
        }
    }

    /// Returns a scratch to the pool for the next solve.
    fn put(&self, scratch: SolveScratch) {
        if let Ok(mut pool) = self.0.lock() {
            if pool.len() < MAX_POOLED_SCRATCH {
                pool.push(scratch);
            }
        }
    }
}

/// How a [`PreparedQuery::solve_incremental`] call was satisfied: by patching
/// the retained flow network of the previous snapshot, or by a full
/// per-database build (first solve, unsupported plan family, oversized or
/// missing delta, fallback guards). Surfaced so callers — the store's
/// `stats`, the benchmarks, the tests — can tell the paths apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMode {
    /// The retained network was patched and the min-cut warm-started.
    Incremental,
    /// The solve rebuilt from the database (equivalent to a fresh
    /// [`PreparedQuery::solve`]).
    Full,
}

/// Drives [`PreparedQuery::solve_incremental`]: owns the [`SolveScratch`]
/// whose retained flow network survives between solves. A dedicated owner —
/// rather than the plan's pool — because pooled scratches are clobbered by
/// ordinary solves, which would silently invalidate the retained per-edge
/// flows. One solver tracks one database timeline; interleaving snapshots of
/// unrelated databases through a single solver stays correct (the lineage
/// guards force full rebuilds) but forfeits the incremental speedup.
#[derive(Debug, Default)]
pub struct IncrementalSolver {
    scratch: SolveScratch,
}

impl IncrementalSolver {
    /// A fresh solver with no retained state.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::default()
    }

    /// Verifies the retained incremental state against the flow network it
    /// describes: capacity bounds per edge, conservation at every interior
    /// vertex, and source/target net flow matching the recorded value.
    /// `Ok(())` when nothing is retained yet (fresh solver, or a plan that
    /// fell back to full solves). Debug builds run the same walk after every
    /// incremental resume; tests call this between churn rounds.
    pub fn check_consistency(&self) -> Result<(), String> {
        crate::algorithms::incremental::check_consistency(&self.scratch)
    }
}

/// A query whose full plan (classification, automata, decompositions, chosen
/// algorithm) has been computed once by [`Engine::prepare`]; solving is pure
/// per-database work over pooled [`SolveScratch`] buffers.
#[derive(Debug)]
pub struct PreparedQuery {
    rpq: Rpq,
    options: SolveOptions,
    strategy: Strategy,
    report: PlanReport,
    scratch: ScratchPool,
}

impl Clone for PreparedQuery {
    fn clone(&self) -> PreparedQuery {
        PreparedQuery {
            rpq: self.rpq.clone(),
            options: self.options,
            strategy: self.strategy.clone(),
            report: self.report.clone(),
            // Scratch buffers are per-plan working memory, not plan state.
            scratch: ScratchPool::default(),
        }
    }
}

impl Engine {
    /// An engine with default options (Dinic, exact fallback enabled,
    /// enumeration limit 24, contingency sets extracted).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine with explicit options.
    pub fn with_options(options: SolveOptions) -> Engine {
        Engine { options }
    }

    /// The engine's options.
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// Runs the full query-only analysis and caches the resulting plan.
    /// Picks the best applicable algorithm for the query's infix-free
    /// sublanguage, in the same order as the legacy `algorithms::solve`:
    ///
    /// 1. `ε ∈ IF(L)` → the resilience is `+∞` on every database;
    /// 2. `IF(L)` local → Theorem 3.13;
    /// 3. `IF(L)` a bipartite chain language → Proposition 7.6;
    /// 4. `IF(L)` one-dangling → Proposition 7.9 (with a per-database exact
    ///    fallback for exogenous facts, which the rewriting does not support);
    /// 5. otherwise → exponential exact branch and bound, unless
    ///    [`SolveOptions::exact_fallback`] is disabled.
    pub fn prepare(&self, rpq: &Rpq) -> Result<PreparedQuery, ResilienceError> {
        self.prepare_traced(rpq, &mut Trace::disabled())
    }

    /// [`Engine::prepare`] with phase tracing: when `trace` is enabled the
    /// analysis records `canonicalize` (infix-free sublanguage derivation),
    /// `classify` (ε-check and locality test) and `plan` (automaton /
    /// decomposition construction) spans. A disabled trace makes this
    /// identical to [`Engine::prepare`].
    pub fn prepare_traced(
        &self,
        rpq: &Rpq,
        trace: &mut Trace,
    ) -> Result<PreparedQuery, ResilienceError> {
        let canon_timer = trace.begin();
        let if_language = rpq.infix_free_language();
        let infix_free = if_language.description().to_string();
        trace.end(canon_timer, "canonicalize");
        let prepared = |strategy: Strategy, algorithm: Algorithm, reason: String| PreparedQuery {
            rpq: rpq.clone(),
            options: self.options,
            strategy,
            report: PlanReport {
                algorithm,
                reason,
                infix_free: infix_free.clone(),
                forced: false,
                cost: CostModel::for_plan(algorithm, self.options.flow_backend),
            },
            scratch: ScratchPool::default(),
        };

        let classify_timer = trace.begin();
        let has_epsilon = if_language.contains_epsilon();
        let local = !has_epsilon && is_local(&if_language);
        trace.end(classify_timer, "classify");
        if has_epsilon {
            return Ok(prepared(
                Strategy::EpsilonInfinite { tag: Algorithm::Local },
                Algorithm::Local,
                "ε ∈ IF(L): the query holds on every sub-database, resilience is +∞".to_string(),
            ));
        }
        let plan_timer = trace.begin();
        if local {
            let ro = RoEnfa::for_local_language(&if_language)?;
            trace.end(plan_timer, "plan");
            return Ok(prepared(
                Strategy::Local { ro },
                Algorithm::Local,
                "IF(L) is a local language: RO-εNFA product reduction to MinCut (Theorem 3.13)"
                    .to_string(),
            ));
        }
        match ChainPlan::from_infix_free(&if_language, rpq.language()) {
            Ok(plan) => {
                let reason = format!(
                    "IF(L) is a bipartite chain language ({} words): MinCut reduction \
                     (Proposition 7.6)",
                    plan.num_words()
                );
                trace.end(plan_timer, "plan");
                return Ok(prepared(Strategy::Chain { plan }, Algorithm::BipartiteChain, reason));
            }
            Err(ResilienceError::NotApplicable { .. }) => {}
            Err(e) => return Err(e),
        }
        match OneDanglingPlan::from_infix_free(&if_language, rpq.language()) {
            Ok(plan) => {
                let reason = format!(
                    "IF(L) is one-dangling (dangling word {}): rewriting to a local instance \
                     over extended bag semantics (Proposition 7.9)",
                    plan.dangling_word()
                );
                trace.end(plan_timer, "plan");
                return Ok(prepared(
                    Strategy::OneDangling { plan, fallback_to_exact: true },
                    Algorithm::OneDangling,
                    reason,
                ));
            }
            Err(ResilienceError::NotApplicable { .. }) => {}
            Err(e) => return Err(e),
        }
        if !self.options.exact_fallback {
            return Err(ResilienceError::ExactFallbackDisabled {
                query: rpq.language().to_string(),
            });
        }
        trace.end(plan_timer, "plan");
        Ok(prepared(
            Strategy::ExactBranchAndBound,
            Algorithm::ExactBranchAndBound,
            "IF(L) escapes every known tractable family (the problem is NP-hard for every \
             language known to do so, Sections 4–6): exponential branch and bound"
                .to_string(),
        ))
    }

    /// Prepares a query with an explicitly chosen algorithm, failing with
    /// [`ResilienceError::NotApplicable`] when the language does not qualify
    /// (mirrors the legacy `algorithms::solve_with`).
    pub fn prepare_with(
        &self,
        algorithm: Algorithm,
        rpq: &Rpq,
    ) -> Result<PreparedQuery, ResilienceError> {
        let if_language = rpq.infix_free_language();
        let prepared = |strategy: Strategy| PreparedQuery {
            rpq: rpq.clone(),
            options: self.options,
            strategy,
            report: PlanReport {
                algorithm,
                reason: format!("algorithm `{algorithm}` requested by the caller"),
                infix_free: if_language.description().to_string(),
                forced: true,
                cost: CostModel::for_plan(algorithm, self.options.flow_backend),
            },
            scratch: ScratchPool::default(),
        };
        let strategy = match algorithm {
            Algorithm::Local => {
                if !is_local(&if_language) {
                    return Err(ResilienceError::NotApplicable {
                        algorithm,
                        reason: format!("IF({}) is not a local language", rpq.language()),
                    });
                }
                if if_language.contains_epsilon() {
                    Strategy::EpsilonInfinite { tag: Algorithm::Local }
                } else {
                    Strategy::Local { ro: RoEnfa::for_local_language(&if_language)? }
                }
            }
            Algorithm::BipartiteChain => {
                let plan = ChainPlan::from_infix_free(&if_language, rpq.language())?;
                Strategy::Chain { plan }
            }
            Algorithm::OneDangling => {
                let plan = OneDanglingPlan::from_infix_free(&if_language, rpq.language())?;
                Strategy::OneDangling { plan, fallback_to_exact: false }
            }
            Algorithm::ExactBranchAndBound => Strategy::ExactBranchAndBound,
            Algorithm::ExactEnumeration => Strategy::ExactEnumeration,
            Algorithm::ApproxGreedy => Strategy::ApproxGreedy,
            Algorithm::ApproxKDisjoint => Strategy::ApproxKDisjoint,
            Algorithm::TrivialBounds => Strategy::TrivialBounds,
        };
        Ok(prepared(strategy))
    }

    /// Prepares and solves in one call (one-shot convenience; prefer
    /// [`Engine::prepare`] + [`PreparedQuery::solve`] for batch workloads).
    pub fn solve(&self, rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
        self.prepare(rpq)?.solve(db)
    }

    /// Prepares with an explicit algorithm and solves in one call.
    pub fn solve_with(
        &self,
        algorithm: Algorithm,
        rpq: &Rpq,
        db: &GraphDb,
    ) -> Result<ResilienceOutcome, ResilienceError> {
        self.prepare_with(algorithm, rpq)?.solve(db)
    }
}

impl PreparedQuery {
    /// The query this plan was prepared for.
    pub fn rpq(&self) -> &Rpq {
        &self.rpq
    }

    /// The options the plan was prepared under.
    pub fn options(&self) -> &SolveOptions {
        &self.options
    }

    /// The plan report: which algorithm will run, and why.
    pub fn plan(&self) -> &PlanReport {
        &self.report
    }

    /// Solves one database using the cached plan: no language analysis is
    /// re-derived. Returns outcomes identical to the legacy
    /// `algorithms::solve` / `solve_with` on the same query and database.
    pub fn solve(&self, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
        self.solve_with_cut(db, self.options.want_cut)
    }

    /// Solves one database with an explicit per-call choice of contingency-set
    /// extraction, overriding [`SolveOptions::want_cut`]. Whether a witness is
    /// wanted is a solve-time flag, not a plan input: one cached
    /// `PreparedQuery` serves both value-only and with-cut callers (the
    /// server's `QueryCache` relies on this to keep one entry per language).
    pub fn solve_with_cut(
        &self,
        db: &GraphDb,
        want_cut: bool,
    ) -> Result<ResilienceOutcome, ResilienceError> {
        self.solve_with_cut_traced(db, want_cut, &mut Trace::disabled())
    }

    /// [`PreparedQuery::solve_with_cut`] with phase tracing: when `trace` is
    /// enabled the solve records per-phase spans (`product_build`,
    /// `csr_freeze`, the flow backend, `cut_extract`, `witness_extract`, …).
    /// A disabled trace skips every clock read, making this identical to
    /// [`PreparedQuery::solve_with_cut`].
    pub fn solve_with_cut_traced(
        &self,
        db: &GraphDb,
        want_cut: bool,
        trace: &mut Trace,
    ) -> Result<ResilienceOutcome, ResilienceError> {
        // Every solve dispatches through the router; an unlimited budget
        // always runs the planned backend, so the answer is bit-identical
        // to pre-router behavior.
        self.route_with_cut_traced(db, want_cut, &RouteBudget::UNLIMITED, &Router::new(), trace)
            .map(|tiered| tiered.outcome)
    }

    /// Routes one solve under the caller's [`RouteBudget`] with the plan's
    /// default contingency-set choice and a shed-free [`Router`]: the planned
    /// backend runs when its projected cost fits (bit-identical to
    /// [`PreparedQuery::solve`]); otherwise the router degrades to a cheaper
    /// *certified* tier instead of blowing the budget (see [`crate::router`]).
    pub fn route(
        &self,
        db: &GraphDb,
        budget: &RouteBudget,
    ) -> Result<TieredOutcome, ResilienceError> {
        self.route_with_cut(db, self.options.want_cut, budget, &Router::new())
    }

    /// [`PreparedQuery::route`] with explicit contingency-set choice and
    /// router (the server threads its overload-probing router through here).
    pub fn route_with_cut(
        &self,
        db: &GraphDb,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
    ) -> Result<TieredOutcome, ResilienceError> {
        self.route_with_cut_traced(db, want_cut, budget, router, &mut Trace::disabled())
    }

    /// [`PreparedQuery::route_with_cut`] with phase tracing.
    pub fn route_with_cut_traced(
        &self,
        db: &GraphDb,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
        trace: &mut Trace,
    ) -> Result<TieredOutcome, ResilienceError> {
        let mut scratch = self.scratch.take();
        let result = self.route_using(db, want_cut, budget, router, &mut scratch, trace);
        self.scratch.put(scratch);
        result
    }

    /// The routing core every solve entry point funnels through: projects the
    /// planned backend's cost onto `db`, resolves the effective budget
    /// (overload shedding included), and either runs the plan or degrades
    /// down the certified ladder (greedy bounds, then trivial bounds). Never
    /// refuses: a budget too small for any solver still gets the linear-time
    /// trivial sandwich.
    fn route_using(
        &self,
        db: &GraphDb,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
        scratch: &mut SolveScratch,
        trace: &mut Trace,
    ) -> Result<TieredOutcome, ResilienceError> {
        let planned = self.report.algorithm;
        // ε ∈ IF(L) plans answer in constant time whatever the model says.
        let estimated = match &self.strategy {
            Strategy::EpsilonInfinite { .. } => 0,
            _ => self.report.cost.estimate_us_for(db),
        };
        let (limit, shed) = router.effective_limit_us(budget);
        let fits = limit.is_none_or(|l| estimated <= l);
        if fits {
            let outcome = self.solve_with_cut_using(db, want_cut, scratch, trace)?;
            let reason = match limit {
                None => "no deadline or cost budget: planned backend ran".to_string(),
                Some(l) => format!(
                    "estimated {estimated}µs fits the {l}µs budget{}",
                    if shed { " (overload-shed)" } else { "" }
                ),
            };
            return Ok(TieredOutcome {
                tier: outcome.algorithm.tier(),
                outcome,
                planned,
                degraded: false,
                shed,
                reason,
                estimated_cost_us: estimated,
            });
        }
        // lint: allow(panic-freedom, !fits implies the limit is present)
        let limit_us = limit.expect("a budget the estimate exceeds must be finite");
        Ok(self.degrade_using(db, want_cut, limit_us, shed, estimated, trace))
    }

    /// The certified degradation ladder shared by the single-solve, batch and
    /// incremental routes: the greedy `O(log m)` bounds when the language is
    /// finite and the approximation itself fits, else the always-applicable
    /// linear-time trivial sandwich. Infallible — the router never refuses.
    fn degrade_using(
        &self,
        db: &GraphDb,
        want_cut: bool,
        limit_us: u64,
        shed: bool,
        estimated: u64,
        trace: &mut Trace,
    ) -> TieredOutcome {
        let planned = self.report.algorithm;
        let shed_note = if shed { " under overload shedding" } else { "" };
        // Rung 1: certified greedy bounds, when the language is finite and
        // the approximation itself fits the budget.
        if !matches!(
            self.strategy,
            Strategy::ApproxGreedy | Strategy::ApproxKDisjoint | Strategy::TrivialBounds
        ) {
            let greedy = CostModel::for_plan(Algorithm::ApproxGreedy, self.options.flow_backend);
            if greedy.estimate_us_for(db) <= limit_us {
                let timer = trace.begin();
                let result = normalize_approximation(
                    Algorithm::ApproxGreedy,
                    resilience_greedy(&self.rpq, db),
                )
                .map(|o| strip_cut(o, want_cut));
                trace.end(timer, "approx_solve");
                // An infinite language is NotApplicable here; fall through
                // to the always-applicable trivial sandwich instead.
                if let Ok(outcome) = result {
                    debug_assert!(outcome.bounds.is_some() || outcome.value.is_infinite());
                    return TieredOutcome {
                        tier: outcome.algorithm.tier(),
                        outcome,
                        planned,
                        degraded: true,
                        shed,
                        reason: format!(
                            "planned `{planned}` estimated at {estimated}µs exceeds the \
                             {limit_us}µs budget{shed_note}: degraded to certified greedy bounds"
                        ),
                        estimated_cost_us: estimated,
                    };
                }
            }
        }
        // Rung 2: the linear-time trivial sandwich — always applicable.
        let timer = trace.begin();
        let outcome = trivial_bounds(&self.rpq, db, want_cut);
        trace.end(timer, "trivial_bounds");
        debug_assert!(outcome.bounds.is_some() || outcome.value.is_infinite());
        TieredOutcome {
            tier: outcome.algorithm.tier(),
            outcome,
            planned,
            degraded: true,
            shed,
            reason: format!(
                "planned `{planned}` estimated at {estimated}µs exceeds the {limit_us}µs \
                 budget{shed_note}: degraded to the trivial certified sandwich"
            ),
            estimated_cost_us: estimated,
        }
    }

    /// [`PreparedQuery::solve_with_cut`] over an explicit scratch, so batch
    /// paths (and each worker thread of a parallel batch) can reuse one warm
    /// scratch across all their databases instead of round-tripping the pool
    /// per solve.
    fn solve_with_cut_using(
        &self,
        db: &GraphDb,
        want_cut: bool,
        scratch: &mut SolveScratch,
        trace: &mut Trace,
    ) -> Result<ResilienceOutcome, ResilienceError> {
        let options = &self.options;
        match &self.strategy {
            Strategy::EpsilonInfinite { tag } => {
                Ok(ResilienceOutcome::new(ResilienceValue::Infinite, *tag, None))
            }
            Strategy::Local { ro } => Ok(local::solve_prepared(
                ro,
                &self.rpq,
                db,
                options.flow_backend,
                want_cut,
                scratch,
                trace,
            )),
            Strategy::Chain { plan } => {
                Ok(plan.solve(&self.rpq, db, options.flow_backend, want_cut, scratch, trace))
            }
            Strategy::OneDangling { plan, fallback_to_exact } => {
                if db.has_exogenous_facts() {
                    // The κ-offset rewriting assumes finite fact weights
                    // (Proposition 7.9): route around it or report why not.
                    if !fallback_to_exact {
                        return plan.solve(
                            &self.rpq,
                            db,
                            options.flow_backend,
                            want_cut,
                            scratch,
                            trace,
                        );
                    }
                    if !options.exact_fallback {
                        return Err(ResilienceError::ExactFallbackDisabled {
                            query: self.rpq.language().to_string(),
                        });
                    }
                    return Ok(self.solve_exact_branch_and_bound(db, want_cut, trace));
                }
                plan.solve(&self.rpq, db, options.flow_backend, want_cut, scratch, trace)
            }
            Strategy::ExactBranchAndBound => {
                Ok(self.solve_exact_branch_and_bound(db, want_cut, trace))
            }
            Strategy::ExactEnumeration => {
                // Clamp so the reported limit matches what was enforced.
                let limit = options.enumeration_limit.min(MAX_ENUMERATION_LIMIT);
                let timer = trace.begin();
                let outcome = match resilience_by_enumeration_limited(&self.rpq, db, limit) {
                    Some(value) => {
                        Ok(ResilienceOutcome::new(value, Algorithm::ExactEnumeration, None))
                    }
                    None => Err(ResilienceError::InstanceTooLarge {
                        facts: db.endogenous_facts().count(),
                        limit,
                    }),
                };
                trace.end(timer, "enumeration");
                outcome
            }
            Strategy::ApproxGreedy => {
                let timer = trace.begin();
                let outcome = normalize_approximation(
                    Algorithm::ApproxGreedy,
                    resilience_greedy(&self.rpq, db),
                )
                .map(|o| strip_cut(o, want_cut));
                trace.end(timer, "approx_solve");
                outcome
            }
            Strategy::ApproxKDisjoint => {
                let timer = trace.begin();
                let outcome = normalize_approximation(
                    Algorithm::ApproxKDisjoint,
                    resilience_k_approximation(&self.rpq, db),
                )
                .map(|o| strip_cut(o, want_cut));
                trace.end(timer, "approx_solve");
                outcome
            }
            Strategy::TrivialBounds => {
                let timer = trace.begin();
                let outcome = trivial_bounds(&self.rpq, db, want_cut);
                trace.end(timer, "trivial_bounds");
                Ok(outcome)
            }
        }
    }

    /// Solves every database of a batch with the cached plan, in order. Each
    /// database gets its own result; one failure does not abort the batch.
    /// One scratch is checked out for the whole batch, so after the first
    /// (warm-up) database the flow core allocates nothing.
    pub fn solve_batch(&self, dbs: &[GraphDb]) -> Vec<Result<ResilienceOutcome, ResilienceError>> {
        self.route_batch(dbs, &RouteBudget::UNLIMITED, &Router::new())
            .into_iter()
            .map(|r| r.map(|tiered| tiered.outcome))
            .collect()
    }

    /// [`PreparedQuery::solve_batch`] under a [`RouteBudget`]: the budget is
    /// applied to every database of the batch independently (each database
    /// gets its own cost projection and, if needed, its own certified
    /// degradation), so one oversized database degrades without dragging its
    /// siblings down a tier.
    pub fn route_batch(
        &self,
        dbs: &[GraphDb],
        budget: &RouteBudget,
        router: &Router,
    ) -> Vec<Result<TieredOutcome, ResilienceError>> {
        let mut scratch = self.scratch.take();
        let mut trace = Trace::disabled();
        let results = dbs
            .iter()
            .map(|db| {
                self.route_using(
                    db,
                    self.options.want_cut,
                    budget,
                    router,
                    &mut scratch,
                    &mut trace,
                )
            })
            .collect();
        self.scratch.put(scratch);
        results
    }

    /// Solves a batch with up to `jobs` worker threads, returning results in
    /// database order. The per-database work of every strategy is read-only
    /// with respect to the plan (`PreparedQuery` is `Send + Sync`), so the
    /// batch splits into contiguous chunks solved on scoped threads —
    /// `jobs <= 1` (or a single database) degrades to the sequential
    /// [`PreparedQuery::solve_batch`]. This is the engine-level half of the
    /// server's parallel `solve_batch`; wall-clock improves with cores as
    /// long as the databases are large enough to amortize a thread spawn.
    pub fn solve_batch_parallel(
        &self,
        dbs: &[GraphDb],
        jobs: usize,
    ) -> Vec<Result<ResilienceOutcome, ResilienceError>> {
        self.solve_batch_parallel_with_cut(dbs, self.options.want_cut, jobs)
    }

    /// [`PreparedQuery::solve_batch_parallel`] with an explicit per-call
    /// contingency-set choice (see [`PreparedQuery::solve_with_cut`]).
    pub fn solve_batch_parallel_with_cut(
        &self,
        dbs: &[GraphDb],
        want_cut: bool,
        jobs: usize,
    ) -> Vec<Result<ResilienceOutcome, ResilienceError>> {
        self.solve_batch_parallel_with_cut_traced(dbs, want_cut, jobs, &mut Trace::disabled())
    }

    /// [`PreparedQuery::solve_batch_parallel_with_cut`] with phase tracing.
    /// Each worker thread records into its own trace; the per-chunk traces
    /// are merged into `trace` after the batch, so with more than one job the
    /// phase totals are summed CPU time across workers (they can exceed the
    /// batch's wall-clock). A disabled trace skips every clock read.
    pub fn solve_batch_parallel_with_cut_traced(
        &self,
        dbs: &[GraphDb],
        want_cut: bool,
        jobs: usize,
        trace: &mut Trace,
    ) -> Vec<Result<ResilienceOutcome, ResilienceError>> {
        self.route_batch_parallel_with_cut_traced(
            dbs,
            want_cut,
            jobs,
            &RouteBudget::UNLIMITED,
            &Router::new(),
            trace,
        )
        .into_iter()
        .map(|r| r.map(|tiered| tiered.outcome))
        .collect()
    }

    /// [`PreparedQuery::route_batch`] with worker threads: the parallel-batch
    /// core every server `solve_batch` funnels through. The budget applies
    /// per database (see [`PreparedQuery::route_batch`]); the router is
    /// shared across workers, so an overload probe tightens every in-flight
    /// chunk as soon as it trips.
    pub fn route_batch_parallel(
        &self,
        dbs: &[GraphDb],
        jobs: usize,
        budget: &RouteBudget,
        router: &Router,
    ) -> Vec<Result<TieredOutcome, ResilienceError>> {
        self.route_batch_parallel_with_cut_traced(
            dbs,
            self.options.want_cut,
            jobs,
            budget,
            router,
            &mut Trace::disabled(),
        )
    }

    /// [`PreparedQuery::route_batch_parallel`] with explicit contingency-set
    /// choice and phase tracing (trace semantics as in
    /// [`PreparedQuery::solve_batch_parallel_with_cut_traced`]).
    pub fn route_batch_parallel_with_cut_traced(
        &self,
        dbs: &[GraphDb],
        want_cut: bool,
        jobs: usize,
        budget: &RouteBudget,
        router: &Router,
        trace: &mut Trace,
    ) -> Vec<Result<TieredOutcome, ResilienceError>> {
        let jobs = jobs.max(1).min(dbs.len().max(1));
        if jobs <= 1 {
            let mut scratch = self.scratch.take();
            let results = dbs
                .iter()
                .map(|db| self.route_using(db, want_cut, budget, router, &mut scratch, trace))
                .collect();
            self.scratch.put(scratch);
            return results;
        }
        let chunk_size = dbs.len().div_ceil(jobs);
        let num_chunks = dbs.len().div_ceil(chunk_size);
        let mut worker_traces: Vec<Trace> = (0..num_chunks)
            .map(|_| if trace.is_enabled() { Trace::enabled() } else { Trace::disabled() })
            .collect();
        let mut results: Vec<Option<Result<TieredOutcome, ResilienceError>>> =
            (0..dbs.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((db_chunk, out_chunk), worker_trace) in dbs
                .chunks(chunk_size)
                .zip(results.chunks_mut(chunk_size))
                .zip(worker_traces.iter_mut())
            {
                // Each worker checks one scratch out of the plan's pool and
                // reuses it across every database of its chunk.
                scope.spawn(move || {
                    let mut scratch = self.scratch.take();
                    for (db, out) in db_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = Some(self.route_using(
                            db,
                            want_cut,
                            budget,
                            router,
                            &mut scratch,
                            worker_trace,
                        ));
                    }
                    self.scratch.put(scratch);
                });
            }
        });
        for worker_trace in &worker_traces {
            trace.merge(worker_trace);
        }
        // lint: allow(panic-freedom, the scoped workers above fill every chunk slot before joining)
        results.into_iter().map(|r| r.expect("every chunk slot is filled")).collect()
    }

    /// A fresh [`IncrementalSolver`] for this plan (see
    /// [`PreparedQuery::solve_incremental`]).
    pub fn incremental_solver(&self) -> IncrementalSolver {
        IncrementalSolver::new()
    }

    /// Solves `db` — the materialization of the *current* snapshot — reusing
    /// the flow network and maximum flow the `solver` retained from the
    /// previous snapshot when possible.
    ///
    /// `delta` is the fact-change log between the previously solved snapshot
    /// and this one (`None` when unknown, e.g. on the first solve or after a
    /// snapshot rollback). When the plan is the Theorem 3.13 local reduction
    /// and the delta is small relative to the database, the solve applies the
    /// changes as edge-capacity patches and warm-starts the min-cut from the
    /// retained flow ([`SolveMode::Incremental`]); otherwise it falls back to
    /// a full build ([`SolveMode::Full`]) — same outcome, batch-path speed.
    /// Outcomes always match a fresh [`PreparedQuery::solve_with_cut`] on the
    /// same database.
    pub fn solve_incremental(
        &self,
        solver: &mut IncrementalSolver,
        db: &GraphDb,
        delta: Option<&[FactChange]>,
        want_cut: bool,
    ) -> Result<(ResilienceOutcome, SolveMode), ResilienceError> {
        self.solve_incremental_traced(solver, db, delta, want_cut, &mut Trace::disabled())
    }

    /// [`PreparedQuery::solve_incremental`] with phase tracing: the patch
    /// path records `patch_apply` / `rebuild`, `csr_freeze`, `flow_resume`
    /// and `witness_extract` spans; fallbacks record the batch-path phases.
    /// A disabled trace skips every clock read.
    pub fn solve_incremental_traced(
        &self,
        solver: &mut IncrementalSolver,
        db: &GraphDb,
        delta: Option<&[FactChange]>,
        want_cut: bool,
        trace: &mut Trace,
    ) -> Result<(ResilienceOutcome, SolveMode), ResilienceError> {
        self.route_incremental_traced(
            solver,
            db,
            delta,
            want_cut,
            &RouteBudget::UNLIMITED,
            &Router::new(),
            trace,
        )
        .map(|(tiered, mode)| (tiered.outcome, mode))
    }

    /// [`PreparedQuery::solve_incremental`] under a [`RouteBudget`]. The
    /// projection is the *full-build* cost of the planned backend — an upper
    /// bound on the warm-start cost, so a fitting estimate never risks the
    /// deadline. When the estimate does not fit, the solve degrades down the
    /// certified ladder **without touching the solver's retained state**: a
    /// later unlimited solve still warm-starts from the last full answer.
    pub fn route_incremental(
        &self,
        solver: &mut IncrementalSolver,
        db: &GraphDb,
        delta: Option<&[FactChange]>,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
    ) -> Result<(TieredOutcome, SolveMode), ResilienceError> {
        self.route_incremental_traced(
            solver,
            db,
            delta,
            want_cut,
            budget,
            router,
            &mut Trace::disabled(),
        )
    }

    /// [`PreparedQuery::route_incremental`] with phase tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn route_incremental_traced(
        &self,
        solver: &mut IncrementalSolver,
        db: &GraphDb,
        delta: Option<&[FactChange]>,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
        trace: &mut Trace,
    ) -> Result<(TieredOutcome, SolveMode), ResilienceError> {
        let planned = self.report.algorithm;
        // ε ∈ IF(L) plans answer in constant time whatever the model says.
        let estimated = match &self.strategy {
            Strategy::EpsilonInfinite { .. } => 0,
            _ => self.report.cost.estimate_us_for(db),
        };
        let (limit, shed) = router.effective_limit_us(budget);
        let fits = limit.is_none_or(|l| estimated <= l);
        if fits {
            let (outcome, mode) =
                self.solve_incremental_using(solver, db, delta, want_cut, trace)?;
            let reason = match limit {
                None => "no deadline or cost budget: planned backend ran".to_string(),
                Some(l) => format!(
                    "estimated {estimated}µs fits the {l}µs budget{}",
                    if shed { " (overload-shed)" } else { "" }
                ),
            };
            return Ok((
                TieredOutcome {
                    tier: outcome.algorithm.tier(),
                    outcome,
                    planned,
                    degraded: false,
                    shed,
                    reason,
                    estimated_cost_us: estimated,
                },
                mode,
            ));
        }
        // lint: allow(panic-freedom, !fits implies the limit is present)
        let limit_us = limit.expect("a budget the estimate exceeds must be finite");
        // The degraded rungs never touch `solver.scratch`, so the retained
        // flow survives for the next unlimited solve.
        let tiered = self.degrade_using(db, want_cut, limit_us, shed, estimated, trace);
        Ok((tiered, SolveMode::Full))
    }

    fn solve_incremental_using(
        &self,
        solver: &mut IncrementalSolver,
        db: &GraphDb,
        delta: Option<&[FactChange]>,
        want_cut: bool,
        trace: &mut Trace,
    ) -> Result<(ResilienceOutcome, SolveMode), ResilienceError> {
        match &self.strategy {
            Strategy::EpsilonInfinite { tag } => Ok((
                ResilienceOutcome::new(ResilienceValue::Infinite, *tag, None),
                SolveMode::Incremental,
            )),
            Strategy::Local { ro } => Ok(incremental::solve_incremental_local(
                ro,
                &self.rpq,
                db,
                delta,
                self.options.flow_backend,
                want_cut,
                &mut solver.scratch,
                trace,
            )),
            _ => {
                // Non-local plans rebuild per database; drop any retained
                // state so the scratch is safe to reuse as a plain one.
                solver.scratch.incremental = None;
                let outcome =
                    self.solve_with_cut_using(db, want_cut, &mut solver.scratch, trace)?;
                Ok((outcome, SolveMode::Full))
            }
        }
    }

    fn solve_exact_branch_and_bound(
        &self,
        db: &GraphDb,
        want_cut: bool,
        trace: &mut Trace,
    ) -> ResilienceOutcome {
        let timer = trace.begin();
        let exact = resilience_exact(&self.rpq, db);
        let outcome = ResilienceOutcome::new(
            exact.value,
            Algorithm::ExactBranchAndBound,
            want_cut.then(|| exact.contingency_set.into_iter().collect()),
        );
        trace.end(timer, "exact_solve");
        outcome
    }
}

fn strip_cut(mut outcome: ResilienceOutcome, want_cut: bool) -> ResilienceOutcome {
    if !want_cut {
        outcome.contingency_set = None;
    }
    outcome
}

// Concurrent front ends (e.g. `rpq-server`) share one `PreparedQuery` across
// worker threads behind an `Arc`: keep the whole engine layer `Send + Sync`
// by construction. These assertions fail to compile if any plan component
// (RO-εNFA, chain / one-dangling decompositions, …) ever grows thread-unsafe
// interior mutability.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<SolveOptions>();
    assert_send_sync::<PreparedQuery>();
    assert_send_sync::<PlanReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Word;
    use rpq_graphdb::generate::word_path;

    #[test]
    fn prepared_queries_report_their_plan() {
        let engine = Engine::new();
        for (pattern, algorithm, fragment) in [
            ("ax*b", Algorithm::Local, "local"),
            ("ab|bc", Algorithm::BipartiteChain, "chain"),
            ("abc|be", Algorithm::OneDangling, "one-dangling"),
            ("aa", Algorithm::ExactBranchAndBound, "escapes"),
            ("a*", Algorithm::Local, "ε"),
        ] {
            let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
            let plan = prepared.plan();
            assert_eq!(plan.algorithm, algorithm, "{pattern}");
            assert!(plan.reason.contains(fragment), "{pattern}: {}", plan.reason);
            assert!(!plan.forced);
            assert!(plan.to_string().contains("IF(L)"));
        }
    }

    #[test]
    fn plan_reports_serialize_to_json() {
        let engine = Engine::new();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        let json = prepared.plan().to_json();
        assert!(json.starts_with("{\"algorithm\":\"local\""));
        assert!(json.contains("\"forced\":false"));
        assert!(json.contains("\"infix_free\":"));
        // Quotes and backslashes in reasons must be escaped.
        let report = PlanReport {
            algorithm: Algorithm::Local,
            reason: "say \"hi\" \\ bye\n".to_string(),
            infix_free: "IF".to_string(),
            forced: true,
            cost: CostModel::for_plan(Algorithm::Local, rpq_flow::FlowAlgorithm::Dinic),
        };
        assert_eq!(
            report.to_json(),
            format!(
                "{{\"algorithm\":\"local\",\"reason\":\"say \\\"hi\\\" \\\\ bye\\n\",\
                 \"infix_free\":\"IF\",\"forced\":true,\"cost\":{}}}",
                report.cost.to_json()
            )
        );
    }

    #[test]
    fn prepared_queries_are_shareable_across_threads() {
        let engine = Engine::new();
        let prepared = std::sync::Arc::new(engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let prepared = std::sync::Arc::clone(&prepared);
                std::thread::spawn(move || {
                    let db = word_path(&Word::from_str_word("axxb"));
                    prepared.solve(&db).unwrap().value
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), ResilienceValue::Finite(1));
        }
    }

    #[test]
    fn solve_batch_reuses_one_plan_across_databases() {
        let engine = Engine::new();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        let dbs: Vec<_> = ["axb", "axxb", "ab", "ba"]
            .iter()
            .map(|w| word_path(&Word::from_str_word(w)))
            .collect();
        let results = prepared.solve_batch(&dbs);
        let values: Vec<_> =
            results.into_iter().map(|r| r.unwrap().value.finite().unwrap()).collect();
        assert_eq!(values, vec![1, 1, 1, 0]);
    }

    #[test]
    fn solve_batch_parallel_agrees_with_sequential_for_any_job_count() {
        let engine = Engine::new();
        let dbs: Vec<_> = ["axb", "axxb", "ab", "ba", "axxxb", "xx", "aab", "axbxb"]
            .iter()
            .map(|w| word_path(&Word::from_str_word(w)))
            .collect();
        for pattern in ["ax*b", "ab|bc", "abc|be", "aa"] {
            let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
            let sequential: Vec<_> =
                prepared.solve_batch(&dbs).into_iter().map(|r| r.unwrap().value).collect();
            // jobs = 0 and 1 take the sequential path; 3 leaves a ragged tail
            // chunk; 16 exceeds the batch size and is clamped.
            for jobs in [0, 1, 2, 3, 16] {
                let parallel: Vec<_> = prepared
                    .solve_batch_parallel(&dbs, jobs)
                    .into_iter()
                    .map(|r| r.unwrap().value)
                    .collect();
                assert_eq!(parallel, sequential, "{pattern} with {jobs} jobs");
            }
        }
        // want_cut is honored per call on the parallel path too.
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        for result in prepared.solve_batch_parallel_with_cut(&dbs, false, 4) {
            assert!(result.unwrap().contingency_set.is_none());
        }
    }

    #[test]
    fn batch_solves_do_not_reallocate_scratch_after_warmup() {
        use rpq_graphdb::generate::flow_instance;
        let engine = Engine::new();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        let dbs: Vec<GraphDb> = (0..32).map(|seed| flow_instance(4, 4, 2, 3, seed)).collect();
        let mut scratch = SolveScratch::new();
        let mut trace = Trace::disabled();
        // Warm-up pass: sizes every buffer to the batch's shape.
        for db in &dbs {
            prepared.solve_with_cut_using(db, true, &mut scratch, &mut trace).unwrap();
        }
        let signature = scratch.capacity_signature();
        // Post-warmup: one PreparedQuery solving 32 databases must perform
        // zero scratch reallocations (the capacities stay bit-identical).
        for db in &dbs {
            prepared.solve_with_cut_using(db, true, &mut scratch, &mut trace).unwrap();
        }
        assert_eq!(
            scratch.capacity_signature(),
            signature,
            "post-warmup solves must not reallocate scratch buffers"
        );
    }

    #[test]
    fn every_flow_backend_returns_the_same_value() {
        let db = word_path(&Word::from_str_word("axxb"));
        let query = Rpq::parse("ax*b").unwrap();
        for flow_backend in FlowAlgorithm::ALL {
            let engine = Engine::with_options(SolveOptions { flow_backend, ..Default::default() });
            let outcome = engine.solve(&query, &db).unwrap();
            assert_eq!(outcome.value, ResilienceValue::Finite(1), "{flow_backend}");
        }
    }

    #[test]
    fn traced_solves_record_phase_spans_that_sum_to_the_sealed_total() {
        let engine = Engine::new();
        let db = word_path(&Word::from_str_word("axxb"));
        // One pattern per strategy family: local, chain, one-dangling, exact.
        for pattern in ["ax*b", "ab|bc", "abc|be", "aa"] {
            let mut trace = Trace::enabled();
            let prepared =
                engine.prepare_traced(&Rpq::parse(pattern).unwrap(), &mut trace).unwrap();
            let phases: Vec<&str> = trace.spans().iter().map(|(p, _)| *p).collect();
            assert!(phases.contains(&"canonicalize"), "{pattern}: {phases:?}");
            assert!(phases.contains(&"classify"), "{pattern}: {phases:?}");
            assert!(phases.contains(&"plan"), "{pattern}: {phases:?}");

            let mut trace = Trace::enabled();
            let traced = prepared.solve_with_cut_traced(&db, true, &mut trace).unwrap();
            let untraced = prepared.solve_with_cut(&db, true).unwrap();
            assert_eq!(traced.value, untraced.value, "{pattern}");
            assert!(!trace.spans().is_empty(), "{pattern}: a traced solve must record phases");
            let accounted: u64 = trace.spans().iter().map(|(_, us)| *us).sum();
            let total = trace.seal();
            let sealed: u64 = trace.spans().iter().map(|(_, us)| *us).sum();
            assert!(accounted <= total, "{pattern}: phases cannot exceed the total");
            assert_eq!(sealed, total, "{pattern}: seal() must account for the remainder");
        }
        // Disabled traces record nothing and seal to zero.
        let mut trace = Trace::disabled();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        prepared.solve_with_cut_traced(&db, true, &mut trace).unwrap();
        assert!(trace.spans().is_empty());
        assert_eq!(trace.seal(), 0);
    }

    #[test]
    fn traced_parallel_batches_merge_worker_spans() {
        use rpq_graphdb::generate::flow_instance;
        let engine = Engine::new();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        let dbs: Vec<GraphDb> = (0..8).map(|seed| flow_instance(4, 4, 2, 3, seed)).collect();
        let mut trace = Trace::enabled();
        let results = prepared.solve_batch_parallel_with_cut_traced(&dbs, false, 4, &mut trace);
        assert_eq!(results.len(), dbs.len());
        for result in results {
            result.unwrap();
        }
        let phases: Vec<&str> = trace.spans().iter().map(|(p, _)| *p).collect();
        assert!(phases.contains(&"product_build"), "{phases:?}");
        assert!(phases.contains(&"csr_freeze"), "{phases:?}");
        assert!(
            phases.iter().any(|p| p.starts_with("flow_solve")),
            "{phases:?} must include a flow backend phase"
        );
    }

    #[test]
    fn disabling_exact_fallback_rejects_hard_queries_at_prepare_time() {
        let engine =
            Engine::with_options(SolveOptions { exact_fallback: false, ..Default::default() });
        let err = engine.prepare(&Rpq::parse("aa").unwrap()).unwrap_err();
        assert!(matches!(err, ResilienceError::ExactFallbackDisabled { .. }));
        assert!(err.to_string().contains("exact fallback"));
        // Tractable queries still prepare fine.
        assert!(engine.prepare(&Rpq::parse("ax*b").unwrap()).is_ok());
    }

    #[test]
    fn enumeration_limit_yields_typed_error() {
        let engine =
            Engine::with_options(SolveOptions { enumeration_limit: 4, ..Default::default() });
        let db = word_path(&Word::from_str_word("aaaaaa"));
        let query = Rpq::parse("aa").unwrap();
        let err = engine.solve_with(Algorithm::ExactEnumeration, &query, &db).unwrap_err();
        assert_eq!(err, ResilienceError::InstanceTooLarge { facts: 6, limit: 4 });
        assert!(err.to_string().contains("6"));
        // Within the limit the oracle still answers.
        let small = word_path(&Word::from_str_word("aaa"));
        let outcome = engine.solve_with(Algorithm::ExactEnumeration, &query, &small).unwrap();
        assert_eq!(outcome.value, ResilienceValue::Finite(1));
    }

    #[test]
    fn want_cut_false_suppresses_contingency_sets() {
        let engine = Engine::with_options(SolveOptions { want_cut: false, ..Default::default() });
        let db = word_path(&Word::from_str_word("axb"));
        let outcome = engine.solve(&Rpq::parse("ax*b").unwrap(), &db).unwrap();
        assert_eq!(outcome.value, ResilienceValue::Finite(1));
        assert!(outcome.contingency_set.is_none());
        let outcome =
            engine.solve_with(Algorithm::ExactBranchAndBound, &Rpq::parse("ax*b").unwrap(), &db);
        assert!(outcome.unwrap().contingency_set.is_none());
    }

    #[test]
    fn solve_with_cut_overrides_the_plan_options_per_call() {
        // One prepared plan serves both value-only and with-cut callers: the
        // flag is applied at solve time, not baked into the plan.
        let engine = Engine::new();
        let db = word_path(&Word::from_str_word("axb"));
        for pattern in ["ax*b", "ab|bc", "abc|be", "aa"] {
            let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
            let with = prepared.solve_with_cut(&db, true).unwrap();
            let without = prepared.solve_with_cut(&db, false).unwrap();
            assert_eq!(with.value, without.value, "{pattern}");
            assert!(without.contingency_set.is_none(), "{pattern}");
            if !with.value.is_infinite() {
                assert!(with.contingency_set.is_some(), "{pattern}");
            }
        }
    }

    #[test]
    fn one_dangling_plans_extract_witnesses_through_the_engine() {
        let engine = Engine::new();
        let mut db = GraphDb::new();
        db.add_fact_by_names("1", 'a', "2");
        db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'c', "4");
        db.add_fact_by_names("3", 'e', "5");
        let query = Rpq::parse("abc|be").unwrap();
        let outcome = engine.solve(&query, &db).unwrap();
        assert_eq!(outcome.algorithm, Algorithm::OneDangling);
        let cut: std::collections::BTreeSet<_> =
            outcome.contingency_set.expect("witness extracted").into_iter().collect();
        assert!(query.is_contingency_set(&db, &cut));
        assert_eq!(ResilienceValue::Finite(query.cost(&db, &cut)), outcome.value);
    }

    #[test]
    fn forced_one_dangling_still_rejects_exogenous_databases() {
        let mut db = GraphDb::new();
        let f = db.add_fact_by_names("1", 'a', "2");
        db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'c', "4");
        db.add_fact_by_names("3", 'e', "5");
        db.set_exogenous(f, true);
        let engine = Engine::new();
        let query = Rpq::parse("abc|be").unwrap();
        // Forced: NotApplicable, like the legacy `solve_with`.
        let err = engine.solve_with(Algorithm::OneDangling, &query, &db).unwrap_err();
        assert!(matches!(err, ResilienceError::NotApplicable { .. }));
        // Automatic dispatch: falls back to the exact solver, like `solve`.
        let outcome = engine.solve(&query, &db).unwrap();
        assert_eq!(outcome.algorithm, Algorithm::ExactBranchAndBound);
    }

    #[test]
    fn incremental_solves_patch_and_match_fresh_solves() {
        use rpq_graphdb::delta::{materialize, parse_patch};
        let engine = Engine::new();
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
        let mut solver = prepared.incremental_solver();
        let mut log = parse_patch("+ s a u\n+ u x v\n+ v x w\n+ w b t\n").unwrap();
        let db = materialize(&log);
        // First solve: nothing retained yet, full build.
        let (out, mode) = prepared.solve_incremental(&mut solver, &db, None, true).unwrap();
        assert_eq!(mode, SolveMode::Full);
        assert_eq!(out.value, ResilienceValue::Finite(1));
        // Single-fact deltas ride the incremental path and agree with a
        // fresh solve, contingency set included.
        for patch in ["+ u x w", "- u x v", "+ s a v", "- w b t", "+ w b t", "+ v b z"] {
            let delta = parse_patch(patch).unwrap();
            log.extend(delta.iter().cloned());
            let db = materialize(&log);
            let (out, mode) =
                prepared.solve_incremental(&mut solver, &db, Some(&delta), true).unwrap();
            assert_eq!(mode, SolveMode::Incremental, "{patch}");
            let fresh = prepared.solve(&db).unwrap();
            assert_eq!(out.value, fresh.value, "{patch}");
            let cut: std::collections::BTreeSet<_> =
                out.contingency_set.expect("cut requested").into_iter().collect();
            assert!(prepared.rpq().is_contingency_set(&db, &cut), "{patch}");
            assert_eq!(
                ResilienceValue::Finite(prepared.rpq().cost(&db, &cut)),
                out.value,
                "{patch}"
            );
        }
        // A delta past the fallback threshold cedes to the batch path (the
        // pruned build-and-solve beats rebuilding the retained network) and
        // drops the retained flows — same answer, Full mode.
        let big: String =
            (0..12).map(|i| format!("+ a{i} a b{i}\n+ b{i} x c{i}\n+ c{i} b d{i}\n")).collect();
        let delta = parse_patch(&big).unwrap();
        log.extend(delta.iter().cloned());
        let db = materialize(&log);
        let (out, mode) =
            prepared.solve_incremental(&mut solver, &db, Some(&delta), false).unwrap();
        assert_eq!(mode, SolveMode::Full);
        assert_eq!(out.value, prepared.solve(&db).unwrap().value);
        assert!(out.contingency_set.is_none());
        // The next small delta bootstraps a fresh retained network (Full)...
        let delta = parse_patch("- a3 x a4").unwrap();
        log.extend(delta.iter().cloned());
        let db = materialize(&log);
        let (out, mode) = prepared.solve_incremental(&mut solver, &db, Some(&delta), true).unwrap();
        assert_eq!(mode, SolveMode::Full);
        assert_eq!(out.value, prepared.solve(&db).unwrap().value);
        // ...and the one after that patches it incrementally again.
        let delta = parse_patch("- a5 x a6\n+ a5 x a6").unwrap();
        log.extend(delta.iter().cloned());
        let db = materialize(&log);
        let (out, mode) = prepared.solve_incremental(&mut solver, &db, Some(&delta), true).unwrap();
        assert_eq!(mode, SolveMode::Incremental);
        assert_eq!(out.value, prepared.solve(&db).unwrap().value);
    }

    #[test]
    fn incremental_solves_handle_exogenous_bag_and_infinite_cases() {
        use rpq_graphdb::delta::{materialize, parse_patch};
        let engine = Engine::new();
        // Bag semantics: multiplicities are capacities; exogenous facts can
        // never be cut, so a fully exogenous path means +∞.
        let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap().with_bag_semantics()).unwrap();
        let mut solver = prepared.incremental_solver();
        let mut log = parse_patch("+ s a u 5\n+ u x v 3\n+ v b t 7\n").unwrap();
        let db = materialize(&log);
        let (out, _) = prepared.solve_incremental(&mut solver, &db, None, true).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(3));
        for (patch, expected) in [
            ("+ u x v 9", ResilienceValue::Finite(5)),
            ("+ s a u 2 !", ResilienceValue::Finite(7)),
            ("+ u x v 9 !\n", ResilienceValue::Finite(7)),
            ("+ v b t 7 !", ResilienceValue::Infinite),
            ("+ v b t 4", ResilienceValue::Finite(4)),
            ("- u x v", ResilienceValue::Finite(0)),
        ] {
            let delta = parse_patch(patch).unwrap();
            log.extend(delta.iter().cloned());
            let db = materialize(&log);
            let (out, mode) =
                prepared.solve_incremental(&mut solver, &db, Some(&delta), true).unwrap();
            assert_eq!(mode, SolveMode::Incremental, "{patch}");
            assert_eq!(out.value, expected, "{patch}");
            assert_eq!(out.value, prepared.solve(&db).unwrap().value, "{patch}");
        }
        // ε ∈ L: constant +∞, no network at all.
        let prepared = engine.prepare(&Rpq::parse("x*").unwrap()).unwrap();
        let mut solver = prepared.incremental_solver();
        let (out, mode) = prepared.solve_incremental(&mut solver, &db, None, true).unwrap();
        assert_eq!(mode, SolveMode::Incremental);
        assert!(out.value.is_infinite());
        // Non-local plans run the batch path and report Full.
        let prepared = engine.prepare(&Rpq::parse("ab|bc").unwrap()).unwrap();
        let mut solver = prepared.incremental_solver();
        let db = materialize(&parse_patch("+ 1 a 2\n+ 2 b 3\n+ 3 c 4\n").unwrap());
        let (out, mode) = prepared.solve_incremental(&mut solver, &db, None, true).unwrap();
        assert_eq!(mode, SolveMode::Full);
        assert_eq!(out.algorithm, Algorithm::BipartiteChain);
        assert_eq!(out.value, prepared.solve(&db).unwrap().value);
    }

    #[test]
    fn incremental_churn_agrees_with_fresh_solves() {
        use rpq_automata::alphabet::Letter;
        use rpq_graphdb::delta::materialize;
        use rpq_graphdb::FactChange;
        fn xorshift(state: &mut u64) -> u64 {
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            *state
        }
        let engine = Engine::new();
        for (pattern, bag) in [("ax*b", false), ("ab|ad", false), ("ax*b", true)] {
            let mut q = Rpq::parse(pattern).unwrap();
            if bag {
                q = q.with_bag_semantics();
            }
            let prepared = engine.prepare(&q).unwrap();
            let mut solver = prepared.incremental_solver();
            let mut rng = 0x0DDB1A5E5BAD5EEDu64 ^ pattern.len() as u64 ^ (bag as u64) << 32;
            let labels = ['a', 'x', 'b', 'd'];
            let mut log: Vec<FactChange> = Vec::new();
            let mut incremental_seen = 0usize;
            for round in 0..80 {
                let node = |r: u64| format!("n{}", r % 9);
                let change = if xorshift(&mut rng) % 10 < 7 || log.is_empty() {
                    FactChange::Put {
                        source: node(xorshift(&mut rng)),
                        label: Letter(labels[(xorshift(&mut rng) % 4) as usize]),
                        target: node(xorshift(&mut rng)),
                        multiplicity: 1 + xorshift(&mut rng) % 3,
                        exogenous: xorshift(&mut rng).is_multiple_of(8),
                    }
                } else {
                    // Delete a random earlier key (maybe already deleted).
                    let (s, l, t) = log[(xorshift(&mut rng) as usize) % log.len()].key();
                    FactChange::Delete { source: s.to_string(), label: l, target: t.to_string() }
                };
                let delta = [change];
                log.extend(delta.iter().cloned());
                let db = materialize(&log);
                let (out, mode) =
                    prepared.solve_incremental(&mut solver, &db, Some(&delta), true).unwrap();
                incremental_seen += (mode == SolveMode::Incremental) as usize;
                let fresh = prepared.solve(&db).unwrap();
                assert_eq!(out.value, fresh.value, "{pattern} bag={bag} round {round}");
                if let Some(cut) = out.contingency_set {
                    let cut: std::collections::BTreeSet<_> = cut.into_iter().collect();
                    assert!(q.is_contingency_set(&db, &cut), "{pattern} round {round}");
                    assert_eq!(ResilienceValue::Finite(q.cost(&db, &cut)), out.value);
                }
            }
            assert!(incremental_seen > 40, "{pattern} bag={bag}: {incremental_seen}");
        }
    }
}
