//! The RPQ query type and resilience values.

use rpq_automata::Language;
use rpq_graphdb::{FactId, GraphDb};
use std::fmt;

/// Whether resilience is computed under set semantics (every fact costs 1) or
/// bag semantics (every fact costs its multiplicity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantics {
    /// Set semantics: each fact removal costs 1.
    #[default]
    Set,
    /// Bag semantics: each fact removal costs its multiplicity.
    Bag,
}

impl Semantics {
    /// The cost of removing a fact of the database under this semantics.
    pub fn fact_cost(&self, db: &GraphDb, fact: FactId) -> u64 {
        match self {
            Semantics::Set => 1,
            Semantics::Bag => db.multiplicity(fact),
        }
    }
}

/// The resilience of a query on a database: the minimum cost of a contingency
/// set, or `+∞` when the query holds on every sub-database (which happens
/// exactly when `ε ∈ L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResilienceValue {
    /// A finite resilience value.
    Finite(u128),
    /// The query cannot be falsified by removing facts.
    Infinite,
}

impl ResilienceValue {
    /// The finite value, if any.
    pub fn finite(&self) -> Option<u128> {
        match self {
            ResilienceValue::Finite(v) => Some(*v),
            ResilienceValue::Infinite => None,
        }
    }

    /// Whether the value is `+∞`.
    pub fn is_infinite(&self) -> bool {
        matches!(self, ResilienceValue::Infinite)
    }
}

impl fmt::Display for ResilienceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceValue::Finite(v) => write!(f, "{v}"),
            ResilienceValue::Infinite => write!(f, "+∞"),
        }
    }
}

impl From<rpq_flow::Capacity> for ResilienceValue {
    fn from(c: rpq_flow::Capacity) -> Self {
        match c {
            rpq_flow::Capacity::Finite(v) => ResilienceValue::Finite(v),
            rpq_flow::Capacity::Infinite => ResilienceValue::Infinite,
        }
    }
}

/// A Boolean Regular Path Query together with the semantics under which its
/// resilience should be computed.
///
/// The query `Q_L` holds on a database `D` when `D` contains a walk labeled by
/// a word of `L`. Resilience is the minimum cost of a set of facts whose
/// removal falsifies the query (Definition 2.1 of the paper).
#[derive(Debug, Clone)]
pub struct Rpq {
    language: Language,
    semantics: Semantics,
}

impl Rpq {
    /// Creates a query from a language, under set semantics.
    pub fn new(language: Language) -> Rpq {
        Rpq { language, semantics: Semantics::Set }
    }

    /// Creates a query from a regular expression, under set semantics.
    pub fn parse(pattern: &str) -> Result<Rpq, rpq_automata::AutomataError> {
        Ok(Rpq::new(Language::parse(pattern)?))
    }

    /// Switches to bag semantics (costs are fact multiplicities).
    pub fn with_bag_semantics(mut self) -> Rpq {
        self.semantics = Semantics::Bag;
        self
    }

    /// Switches to the given semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Rpq {
        self.semantics = semantics;
        self
    }

    /// The language defining the query.
    pub fn language(&self) -> &Language {
        &self.language
    }

    /// The semantics under which resilience is computed.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The infix-free sublanguage `IF(L)`: the query `Q_{IF(L)}` is the same
    /// query as `Q_L`, and all complexity analyses work on it.
    pub fn infix_free_language(&self) -> Language {
        self.language.infix_free()
    }

    /// The mirror query `Q_{L^R}` (Proposition 6.3): its resilience on the
    /// reversed database equals the resilience of this query on the original.
    pub fn mirror(&self) -> Rpq {
        Rpq { language: self.language.mirror(), semantics: self.semantics }
    }

    /// Whether the query holds on the database.
    pub fn holds_on(&self, db: &GraphDb) -> bool {
        rpq_graphdb::satisfies(db, &self.language)
    }

    /// Whether a fact set is a contingency set: removing it falsifies the query.
    pub fn is_contingency_set(
        &self,
        db: &GraphDb,
        facts: &std::collections::BTreeSet<FactId>,
    ) -> bool {
        !rpq_graphdb::satisfies_excluding(db, &self.language, facts)
    }

    /// The cost of a fact set under the query's semantics.
    pub fn cost(&self, db: &GraphDb, facts: &std::collections::BTreeSet<FactId>) -> u128 {
        facts.iter().map(|&f| self.semantics.fact_cost(db, f) as u128).sum()
    }
}

impl fmt::Display for Rpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sem = match self.semantics {
            Semantics::Set => "set",
            Semantics::Bag => "bag",
        };
        write!(f, "RES_{sem}({})", self.language)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn resilience_value_basics() {
        assert!(ResilienceValue::Finite(3) < ResilienceValue::Finite(4));
        assert!(ResilienceValue::Finite(u128::MAX) < ResilienceValue::Infinite);
        assert_eq!(ResilienceValue::Finite(3).finite(), Some(3));
        assert_eq!(ResilienceValue::Infinite.finite(), None);
        assert!(ResilienceValue::Infinite.is_infinite());
        assert_eq!(ResilienceValue::Finite(5).to_string(), "5");
        assert_eq!(ResilienceValue::Infinite.to_string(), "+∞");
        assert_eq!(
            ResilienceValue::from(rpq_flow::Capacity::Finite(2)),
            ResilienceValue::Finite(2)
        );
        assert_eq!(ResilienceValue::from(rpq_flow::Capacity::Infinite), ResilienceValue::Infinite);
    }

    #[test]
    fn semantics_cost() {
        let mut db = GraphDb::new();
        let f = db.add_fact_by_names("u", 'a', "v");
        db.set_multiplicity(f, 5);
        assert_eq!(Semantics::Set.fact_cost(&db, f), 1);
        assert_eq!(Semantics::Bag.fact_cost(&db, f), 5);
    }

    #[test]
    fn rpq_holds_and_contingency() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("u", 'a', "v");
        let f2 = db.add_fact_by_names("v", 'a', "w");
        let q = Rpq::parse("aa").unwrap();
        assert!(q.holds_on(&db));
        let cs: BTreeSet<FactId> = [f1].into_iter().collect();
        assert!(q.is_contingency_set(&db, &cs));
        assert!(q.is_contingency_set(&db, &[f2].into_iter().collect()));
        assert!(!q.is_contingency_set(&db, &BTreeSet::new()));
        assert_eq!(q.cost(&db, &cs), 1);
        let bag = Rpq::parse("aa").unwrap().with_bag_semantics();
        db.set_multiplicity(f1, 10);
        assert_eq!(bag.cost(&db, &cs), 10);
    }

    #[test]
    fn mirror_query() {
        let q = Rpq::parse("ab").unwrap().with_bag_semantics();
        let m = q.mirror();
        assert_eq!(m.semantics(), Semantics::Bag);
        assert!(m.language().contains(&rpq_automata::Word::from_str_word("ba")));
        assert_eq!(q.to_string(), "RES_bag(ab)");
        assert_eq!(Rpq::parse("ab").unwrap().to_string(), "RES_set(ab)");
    }

    #[test]
    fn infix_free_language_of_query() {
        let q = Rpq::parse("abbc|bb").unwrap();
        let if_l = q.infix_free_language();
        assert!(if_l.equals(&Language::from_strs(["bb"])));
    }
}
