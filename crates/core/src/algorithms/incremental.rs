//! Incremental Theorem 3.13 solves: patch the product network, keep the flow.
//!
//! The snapshot store solves the *same query* against a database that drifts
//! by small fact deltas. Rebuilding the RO-εNFA product and re-running
//! max-flow from zero on every snapshot throws away almost all the work: a
//! single-fact edit changes one edge capacity of the flow network, and a
//! maximum flow for the previous snapshot is a near-maximum feasible flow for
//! the next one. This module keeps the product network and its per-edge
//! flows alive between solves and applies deltas as capacity patches:
//!
//! * **insert** — a new arc appended to the CSR arena (plus fresh state
//!   blocks and structural arcs when the delta introduces new nodes);
//! * **delete** — the arc's capacity zeroed, with the flow it carried
//!   cancelled along residual paths ([`rpq_flow::CsrFlow::cancel_flow`])
//!   so the retained assignment stays feasible;
//! * **solve** — a [`rpq_flow::CsrFlow::min_cut_resume`] that only augments
//!   the *difference* to the new maximum instead of the whole flow. A delta
//!   that only patched capacities leaves the CSR freeze and the previous
//!   solve's residual arrays intact ([`rpq_flow::CsrFlow::patch_edge_capacity`]),
//!   so the resume repairs just the patched edges — `O(|delta|)` setup plus
//!   one certification pass; only deltas that append blocks or fresh edges
//!   pay the `O(V+E)` re-freeze and residual reload.
//!
//! # Stable layout, stable identity
//!
//! [`crate::algorithms::local`]'s per-solve build prunes and compacts the
//! product per database — vertex ids change whenever the database does, which
//! is exactly what a retained flow cannot survive. The incremental build
//! therefore uses the **unpruned** layout with identities the delta language
//! can address: node *names* are interned to stable block indices (the
//! store's materializations renumber `NodeId`s freely), the product vertex of
//! `(block b, state s)` is `2 + b·|Q| + s` (source = 0, target = 1), and a
//! fact edge is keyed by `(block, letter, block)`. Deleted fact edges stay in
//! the arena as zero-capacity tombstones (freeze drops them from the
//! adjacency); re-inserting the same fact resurrects its edge.
//!
//! # Infinite capacities under deletion
//!
//! The batch path encodes structural (ε / source / target) and exogenous
//! edges as `Capacity::Infinite`, certified against `total_finite + 1` — a
//! bound that *shrinks* when facts are deleted, which would strand retained
//! flows above it. The incremental network instead gives those edges the
//! fixed huge finite capacity [`INCR_INF`] `= 2^80` and reports `+∞` iff the
//! total flow reaches it. Real fact capacities are `u64`-sized, so a genuine
//! finite cut stays far below `INCR_INF`; solves where the summed finite
//! capacity could approach it fall back to the batch path permanently.

use super::{Algorithm, ResilienceOutcome, SolveScratch};
use crate::engine::SolveMode;
use crate::rpq::{ResilienceValue, Rpq, Semantics};
use rpq_automata::alphabet::Letter;
use rpq_automata::ro_enfa::RoEnfa;
use rpq_flow::{Capacity, CsrFlow, EdgeId, FlowAlgorithm, FlowScratch, VertexId};
use rpq_graphdb::delta::FactChange;
use rpq_graphdb::{FactId, GraphDb};
use rpq_obs::Trace;
use std::collections::HashMap;

/// The capacity of structural and exogenous edges in the incremental network
/// (see the [module docs](self)): huge enough that no genuine cut reaches it,
/// finite so deletions can never strand a retained flow above the
/// infinite-certification bound.
pub(crate) const INCR_INF: u128 = 1 << 80;

/// Block sentinel in `edge_key`: the edge is structural, not a fact edge.
const NO_KEY: u32 = u32::MAX;

/// Fall back to the batch path when a delta touches more than
/// `max(live_facts / INCREMENTAL_FALLBACK_DIVISOR, INCREMENTAL_FALLBACK_FLOOR)`
/// entries. Measured by the `resilience_under_updates` bench: on the 512-fact
/// corpus families the patch+warm-start path wins up to ~1/32 of the fact
/// count (4–7× at single facts), breaks even around 1/32–1/16, and loses
/// beyond it — the flow cancellations dominate. 16 keeps every measured win
/// and cedes the crossover region to the pruned batch solve (EXPERIMENTS.md).
pub const INCREMENTAL_FALLBACK_DIVISOR: usize = 16;

/// Deltas up to this many entries always take the patch path, however small
/// the database: on tiny networks a rebuild and a patch are both trivial, so
/// keeping the retained state warm wins on the next, larger snapshot.
pub const INCREMENTAL_FALLBACK_FLOOR: usize = 8;

/// Retained state of the incremental local solver: the append-only product
/// arena lives in the owning [`SolveScratch`]'s `csr`; everything keyed by
/// its stable edge ids lives here.
#[derive(Debug, Default)]
pub(crate) struct IncrementalLocalState {
    /// `|Q|` of the automaton the layout was built for (layout invariant).
    num_states: usize,
    /// Block → node name (the reverse of `nodes`).
    names: Vec<String>,
    /// Node name → block index, append-only across deltas.
    nodes: HashMap<String, u32>,
    /// `(source block, letter, target block)` → arena edge (tombstones
    /// included, so re-inserts resurrect the existing edge).
    fact_edges: HashMap<(u32, Letter, u32), EdgeId>,
    /// Arena edge → fact key (`NO_KEY` block marks structural edges), for
    /// mapping cut edges back to facts of the *current* database.
    edge_key: Vec<(u32, Letter, u32)>,
    /// Retained per-edge flow: the feasible flow the previous solve left.
    edge_flows: Vec<u128>,
    /// Value of the retained flow.
    total_flow: u128,
    /// Summed capacity of non-exogenous fact edges (the `INCR_INF` guard).
    total_finite: u128,
    /// Fact edges with positive capacity.
    live_facts: usize,
    /// Fact edges currently tombstoned (capacity 0, still in the arena).
    tombstones: usize,
    /// Edges whose capacity the current delta patched — the repair list for
    /// warm resumes (valid while the freeze survives the delta).
    dirty: Vec<EdgeId>,
    /// Whether the owning scratch's residual arrays still hold the state the
    /// previous resume left (false after rebuilds; a surviving freeze plus
    /// this flag enables the `O(|delta|)` warm resume).
    residual_warm: bool,
}

/// Verifies the retained incremental flow against the scratch's network:
/// `Ok` when no incremental state is retained yet, otherwise the full
/// residual-consistency walk of [`CsrFlow::check_flow_consistency`]. Exposed
/// through [`crate::engine::IncrementalSolver::check_consistency`] for churn
/// tests; `debug_assert!`ed after every incremental resume.
pub(crate) fn check_consistency(scratch: &SolveScratch) -> Result<(), String> {
    let Some(state) = &scratch.incremental else { return Ok(()) };
    if !scratch.csr.is_frozen() {
        return Err("incremental state retained on an unfrozen network".to_string());
    }
    scratch.csr.check_flow_consistency(&state.edge_flows, state.total_flow)
}

/// The per-fact capacity in the incremental network.
fn fact_cap(semantics: Semantics, multiplicity: u64, exogenous: bool) -> u128 {
    if exogenous {
        INCR_INF
    } else {
        match semantics {
            Semantics::Set => 1,
            Semantics::Bag => multiplicity as u128,
        }
    }
}

impl IncrementalLocalState {
    /// The product vertex of `(block, state)`.
    fn product(&self, block: u32, state: usize) -> VertexId {
        VertexId(2 + block * self.num_states as u32 + state as u32)
    }

    /// Interns a node name to its stable block index (no arena mutation; new
    /// blocks get their vertices and structural edges from
    /// [`IncrementalLocalState::emit_block`] once cancellations are done).
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&b) = self.nodes.get(name) {
            return b;
        }
        let b = self.names.len() as u32;
        self.nodes.insert(name.to_string(), b);
        self.names.push(name.to_string());
        b
    }

    /// Adds block `b`'s product vertices and structural (ε / source / target)
    /// edges to the arena.
    fn emit_block(&mut self, csr: &mut CsrFlow, ro: &RoEnfa, b: u32) {
        let first = csr.add_vertices(self.num_states);
        debug_assert_eq!(first, self.product(b, 0));
        for (s, s_prime) in ro.epsilon_transitions() {
            self.push_structural(csr, self.product(b, s), self.product(b, s_prime));
        }
        for s in ro.initial_states() {
            self.push_structural(csr, VertexId(0), self.product(b, s));
        }
        for s in ro.final_states() {
            self.push_structural(csr, self.product(b, s), VertexId(1));
        }
    }

    fn push_structural(&mut self, csr: &mut CsrFlow, from: VertexId, to: VertexId) {
        let e = csr.add_edge(from, to, Capacity::Finite(INCR_INF));
        debug_assert_eq!(e.index(), self.edge_key.len());
        self.edge_key.push((NO_KEY, Letter('\0'), NO_KEY));
        self.edge_flows.push(0);
    }

    /// Appends a fresh fact edge (capacity > 0) for `key`.
    fn push_fact(&mut self, csr: &mut CsrFlow, ro: &RoEnfa, key: (u32, Letter, u32), cap: u128) {
        // lint: allow(panic-freedom, facts are only staged for letters the automaton reads)
        let (s, s_prime) = ro.letter_transition(key.1).expect("fact label has a transition");
        let e = csr.add_edge(
            self.product(key.0, s),
            self.product(key.2, s_prime),
            Capacity::Finite(cap),
        );
        debug_assert_eq!(e.index(), self.edge_key.len());
        self.edge_key.push(key);
        self.edge_flows.push(0);
        self.fact_edges.insert(key, e);
        self.live_facts += 1;
        if cap < INCR_INF {
            self.total_finite += cap;
        }
    }

    /// Rebuilds the whole network from `db` (first solve, oversized deltas,
    /// arena bloat, lineage mismatches). Keeps allocations where possible.
    fn build(&mut self, csr: &mut CsrFlow, ro: &RoEnfa, semantics: Semantics, db: &GraphDb) {
        self.num_states = ro.num_states();
        self.names.clear();
        self.nodes.clear();
        self.fact_edges.clear();
        self.edge_key.clear();
        self.edge_flows.clear();
        self.total_flow = 0;
        self.total_finite = 0;
        self.live_facts = 0;
        self.tombstones = 0;
        self.dirty.clear();
        self.residual_warm = false;
        csr.clear();
        let source = csr.add_vertex();
        let target = csr.add_vertex();
        csr.set_source(source);
        csr.set_target(target);
        for node in db.nodes() {
            let b = self.intern(db.node_name(node));
            self.emit_block(csr, ro, b);
        }
        for (fact_id, fact) in db.facts() {
            if ro.letter_transition(fact.label).is_none() {
                continue;
            }
            let u = self.nodes[db.node_name(fact.source)];
            let v = self.nodes[db.node_name(fact.target)];
            let cap = fact_cap(semantics, db.multiplicity(fact_id), db.is_exogenous(fact_id));
            self.push_fact(csr, ro, (u, fact.label, v), cap);
        }
    }

    /// Applies a fact delta to the retained network: cancellations first (on
    /// the still-frozen adjacency), then capacity updates and insertions.
    /// Returns `false` when flow cancellation fails (bookkeeping no longer
    /// trustworthy) — the caller rebuilds.
    fn apply(
        &mut self,
        csr: &mut CsrFlow,
        flow_scratch: &mut FlowScratch,
        ro: &RoEnfa,
        semantics: Semantics,
        delta: &[FactChange],
    ) -> bool {
        // Net effect per key, in first-touch order (last write wins).
        self.dirty.clear();
        let first_new_block = self.names.len();
        let mut net: Vec<((u32, Letter, u32), u128)> = Vec::with_capacity(delta.len());
        let mut index: HashMap<(u32, Letter, u32), usize> = HashMap::with_capacity(delta.len());
        for change in delta {
            match change {
                FactChange::Put { source, label, target, multiplicity, exogenous } => {
                    if ro.letter_transition(*label).is_none() {
                        continue; // the fact can never match: no edge needed
                    }
                    let u = self.intern(source);
                    let v = self.intern(target);
                    let key = (u, *label, v);
                    let cap = fact_cap(semantics, *multiplicity, *exogenous);
                    match index.get(&key) {
                        Some(&i) => net[i].1 = cap,
                        None => {
                            index.insert(key, net.len());
                            net.push((key, cap));
                        }
                    }
                }
                FactChange::Delete { source, label, target } => {
                    if ro.letter_transition(*label).is_none() {
                        continue;
                    }
                    // Unknown node names mean the fact cannot exist: no-op
                    // (and no block is interned for it).
                    let (Some(&u), Some(&v)) = (self.nodes.get(source), self.nodes.get(target))
                    else {
                        continue;
                    };
                    let key = (u, *label, v);
                    match index.get(&key) {
                        Some(&i) => net[i].1 = 0,
                        None => {
                            index.insert(key, net.len());
                            net.push((key, 0));
                        }
                    }
                }
            }
        }

        // Stage 1: cancel flow beyond each shrinking capacity while the
        // previous freeze's adjacency is still intact.
        for &(key, new_cap) in &net {
            if let Some(&e) = self.fact_edges.get(&key) {
                if new_cap < self.edge_flows[e.index()]
                    && !csr.cancel_flow(
                        e,
                        new_cap,
                        flow_scratch,
                        &mut self.edge_flows,
                        &mut self.total_flow,
                    )
                {
                    return false;
                }
            }
        }

        // Stage 2: capacity updates on existing edges; collect true inserts.
        let mut inserts: Vec<((u32, Letter, u32), u128)> = Vec::new();
        for &(key, new_cap) in &net {
            match self.fact_edges.get(&key) {
                Some(&e) => {
                    let old_cap = match csr.edge_capacity(e) {
                        Capacity::Finite(c) => c,
                        // lint: allow(panic-freedom, push_fact only creates finite capacities)
                        Capacity::Infinite => unreachable!("incremental edges are finite"),
                    };
                    if old_cap == new_cap {
                        continue;
                    }
                    // Keeps the network frozen whenever the edge still has
                    // residual arcs — delete/re-insert rings then skip the
                    // per-solve re-freeze entirely.
                    csr.patch_edge_capacity(e, Capacity::Finite(new_cap));
                    self.dirty.push(e);
                    if old_cap < INCR_INF {
                        self.total_finite -= old_cap;
                    }
                    if new_cap < INCR_INF {
                        self.total_finite += new_cap;
                    }
                    if old_cap == 0 {
                        self.tombstones -= 1;
                        self.live_facts += 1;
                    } else if new_cap == 0 {
                        self.tombstones += 1;
                        self.live_facts -= 1;
                    }
                }
                None if new_cap > 0 => inserts.push((key, new_cap)),
                None => {} // delete of an absent fact
            }
        }

        // Stage 3: vertices + structural edges for blocks the delta
        // introduced, then the new fact edges.
        for b in first_new_block..self.names.len() {
            self.emit_block(csr, ro, b as u32);
        }
        for (key, cap) in inserts {
            self.push_fact(csr, ro, key, cap);
        }
        true
    }

    /// Maps the cut of the incremental network back to facts of `db`.
    /// Tombstoned edges crossing the cut cost nothing and are absent from
    /// `db`, so they are skipped; the remaining facts form an optimal
    /// contingency set.
    fn cut_to_facts(&self, cut_edges: &[EdgeId], db: &GraphDb) -> Vec<FactId> {
        let mut facts = Vec::with_capacity(cut_edges.len());
        for &e in cut_edges {
            let (ub, letter, vb) = self.edge_key[e.index()];
            if ub == NO_KEY {
                continue;
            }
            let (Some(u), Some(v)) =
                (db.find_node(&self.names[ub as usize]), db.find_node(&self.names[vb as usize]))
            else {
                continue;
            };
            if let Some(f) = db.find_fact(u, letter, v) {
                facts.push(f);
            }
        }
        facts
    }
}

/// The incremental counterpart of [`super::local::solve_prepared`]: solve
/// `db` (the materialization of the *current* snapshot), patching the
/// retained network with `delta` (the changes since the previous solved
/// snapshot) when one is available and small enough, rebuilding otherwise.
/// Returns the outcome and whether the patch path ran.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_incremental_local(
    ro: &RoEnfa,
    rpq: &Rpq,
    db: &GraphDb,
    delta: Option<&[FactChange]>,
    flow: FlowAlgorithm,
    want_cut: bool,
    scratch: &mut SolveScratch,
    trace: &mut Trace,
) -> (ResilienceOutcome, SolveMode) {
    let semantics = rpq.semantics();

    // The number of fact edges the patched network must end up with — a
    // cheap lineage guard that catches databases from a different log.
    let expected_live = db.facts().filter(|(_, f)| ro.letter_transition(f.label).is_some()).count();

    let mut mode = SolveMode::Full;
    {
        let patch_timer = trace.begin();
        let SolveScratch { csr, flow: flow_scratch, incremental, .. } = &mut *scratch;
        let state = incremental.get_or_insert_with(Default::default);
        let patched = match delta {
            Some(delta)
                if !state.edge_flows.is_empty()
                    && state.num_states == ro.num_states()
                    && state.total_finite < INCR_INF / 2
                    && state.tombstones <= state.live_facts.max(16)
                    && delta.len()
                        <= (state.live_facts / INCREMENTAL_FALLBACK_DIVISOR)
                            .max(INCREMENTAL_FALLBACK_FLOOR) =>
            {
                state.apply(csr, flow_scratch, ro, semantics, delta)
                    && state.live_facts == expected_live
            }
            _ => false,
        };
        if patched {
            mode = SolveMode::Incremental;
            trace.end(patch_timer, "patch_apply");
        } else if delta.is_some_and(|d| {
            d.len() > (expected_live / INCREMENTAL_FALLBACK_DIVISOR).max(INCREMENTAL_FALLBACK_FLOOR)
        }) {
            // Oversized delta: the batch path's pruned build-and-solve is
            // measurably faster than rebuilding the unpruned retained
            // network (see the `resilience_under_updates` bench), so cede
            // this solve to it and invalidate the retained flows — the next
            // small delta bootstraps a fresh retained network instead.
            state.edge_flows.clear();
            state.residual_warm = false;
            return (
                super::local::solve_prepared(ro, rpq, db, flow, want_cut, scratch, trace),
                SolveMode::Full,
            );
        } else {
            state.build(csr, ro, semantics, db);
            trace.end(patch_timer, "rebuild");
        }
    }
    if scratch.incremental.as_ref().is_some_and(|s| s.total_finite >= INCR_INF / 2) {
        // Summed finite capacity close enough to INCR_INF that a genuine
        // finite cut could be misread as +∞: cede to the batch path, which
        // certifies its infinity bound against the actual capacity total.
        scratch.incremental = None;
        return (
            super::local::solve_prepared(ro, rpq, db, flow, want_cut, scratch, trace),
            SolveMode::Full,
        );
    }

    let SolveScratch { csr, flow: flow_scratch, incremental, .. } = scratch;
    // lint: allow(panic-freedom, the branch above just built or patched the state)
    let state = incremental.as_mut().expect("state was just built or patched");
    // A delta that only patched capacities leaves the freeze (and the
    // residual arrays of the previous resume) intact: resume warm, repairing
    // just the patched edges. Anything that unfroze the network — a rebuild,
    // fresh blocks, inserted edges — reloads the residuals in full.
    let warm = mode == SolveMode::Incremental && csr.is_frozen() && state.residual_warm;
    let freeze_timer = trace.begin();
    csr.freeze(); // no-op unless the delta appended blocks or fresh edges
    trace.end(freeze_timer, "csr_freeze");
    let resume_timer = trace.begin();
    let cut = csr.min_cut_resume(
        flow,
        flow_scratch,
        &mut state.edge_flows,
        &mut state.total_flow,
        INCR_INF,
        want_cut,
        if warm { Some(&state.dirty) } else { None },
    );
    state.residual_warm = true;
    debug_assert_eq!(
        csr.check_flow_consistency(&state.edge_flows, state.total_flow),
        Ok(()),
        "incremental resume left an infeasible retained flow"
    );
    let value = ResilienceValue::from(cut.value);
    trace.end(resume_timer, "flow_resume");
    let witness_timer = trace.begin();
    let facts = if want_cut && !value.is_infinite() {
        Some(state.cut_to_facts(cut.cut_edges, db))
    } else {
        None
    };
    trace.end(witness_timer, "witness_extract");
    debug_assert!(
        value.is_infinite()
            || facts.is_none()
            // lint: allow(panic-freedom, debug-only assertion guarded by the is_none disjunct)
            || rpq.is_contingency_set(db, &facts.as_ref().unwrap().iter().copied().collect()),
        "the incremental cut must map to a contingency set"
    );
    (ResilienceOutcome::new(value, Algorithm::Local, facts), mode)
}
