//! Resilience algorithms behind one engine-style dispatch layer.
//!
//! The tractable algorithms of the paper all reduce resilience to MinCut:
//!
//! * [`local`] — Theorem 3.13, for local languages (via RO-εNFA products);
//! * [`chain`] — Proposition 7.6, for bipartite chain languages;
//! * [`one_dangling`] — Proposition 7.9, for one-dangling languages (via a
//!   rewriting into a local-language instance over extended bag semantics).
//!
//! All of these reductions share a **prepare/solve lifecycle**, implemented
//! by [`crate::engine::Engine`]:
//!
//! 1. **Prepare (query-only, once per query).** [`crate::engine::Engine::prepare`]
//!    derives the infix-free sublanguage, runs the ε-check, the locality test
//!    (building the Theorem 3.13 RO-εNFA), the finiteness / bipartite-chain
//!    analysis, and the one-dangling decomposition, then fixes an
//!    [`Algorithm`] — all independent of any database. The cached plan is a
//!    [`crate::engine::PreparedQuery`]; its
//!    [`plan()`](crate::engine::PreparedQuery::plan) report says which
//!    algorithm will run and why.
//! 2. **Solve (per database, many times).**
//!    [`crate::engine::PreparedQuery::solve`] (or
//!    [`solve_batch`](crate::engine::PreparedQuery::solve_batch)) performs
//!    only the per-database half of the chosen reduction: building and
//!    cutting one flow network with the configured
//!    [`rpq_flow::FlowAlgorithm`], or running the exact / approximate
//!    solvers. Batch workloads over a fixed query never reclassify. All
//!    three flow-based reductions also extract an **optimal contingency
//!    set** from their minimum cut (for the one-dangling rewriting, by
//!    mapping cut edges of the rewritten instance back to original facts);
//!    value-only callers skip the extraction via `SolveOptions::want_cut`
//!    or the per-call
//!    [`solve_with_cut`](crate::engine::PreparedQuery::solve_with_cut).
//!
//! # Scratch reuse across solves
//!
//! The flow-based reductions do not allocate a fresh network per database.
//! Each solve builds its edges into the [`rpq_flow::CsrFlow`] arena of a
//! [`SolveScratch`] (cleared, never freed, between databases), freezes it
//! into CSR adjacency, and runs the configured backend over the scratch's
//! [`rpq_flow::FlowScratch`] buffers — which are reset by `clear()` +
//! `resize()`, so their capacity only ever grows. Edge → fact provenance is
//! a dense `Vec` in the same scratch: fact edges are emitted **first**, so
//! an arena edge id below `edge_fact.len()` indexes its fact directly and
//! wiring edges (ids past the prefix) need no map at all.
//!
//! The scratch's lifetime is tied to the prepared plan: every
//! [`crate::engine::PreparedQuery`] owns a pool of `SolveScratch` buffers,
//! checked out once per [`solve`](crate::engine::PreparedQuery::solve) call
//! (or once per worker thread in
//! [`solve_batch_parallel`](crate::engine::PreparedQuery::solve_batch_parallel),
//! where each chunk reuses one scratch across all its databases). After a
//! warm-up solve sizes the buffers, a batch over same-shaped databases
//! performs **zero** further allocations in the flow core — the engine's
//! tests assert this via [`SolveScratch::capacity_signature`].
//!
//! **The engine is the single entry point for computing resilience.** The
//! CLI, the integration tests, and the benchmarks all go through it — either
//! directly or via the thin compatibility wrappers [`solve`] (automatic
//! backend choice) and [`solve_with`] (explicit backend, including the exact
//! oracles of [`crate::exact`] and the certified approximations of
//! [`crate::approx`], see [`Algorithm`]), which delegate to a default
//! [`crate::engine::Engine`]. The per-module functions are implementation
//! details: call them directly only from the engine and from their own unit
//! tests, so every consumer benefits from dispatch-level invariants
//! (ε-handling, infix-free reduction, outcome normalization) and backends can
//! be swapped without touching call sites.

pub mod chain;
pub(crate) mod incremental;
pub mod local;
pub mod one_dangling;

use crate::approx::{ApproxError, ApproximateResilience};
use crate::engine::Engine;
use crate::rpq::{ResilienceValue, Rpq};
use rpq_automata::AutomataError;
use rpq_flow::{CsrFlow, FlowScratch};
use rpq_graphdb::{FactId, GraphDb};
use std::fmt;

/// Reusable per-solve buffers of the flow-based reductions (see the
/// *scratch reuse* section of the [module docs](self)): the [`CsrFlow`]
/// arena the reduction builds into, the [`FlowScratch`] the backend solves
/// over, and the dense provenance / vertex-lookup vectors. One scratch is
/// checked out of the owning [`crate::engine::PreparedQuery`]'s pool per
/// solve (or per batch worker) and reset — never reallocated — between
/// databases.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// The CSR flow arena the reductions build and freeze per database.
    pub(crate) csr: CsrFlow,
    /// Solver state for [`CsrFlow::min_cut`].
    pub(crate) flow: FlowScratch,
    /// Edge → fact provenance. Fact edges are emitted into the arena first,
    /// so `edge_fact[edge.index()]` is the `FactId` of every edge with index
    /// below `edge_fact.len()`; later (wiring) edges have no fact.
    pub(crate) edge_fact: Vec<u32>,
    /// Fact → start-vertex lookup of the chain reduction, indexed by
    /// `FactId`; `u32::MAX` marks facts absent from the network. The end
    /// vertex of a fact is always `start + 1`.
    pub(crate) fact_vertex: Vec<u32>,
    /// Per-node bitmask of *enterable* automaton states (states a query path
    /// can be in when arriving at the node), used by the local reduction's
    /// product pruning. Indexed by `NodeId`; valid for automata ≤ 64 states.
    pub(crate) node_in: Vec<u64>,
    /// Per-node bitmask of *exitable* automaton states (see `node_in`).
    pub(crate) node_out: Vec<u64>,
    /// Per-node first compacted product-vertex id of the local reduction
    /// (prefix sums of used-state counts).
    pub(crate) node_base: Vec<u32>,
    /// Per-(node, state) compacted local vertex slot of the local reduction
    /// (`u8::MAX` = pruned), laid out as `node * num_states + state`. States
    /// merged by ε-contraction share a slot.
    pub(crate) node_slot: Vec<u8>,
    /// Retained network + flow of the incremental local solver (`None` until
    /// a [`crate::engine::PreparedQuery::solve_incremental`] call builds it).
    /// Boxed so plain solves don't pay for it; **plain solves clobber the
    /// `csr` arena this state describes**, which is why incremental solves
    /// run on a dedicated [`crate::engine::IncrementalSolver`]-owned scratch
    /// rather than the pooled ones.
    pub(crate) incremental: Option<Box<incremental::IncrementalLocalState>>,
}

impl SolveScratch {
    /// A scratch with no capacity reserved.
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }

    /// The capacities of every internal buffer. Used to assert the reuse
    /// contract: once warmed up on a batch's shape, further solves must not
    /// change the signature (zero reallocations).
    pub fn capacity_signature(&self) -> ([usize; 10], [usize; 13], [usize; 6]) {
        (
            self.csr.capacity_signature(),
            self.flow.capacity_signature(),
            [
                self.edge_fact.capacity(),
                self.fact_vertex.capacity(),
                self.node_in.capacity(),
                self.node_out.capacity(),
                self.node_base.capacity(),
                self.node_slot.capacity(),
            ],
        )
    }
}

/// Errors raised by the resilience algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// An underlying language analysis failed.
    Automata(AutomataError),
    /// The requested algorithm does not apply to the query's language.
    NotApplicable {
        /// The algorithm that was requested.
        algorithm: Algorithm,
        /// Why it does not apply.
        reason: String,
    },
    /// The database exceeds the subset-enumeration oracle's fact limit
    /// (`SolveOptions::enumeration_limit`): enumerating `2^facts` subsets is
    /// not going to finish.
    InstanceTooLarge {
        /// The number of endogenous facts of the database.
        facts: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The query escapes every known tractable family and the engine was
    /// configured with `SolveOptions::exact_fallback = false`.
    ExactFallbackDisabled {
        /// A rendering of the query's language.
        query: String,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Automata(e) => write!(f, "language analysis failed: {e}"),
            ResilienceError::NotApplicable { algorithm, reason } => {
                write!(f, "`{algorithm}` does not apply: {reason}")
            }
            ResilienceError::InstanceTooLarge { facts, limit } => write!(
                f,
                "the database has {facts} endogenous facts, above the subset-enumeration \
                 limit of {limit}"
            ),
            ResilienceError::ExactFallbackDisabled { query } => write!(
                f,
                "`{query}` escapes every known tractable family and the exact fallback is \
                 disabled (SolveOptions::exact_fallback)"
            ),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<AutomataError> for ResilienceError {
    fn from(e: AutomataError) -> Self {
        ResilienceError::Automata(e)
    }
}

/// The algorithm used to compute a resilience value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Theorem 3.13: RO-εNFA product reduction to MinCut (local languages).
    Local,
    /// Proposition 7.6: bipartite-chain reduction to MinCut.
    BipartiteChain,
    /// Proposition 7.9: one-dangling rewriting + local reduction.
    OneDangling,
    /// Exponential branch and bound over witness walks (always applicable).
    ExactBranchAndBound,
    /// Exponential subset enumeration (reference oracle, ≤ 24 facts).
    ExactEnumeration,
    /// Greedy hitting set over the hypergraph of matches: a certified
    /// `O(log m)`-approximation for finite languages.
    ApproxGreedy,
    /// Disjoint-matches `k`-approximation for finite languages (`k` = maximum
    /// word length of the infix-free sublanguage).
    ApproxKDisjoint,
    /// The always-applicable certified sandwich of last resort: `0` when the
    /// query does not hold, `+∞` when even deleting every endogenous fact
    /// cannot break it, and `[min fact cost, cost(all endogenous facts)]`
    /// otherwise. Linear time; the router's final degradation tier.
    TrivialBounds,
}

impl Algorithm {
    /// Every selectable backend, in dispatcher preference order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Local,
        Algorithm::BipartiteChain,
        Algorithm::OneDangling,
        Algorithm::ExactBranchAndBound,
        Algorithm::ExactEnumeration,
        Algorithm::ApproxGreedy,
        Algorithm::ApproxKDisjoint,
        Algorithm::TrivialBounds,
    ];

    /// The stable command-line name of the backend (see [`Algorithm::from_str`]).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Local => "local",
            Algorithm::BipartiteChain => "chain",
            Algorithm::OneDangling => "one-dangling",
            Algorithm::ExactBranchAndBound => "exact",
            Algorithm::ExactEnumeration => "enumeration",
            Algorithm::ApproxGreedy => "greedy",
            Algorithm::ApproxKDisjoint => "k-approx",
            Algorithm::TrivialBounds => "trivial-bounds",
        }
    }

    /// Whether the backend always returns the exact resilience (as opposed to
    /// a certified upper bound).
    pub fn is_exact(self) -> bool {
        !matches!(
            self,
            Algorithm::ApproxGreedy | Algorithm::ApproxKDisjoint | Algorithm::TrivialBounds
        )
    }

    /// The complexity tier of the backend, used as a metrics label: the
    /// polynomial algorithms of the paper are `"poly"`, the exponential ground
    /// truths `"exact"`, and the certified approximations `"approx"`.
    pub fn tier(self) -> &'static str {
        match self {
            Algorithm::Local | Algorithm::BipartiteChain | Algorithm::OneDangling => "poly",
            Algorithm::ExactBranchAndBound | Algorithm::ExactEnumeration => "exact",
            Algorithm::ApproxGreedy | Algorithm::ApproxKDisjoint | Algorithm::TrivialBounds => {
                "approx"
            }
        }
    }
}

/// The trace phase name for a resolved flow backend (see
/// [`rpq_flow::CutTimings`]).
pub(crate) fn flow_phase(backend: rpq_flow::FlowAlgorithm) -> &'static str {
    match backend {
        rpq_flow::FlowAlgorithm::Dinic => "flow_solve_dinic",
        rpq_flow::FlowAlgorithm::EdmondsKarp => "flow_solve_edmonds_karp",
        rpq_flow::FlowAlgorithm::PushRelabel => "flow_solve_push_relabel",
        rpq_flow::FlowAlgorithm::Auto => "flow_solve",
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(name: &str) -> Result<Self, Self::Err> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| format!("unknown algorithm `{name}`"))
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of a resilience computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceOutcome {
    /// The resilience value. For the approximation backends this is the
    /// certified **upper bound** (the cost of `contingency_set`); see
    /// [`ResilienceOutcome::bounds`].
    pub value: ResilienceValue,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// An optimal contingency set, when the algorithm produces one. Every
    /// flow-based tractable backend extracts a witness from its minimum cut
    /// (including the one-dangling rewriting, which maps the cut of the
    /// rewritten instance back to original facts); the enumeration oracle
    /// only certifies the value, and `SolveOptions::want_cut = false`
    /// suppresses extraction everywhere.
    pub contingency_set: Option<Vec<FactId>>,
    /// Certified `lower ≤ RES(Q, D) ≤ upper` bounds, reported by the
    /// approximation backends; `None` for the exact backends.
    pub bounds: Option<(u128, u128)>,
}

impl ResilienceOutcome {
    /// An exact outcome (no approximation bounds).
    pub fn new(
        value: ResilienceValue,
        algorithm: Algorithm,
        contingency_set: Option<Vec<FactId>>,
    ) -> Self {
        ResilienceOutcome { value, algorithm, contingency_set, bounds: None }
    }

    fn from_approximation(algorithm: Algorithm, approx: ApproximateResilience) -> Self {
        // Certified means certified: a crossed sandwich would silently
        // truncate the feasible interval, so reject it outright.
        assert!(
            approx.lower_bound <= approx.upper_bound,
            "`{algorithm}` produced crossed bounds {} > {}",
            approx.lower_bound,
            approx.upper_bound
        );
        ResilienceOutcome {
            value: ResilienceValue::Finite(approx.upper_bound),
            algorithm,
            contingency_set: Some(approx.contingency_set.into_iter().collect()),
            bounds: Some((approx.lower_bound, approx.upper_bound)),
        }
    }

    /// Whether the outcome is the exact resilience: produced by an exact
    /// backend, or by an approximation whose bounds coincide.
    pub fn is_exact(&self) -> bool {
        match self.bounds {
            None => self.algorithm.is_exact(),
            Some((lower, upper)) => lower == upper,
        }
    }
}

/// Computes the resilience of `rpq` on `db`, picking the best applicable
/// algorithm for the query's infix-free sublanguage:
///
/// 1. `IF(L)` local → [`local`] (Theorem 3.13);
/// 2. `IF(L)` a bipartite chain language → [`chain`] (Proposition 7.6);
/// 3. `IF(L)` one-dangling → [`one_dangling`] (Proposition 7.9);
/// 4. otherwise → exponential exact branch and bound (the problem is NP-hard
///    for every language known to escape 1–3, see Sections 4–6).
///
/// This is a thin compatibility wrapper over a default
/// [`Engine`](crate::engine::Engine): batch workloads should call
/// [`Engine::prepare`](crate::engine::Engine::prepare) once and reuse the
/// [`PreparedQuery`](crate::engine::PreparedQuery) instead.
pub fn solve(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    Engine::new().solve(rpq, db)
}

/// Computes the resilience with an explicitly chosen algorithm, failing with
/// [`ResilienceError::NotApplicable`] when the language does not qualify.
///
/// Thin compatibility wrapper over a default [`Engine`](crate::engine::Engine)
/// (see [`solve`]).
pub fn solve_with(
    algorithm: Algorithm,
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<ResilienceOutcome, ResilienceError> {
    Engine::new().solve_with(algorithm, rpq, db)
}

/// Lifts an approximation result into the engine's outcome type: cases where
/// the resilience is provably `+∞` (ε ∈ L, or a match made of exogenous facts
/// only) become regular infinite outcomes, and only a genuinely inapplicable
/// language (infinite, so the hypergraph of matches cannot be built) surfaces
/// as [`ResilienceError::NotApplicable`].
pub(crate) fn normalize_approximation(
    algorithm: Algorithm,
    result: Result<ApproximateResilience, ApproxError>,
) -> Result<ResilienceOutcome, ResilienceError> {
    match result {
        Ok(approx) => Ok(ResilienceOutcome::from_approximation(algorithm, approx)),
        Err(ApproxError::InfiniteResilience) | Err(ApproxError::ProtectedMatch) => {
            Ok(ResilienceOutcome::new(ResilienceValue::Infinite, algorithm, None))
        }
        Err(e @ ApproxError::NotFinite) => {
            Err(ResilienceError::NotApplicable { algorithm, reason: e.to_string() })
        }
    }
}

/// Computes the resilience of the mirror query on the mirror database
/// (Proposition 6.3): the value always equals `solve(rpq, db)`.
pub fn solve_mirrored(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    solve(&rpq.mirror(), &db.reversed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Word;
    use rpq_graphdb::generate::word_path;

    #[test]
    fn dispatcher_picks_the_right_algorithm() {
        let db = word_path(&Word::from_str_word("axb"));
        let out = solve(&Rpq::parse("ax*b").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::Local);

        let db = word_path(&Word::from_str_word("abc"));
        let out = solve(&Rpq::parse("ab|bc").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::BipartiteChain);

        let out = solve(&Rpq::parse("abc|be").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::OneDangling);

        let db = word_path(&Word::from_str_word("aa"));
        let out = solve(&Rpq::parse("aa").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::ExactBranchAndBound);
    }

    #[test]
    fn epsilon_queries_are_infinite() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = solve(&Rpq::parse("a*").unwrap(), &db).unwrap();
        assert!(out.value.is_infinite());
    }

    #[test]
    fn infix_free_reduction_is_applied_by_the_dispatcher() {
        // L = a | aa: IF(L) = a, which is local, even though L itself is not.
        let db = word_path(&Word::from_str_word("aaa"));
        let out = solve(&Rpq::parse("a|aa").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::Local);
        // Every a-fact must go: resilience 3.
        assert_eq!(out.value, ResilienceValue::Finite(3));
    }

    #[test]
    fn mirror_invariance_proposition_6_3() {
        let db = word_path(&Word::from_str_word("axxb"));
        for pattern in ["ax*b", "ab|bc", "aa", "axb"] {
            let q = Rpq::parse(pattern).unwrap();
            let direct = solve(&q, &db).unwrap().value;
            let mirrored = solve_mirrored(&q, &db).unwrap().value;
            assert_eq!(direct, mirrored, "{pattern}");
        }
    }

    #[test]
    fn not_applicable_errors() {
        let db = word_path(&Word::from_str_word("aa"));
        let q = Rpq::parse("aa").unwrap();
        assert!(matches!(
            solve_with(Algorithm::Local, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(matches!(
            solve_with(Algorithm::BipartiteChain, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(matches!(
            solve_with(Algorithm::OneDangling, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(solve_with(Algorithm::ExactBranchAndBound, &q, &db).is_ok());
        let err = solve_with(Algorithm::Local, &q, &db).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }

    #[test]
    fn exact_backends_agree_through_the_dispatcher() {
        let db = word_path(&Word::from_str_word("aaaa"));
        let q = Rpq::parse("aa").unwrap();
        let bb = solve_with(Algorithm::ExactBranchAndBound, &q, &db).unwrap();
        let enumerated = solve_with(Algorithm::ExactEnumeration, &q, &db).unwrap();
        assert_eq!(bb.value, enumerated.value);
        assert_eq!(enumerated.algorithm, Algorithm::ExactEnumeration);
        assert!(enumerated.contingency_set.is_none());
        assert!(enumerated.is_exact());
    }

    #[test]
    fn approximation_backends_report_certified_bounds() {
        let db = word_path(&Word::from_str_word("aaaa"));
        let q = Rpq::parse("aa").unwrap();
        let exact = solve_with(Algorithm::ExactBranchAndBound, &q, &db).unwrap().value;
        for algorithm in [Algorithm::ApproxGreedy, Algorithm::ApproxKDisjoint] {
            let out = solve_with(algorithm, &q, &db).unwrap();
            let (lower, upper) = out.bounds.expect("approximations certify bounds");
            assert_eq!(out.value, ResilienceValue::Finite(upper));
            let exact = exact.finite().unwrap();
            assert!(lower <= exact && exact <= upper, "{algorithm}");
            assert!(!out.algorithm.is_exact());
        }
    }

    #[test]
    fn approximations_normalize_infinite_cases_like_the_exact_backends() {
        let db = word_path(&Word::from_str_word("aa"));
        // ε ∈ L: the resilience is +∞, not an error.
        let q = Rpq::parse("a*").unwrap();
        for algorithm in [Algorithm::ApproxGreedy, Algorithm::ApproxKDisjoint] {
            assert!(solve_with(algorithm, &q, &db).unwrap().value.is_infinite());
        }
        // Every matched fact exogenous: also +∞.
        let mut db = word_path(&Word::from_str_word("aa"));
        for fact in db.fact_ids().collect::<Vec<_>>() {
            db.set_exogenous(fact, true);
        }
        let q = Rpq::parse("aa").unwrap();
        for algorithm in [Algorithm::ApproxGreedy, Algorithm::ApproxKDisjoint] {
            assert!(solve_with(algorithm, &q, &db).unwrap().value.is_infinite());
        }
        // An infinite language stays genuinely inapplicable.
        let q = Rpq::parse("ax*b").unwrap();
        for algorithm in [Algorithm::ApproxGreedy, Algorithm::ApproxKDisjoint] {
            assert!(matches!(
                solve_with(algorithm, &q, &db),
                Err(ResilienceError::NotApplicable { .. })
            ));
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algorithm in Algorithm::ALL {
            assert_eq!(algorithm.name().parse::<Algorithm>().unwrap(), algorithm);
        }
        assert!("bogus".parse::<Algorithm>().is_err());
    }
}
