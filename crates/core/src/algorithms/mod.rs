//! Resilience algorithms.
//!
//! The tractable algorithms of the paper all reduce resilience to MinCut:
//!
//! * [`local`] — Theorem 3.13, for local languages (via RO-εNFA products);
//! * [`chain`] — Proposition 7.6, for bipartite chain languages;
//! * [`one_dangling`] — Proposition 7.9, for one-dangling languages (via a
//!   rewriting into a local-language instance over extended bag semantics).
//!
//! The [`solve`] dispatcher inspects the infix-free sublanguage of the query,
//! picks the most efficient applicable algorithm, and otherwise falls back to
//! the exponential exact solver of [`crate::exact`].

pub mod chain;
pub mod local;
pub mod one_dangling;

use crate::exact::resilience_exact;
use crate::rpq::{ResilienceValue, Rpq};
use rpq_automata::finite::{one_dangling_decomposition, FiniteLanguage};
use rpq_automata::local::is_local;
use rpq_automata::AutomataError;
use rpq_graphdb::{FactId, GraphDb};
use std::fmt;

/// Errors raised by the resilience algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// An underlying language analysis failed.
    Automata(AutomataError),
    /// The requested algorithm does not apply to the query's language.
    NotApplicable {
        /// The algorithm that was requested.
        algorithm: Algorithm,
        /// Why it does not apply.
        reason: String,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Automata(e) => write!(f, "language analysis failed: {e}"),
            ResilienceError::NotApplicable { algorithm, reason } => {
                write!(f, "{algorithm:?} does not apply: {reason}")
            }
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<AutomataError> for ResilienceError {
    fn from(e: AutomataError) -> Self {
        ResilienceError::Automata(e)
    }
}

/// The algorithm used to compute a resilience value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Theorem 3.13: RO-εNFA product reduction to MinCut (local languages).
    Local,
    /// Proposition 7.6: bipartite-chain reduction to MinCut.
    BipartiteChain,
    /// Proposition 7.9: one-dangling rewriting + local reduction.
    OneDangling,
    /// Exponential branch and bound over witness walks (always applicable).
    ExactBranchAndBound,
}

/// The outcome of a resilience computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceOutcome {
    /// The resilience value.
    pub value: ResilienceValue,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// An optimal contingency set, when the algorithm produces one
    /// (the one-dangling rewriting only certifies the value).
    pub contingency_set: Option<Vec<FactId>>,
}

/// Computes the resilience of `rpq` on `db`, picking the best applicable
/// algorithm for the query's infix-free sublanguage:
///
/// 1. `IF(L)` local → [`local`] (Theorem 3.13);
/// 2. `IF(L)` a bipartite chain language → [`chain`] (Proposition 7.6);
/// 3. `IF(L)` one-dangling → [`one_dangling`] (Proposition 7.9);
/// 4. otherwise → exponential exact branch and bound (the problem is NP-hard
///    for every language known to escape 1–3, see Sections 4–6).
pub fn solve(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    let if_language = rpq.infix_free_language();
    if if_language.contains_epsilon() {
        return Ok(ResilienceOutcome {
            value: ResilienceValue::Infinite,
            algorithm: Algorithm::Local,
            contingency_set: None,
        });
    }
    if is_local(&if_language) {
        return local::resilience_local(rpq, db);
    }
    if let Ok(finite) = FiniteLanguage::from_language(&if_language) {
        if finite.is_bipartite_chain_language() {
            return chain::resilience_bipartite_chain(rpq, db);
        }
    }
    if !db.has_exogenous_facts() && one_dangling_decomposition(&if_language).is_some() {
        return one_dangling::resilience_one_dangling(rpq, db);
    }
    let exact = resilience_exact(rpq, db);
    Ok(ResilienceOutcome {
        value: exact.value,
        algorithm: Algorithm::ExactBranchAndBound,
        contingency_set: Some(exact.contingency_set.into_iter().collect()),
    })
}

/// Computes the resilience with an explicitly chosen algorithm, failing with
/// [`ResilienceError::NotApplicable`] when the language does not qualify.
pub fn solve_with(
    algorithm: Algorithm,
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<ResilienceOutcome, ResilienceError> {
    match algorithm {
        Algorithm::Local => local::resilience_local(rpq, db),
        Algorithm::BipartiteChain => chain::resilience_bipartite_chain(rpq, db),
        Algorithm::OneDangling => one_dangling::resilience_one_dangling(rpq, db),
        Algorithm::ExactBranchAndBound => {
            let exact = resilience_exact(rpq, db);
            Ok(ResilienceOutcome {
                value: exact.value,
                algorithm: Algorithm::ExactBranchAndBound,
                contingency_set: Some(exact.contingency_set.into_iter().collect()),
            })
        }
    }
}

/// Computes the resilience of the mirror query on the mirror database
/// (Proposition 6.3): the value always equals `solve(rpq, db)`.
pub fn solve_mirrored(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    solve(&rpq.mirror(), &db.reversed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_automata::Word;
    use rpq_graphdb::generate::word_path;

    #[test]
    fn dispatcher_picks_the_right_algorithm() {
        let db = word_path(&Word::from_str_word("axb"));
        let out = solve(&Rpq::parse("ax*b").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::Local);

        let db = word_path(&Word::from_str_word("abc"));
        let out = solve(&Rpq::parse("ab|bc").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::BipartiteChain);

        let out = solve(&Rpq::parse("abc|be").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::OneDangling);

        let db = word_path(&Word::from_str_word("aa"));
        let out = solve(&Rpq::parse("aa").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::ExactBranchAndBound);
    }

    #[test]
    fn epsilon_queries_are_infinite() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = solve(&Rpq::parse("a*").unwrap(), &db).unwrap();
        assert!(out.value.is_infinite());
    }

    #[test]
    fn infix_free_reduction_is_applied_by_the_dispatcher() {
        // L = a | aa: IF(L) = a, which is local, even though L itself is not.
        let db = word_path(&Word::from_str_word("aaa"));
        let out = solve(&Rpq::parse("a|aa").unwrap(), &db).unwrap();
        assert_eq!(out.algorithm, Algorithm::Local);
        // Every a-fact must go: resilience 3.
        assert_eq!(out.value, ResilienceValue::Finite(3));
    }

    #[test]
    fn mirror_invariance_proposition_6_3() {
        let db = word_path(&Word::from_str_word("axxb"));
        for pattern in ["ax*b", "ab|bc", "aa", "axb"] {
            let q = Rpq::parse(pattern).unwrap();
            let direct = solve(&q, &db).unwrap().value;
            let mirrored = solve_mirrored(&q, &db).unwrap().value;
            assert_eq!(direct, mirrored, "{pattern}");
        }
    }

    #[test]
    fn not_applicable_errors() {
        let db = word_path(&Word::from_str_word("aa"));
        let q = Rpq::parse("aa").unwrap();
        assert!(matches!(
            solve_with(Algorithm::Local, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(matches!(
            solve_with(Algorithm::BipartiteChain, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(matches!(
            solve_with(Algorithm::OneDangling, &q, &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
        assert!(solve_with(Algorithm::ExactBranchAndBound, &q, &db).is_ok());
        let err = solve_with(Algorithm::Local, &q, &db).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }
}
