//! Theorem 3.13: resilience of local languages via MinCut.
//!
//! Given an RO-εNFA `A` for the (local) language and a bag database `D`, build
//! the flow network `N_{D,A}`:
//!
//! * vertices `(v, s)` for every database node `v` and automaton state `s`,
//!   plus a fresh source and target;
//! * for every fact `v --a--> v'` and the **unique** `a`-transition `(s, a, s')`
//!   of `A`, an edge `(v, s) → (v', s')` with capacity `mult(v --a--> v')`;
//! * for every ε-transition `(s, s')` and node `v`, an edge
//!   `(v, s) → (v, s')` with capacity `+∞`;
//! * edges of capacity `+∞` from the source to every `(v, s)` with `s` initial,
//!   and from every `(v, s)` with `s` final to the target.
//!
//! Because `A` is read-once, finite-capacity edges are in one-to-one
//! correspondence with facts, so minimum cuts correspond to minimum
//! contingency sets.

use super::{Algorithm, ResilienceError, ResilienceOutcome, SolveScratch};
use crate::rpq::{ResilienceValue, Rpq, Semantics};
use rpq_automata::local::is_local;
use rpq_automata::ro_enfa::RoEnfa;
use rpq_automata::Language;
use rpq_flow::{Capacity, FlowAlgorithm, VertexId};
use rpq_graphdb::{FactId, GraphDb};
use rpq_obs::Trace;

/// Computes the resilience of a query whose infix-free sublanguage is local
/// (Theorem 3.13). Errors with [`ResilienceError::NotApplicable`] otherwise.
pub fn resilience_local(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    let language = rpq.infix_free_language();
    if !is_local(&language) {
        return Err(ResilienceError::NotApplicable {
            algorithm: Algorithm::Local,
            reason: format!("IF({}) is not a local language", rpq.language()),
        });
    }
    if language.contains_epsilon() {
        return Ok(ResilienceOutcome::new(ResilienceValue::Infinite, Algorithm::Local, None));
    }
    let ro = RoEnfa::for_local_language(&language)?;
    Ok(solve_prepared(
        &ro,
        rpq,
        db,
        FlowAlgorithm::default(),
        true,
        &mut SolveScratch::new(),
        &mut Trace::disabled(),
    ))
}

/// Runs the Theorem 3.13 reduction for an already-prepared RO-εNFA: the
/// query-only analysis (locality test, ε-check, automaton construction) has
/// been done by the caller, so this is the per-database half of the algorithm.
/// Used by [`crate::engine::PreparedQuery`] to solve batches without
/// re-deriving the plan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_prepared(
    ro: &RoEnfa,
    rpq: &Rpq,
    db: &GraphDb,
    flow: FlowAlgorithm,
    want_cut: bool,
    scratch: &mut SolveScratch,
    trace: &mut Trace,
) -> ResilienceOutcome {
    let (value, cut) =
        resilience_via_ro_enfa(ro, db, rpq.semantics(), flow, scratch, trace, |_| true);
    debug_assert!(
        value.is_infinite() || rpq.is_contingency_set(db, &cut.iter().copied().collect()),
        "the extracted cut must be a contingency set"
    );
    ResilienceOutcome::new(value, Algorithm::Local, want_cut.then_some(cut))
}

/// Runs the Theorem 3.13 product construction for an explicit RO-εNFA, with a
/// per-fact filter (`fact_filter` returns `false` for facts that should be
/// ignored entirely — used by the one-dangling rewriting). Returns the
/// resilience value and the facts of a minimum cut.
///
/// The network is built into `scratch`'s CSR arena and solved over its flow
/// buffers: nothing is allocated once the scratch is warmed up to the batch's
/// shape. Fact edges are emitted first so their arena ids directly index the
/// dense `edge_fact` provenance vector.
///
/// # Product pruning and vertex compaction
///
/// The textbook product has `|V| · |Q|` vertices and an ε / source / target
/// edge for *every* node — but on real databases most product vertices can
/// never lie on a source→target path (a node with no `a`-labelled out-fact
/// contributes nothing at the `a`-transition's origin state). For automata of
/// ≤ 64 states the build therefore computes, per node, bitmasks of
/// *enterable* states (ε-closure of the states its incoming facts and the
/// initial states land in) and *exitable* states (ε-co-closure of the states
/// its outgoing facts and the final states leave from), and emits an edge only
/// when its tail is enterable and its head exitable. Every source→target path
/// of the full product enters and exits each vertex it crosses, so each of its
/// edges passes the test: the pruned network preserves all paths, hence the
/// min-cut value, and any cut of it separates the full product. Used vertices
/// (enterable ∧ exitable) are compacted to dense ids so the CSR arrays and the
/// solver's per-vertex state shrink with the network. Automata above 64
/// states (alphabets beyond what a `u64` mask holds) take the unpruned build.
///
/// # ε-contraction
///
/// An emitted ε-edge `(v, s) → (v, s')` that is its tail's **only** out-edge
/// and its head's **only** in-edge can be contracted: some minimum cut places
/// both endpoints on the same side. If a cut has `(v, s) ∈ S` and
/// `(v, s') ∈ T` it cuts the infinite ε-edge, so only the `tail ∈ T`,
/// `head ∈ S` split can occur in a finite cut — and moving the tail to `S`
/// removes its incoming cut edges while adding none (its only out-edge now
/// stays inside `S`), so the cut value never increases. The condition composes
/// along chains: contracted edges form paths whose interior vertices have
/// in-degree = out-degree = 1, and any boundary vertex can be moved across
/// one edge at a time without increasing the cut. On automata in the shape
/// the locality construction produces (entry/exit state pairs linked by ε),
/// this collapses most product nodes to a single vertex, roughly halving the
/// network again on top of the mask pruning.
#[allow(clippy::too_many_arguments)]
pub(crate) fn resilience_via_ro_enfa(
    ro: &RoEnfa,
    db: &GraphDb,
    semantics: Semantics,
    flow: FlowAlgorithm,
    scratch: &mut SolveScratch,
    trace: &mut Trace,
    fact_filter: impl Fn(FactId) -> bool,
) -> (ResilienceValue, Vec<FactId>) {
    let build_timer = trace.begin();
    let SolveScratch {
        csr,
        flow: flow_scratch,
        edge_fact,
        node_in,
        node_out,
        node_base,
        node_slot,
        ..
    } = scratch;
    let num_states = ro.num_states();
    let num_nodes = db.num_nodes();
    csr.clear();
    edge_fact.clear();

    let capacity_of = |fact_id: FactId| {
        // Exogenous facts can never be cut: they get capacity +∞, exactly
        // like the structural edges of the construction.
        if db.is_exogenous(fact_id) {
            Capacity::Infinite
        } else {
            Capacity::Finite(semantics.fact_cost(db, fact_id) as u128)
        }
    };

    if num_states <= 64 {
        let eps: Vec<(usize, usize)> = ro.epsilon_transitions().collect();
        // ε-closures on the state graph: fwd[s] = states ε-reachable from
        // `s`, bwd[s] = states that ε-reach `s` (both include `s`).
        let mut fwd = [0u64; 64];
        let mut bwd = [0u64; 64];
        for s in 0..num_states {
            fwd[s] = 1 << s;
            bwd[s] = 1 << s;
        }
        loop {
            let mut changed = false;
            for &(s, s_prime) in &eps {
                let f = fwd[s] | fwd[s_prime];
                changed |= f != fwd[s];
                fwd[s] = f;
                let b = bwd[s_prime] | bwd[s];
                changed |= b != bwd[s_prime];
                bwd[s_prime] = b;
            }
            if !changed {
                break;
            }
        }
        let mut init_mask: u64 = 0;
        for s in ro.initial_states() {
            init_mask |= 1 << s;
        }
        let mut final_mask: u64 = 0;
        for s in ro.final_states() {
            final_mask |= 1 << s;
        }

        // Pass 1: which states do facts enter / leave each node at?
        node_in.clear();
        node_in.resize(num_nodes, 0);
        node_out.clear();
        node_out.resize(num_nodes, 0);
        for (fact_id, fact) in db.facts() {
            if !fact_filter(fact_id) {
                continue;
            }
            if let Some((s, s_prime)) = ro.letter_transition(fact.label) {
                node_out[fact.source.0 as usize] |= 1 << s;
                node_in[fact.target.0 as usize] |= 1 << s_prime;
            }
        }

        // Close per node (the source attaches at initial states and the
        // target at final states, so those seed the masks), ε-contract, and
        // assign compact slots to the surviving product-vertex classes. An
        // ε-edge `(s, s')` is emitted at `v` iff both endpoints are used:
        // tail enterable and head exitable are the emission conditions, and
        // the ε-edge itself supplies the tail's exit and the head's entry.
        // The same equivalence makes "slot assigned" the single emission test
        // for fact, ε, source, and target edges below.
        let close = |mask: u64, table: &[u64; 64]| {
            let mut m = mask;
            let mut acc = 0u64;
            while m != 0 {
                acc |= table[m.trailing_zeros() as usize];
                m &= m - 1;
            }
            acc
        };
        fn find(parent: &mut [u8; 64], mut s: usize) -> usize {
            while parent[s] as usize != s {
                let p = parent[s] as usize;
                parent[s] = parent[p];
                s = p;
            }
            s
        }
        node_base.clear();
        node_base.reserve(num_nodes);
        node_slot.clear();
        node_slot.resize(num_nodes * num_states, u8::MAX);
        let mut next: u32 = 0;
        for v in 0..num_nodes {
            let fact_in = node_in[v];
            let fact_out = node_out[v];
            node_base.push(next);
            let used = close(fact_in | init_mask, &fwd) & close(fact_out | final_mask, &bwd);
            if used == 0 {
                continue;
            }
            // Union-find over this node's states: merge the endpoints of
            // every contractible ε-edge (see the module-level soundness
            // argument). An edge qualifies when it is its tail's only
            // out-edge (no fact leaves there, the state is not final, no
            // other emitted ε shares the tail) and its head's only in-edge.
            let mut parent = [0u8; 64];
            for (s, p) in parent.iter_mut().enumerate().take(num_states) {
                *p = s as u8;
            }
            if !eps.is_empty() {
                let mut out_deg = [0u8; 64];
                let mut in_deg = [0u8; 64];
                for &(s, s_prime) in &eps {
                    if used >> s & 1 == 1 && used >> s_prime & 1 == 1 {
                        out_deg[s] = out_deg[s].saturating_add(1);
                        in_deg[s_prime] = in_deg[s_prime].saturating_add(1);
                    }
                }
                for &(s, s_prime) in &eps {
                    if used >> s & 1 == 1
                        && used >> s_prime & 1 == 1
                        && out_deg[s] == 1
                        && fact_out >> s & 1 == 0
                        && final_mask >> s & 1 == 0
                        && in_deg[s_prime] == 1
                        && fact_in >> s_prime & 1 == 0
                        && init_mask >> s_prime & 1 == 0
                    {
                        let ra = find(&mut parent, s);
                        let rb = find(&mut parent, s_prime);
                        if ra != rb {
                            parent[ra] = rb as u8;
                        }
                    }
                }
            }
            // One slot per union-find class among the used states.
            let base = v * num_states;
            let mut count = 0u32;
            let mut m = used;
            while m != 0 {
                let s = m.trailing_zeros() as usize;
                m &= m - 1;
                let r = find(&mut parent, s);
                if node_slot[base + r] == u8::MAX {
                    node_slot[base + r] = count as u8;
                    count += 1;
                }
                node_slot[base + s] = node_slot[base + r];
            }
            next += count;
        }

        let first = csr.add_vertices(next as usize);
        debug_assert_eq!(first, VertexId(0));
        let source = csr.add_vertex();
        let target = csr.add_vertex();
        csr.set_source(source);
        csr.set_target(target);

        let node_base = &*node_base;
        let node_slot = &*node_slot;
        let slot = |v: usize, state: usize| -> u8 { node_slot[v * num_states + state] };
        let product = |v: usize, state: usize| -> VertexId {
            let s = slot(v, state);
            debug_assert_ne!(s, u8::MAX, "product vertex must be used");
            VertexId(node_base[v] + s as u32)
        };

        // Fact edges (finite capacity) — emitted first, so edge id == index
        // into `edge_fact`. A fact is pruned exactly when no query path can
        // traverse it, so it can never be in a minimum cut either.
        for (fact_id, fact) in db.facts() {
            if !fact_filter(fact_id) {
                continue;
            }
            if let Some((s, s_prime)) = ro.letter_transition(fact.label) {
                let sv = fact.source.0 as usize;
                let tv = fact.target.0 as usize;
                if slot(sv, s) != u8::MAX && slot(tv, s_prime) != u8::MAX {
                    let edge =
                        csr.add_edge(product(sv, s), product(tv, s_prime), capacity_of(fact_id));
                    debug_assert_eq!(edge.index(), edge_fact.len());
                    edge_fact.push(fact_id.0);
                }
            }
        }
        // ε-transition edges (infinite capacity); contracted edges collapse
        // to self-loops of the merged vertex and are skipped.
        for &(s, s_prime) in &eps {
            for v in 0..num_nodes {
                let a = slot(v, s);
                let b = slot(v, s_prime);
                if a != u8::MAX && b != u8::MAX && a != b {
                    csr.add_edge(product(v, s), product(v, s_prime), Capacity::Infinite);
                }
            }
        }
        // Source and target attachments (infinite capacity).
        for s in ro.initial_states() {
            for v in 0..num_nodes {
                if slot(v, s) != u8::MAX {
                    csr.add_edge(source, product(v, s), Capacity::Infinite);
                }
            }
        }
        for s in ro.final_states() {
            for v in 0..num_nodes {
                if slot(v, s) != u8::MAX {
                    csr.add_edge(product(v, s), target, Capacity::Infinite);
                }
            }
        }
    } else {
        // Unpruned fallback: product vertices laid out as
        // node_index * num_states + state.
        let first = csr.add_vertices(num_nodes * num_states);
        debug_assert_eq!(first, VertexId(0));
        let source = csr.add_vertex();
        let target = csr.add_vertex();
        csr.set_source(source);
        csr.set_target(target);

        let product = |node: rpq_graphdb::NodeId, state: usize| -> VertexId {
            VertexId((node.0 as usize * num_states + state) as u32)
        };

        for (fact_id, fact) in db.facts() {
            if !fact_filter(fact_id) {
                continue;
            }
            if let Some((s, s_prime)) = ro.letter_transition(fact.label) {
                let edge = csr.add_edge(
                    product(fact.source, s),
                    product(fact.target, s_prime),
                    capacity_of(fact_id),
                );
                debug_assert_eq!(edge.index(), edge_fact.len());
                edge_fact.push(fact_id.0);
            }
        }
        for (s, s_prime) in ro.epsilon_transitions() {
            for node in db.nodes() {
                csr.add_edge(product(node, s), product(node, s_prime), Capacity::Infinite);
            }
        }
        for s in ro.initial_states() {
            for node in db.nodes() {
                csr.add_edge(source, product(node, s), Capacity::Infinite);
            }
        }
        for s in ro.final_states() {
            for node in db.nodes() {
                csr.add_edge(product(node, s), target, Capacity::Infinite);
            }
        }
    }

    trace.end(build_timer, "product_build");
    let freeze_timer = trace.begin();
    csr.freeze();
    trace.end(freeze_timer, "csr_freeze");
    let cut = if trace.is_enabled() {
        let (cut, timings) = csr.min_cut_timed(flow, flow_scratch);
        trace.add(super::flow_phase(timings.backend), timings.solve_us);
        trace.add("cut_extract", timings.extract_us);
        cut
    } else {
        csr.min_cut(flow, flow_scratch)
    };
    let witness_timer = trace.begin();
    let facts: Vec<FactId> = cut
        .cut_edges
        .iter()
        .filter(|e| e.index() < edge_fact.len())
        .map(|e| FactId(edge_fact[e.index()]))
        .collect();
    trace.end(witness_timer, "witness_extract");
    (ResilienceValue::from(cut.value), facts)
}

/// Convenience entry point matching the paper's combined-complexity statement:
/// the language is given as an arbitrary ε-NFA (promised to recognize a local
/// language) rather than as a [`Language`].
pub fn resilience_local_from_enfa(
    enfa: &rpq_automata::enfa::Enfa,
    db: &GraphDb,
    semantics: Semantics,
) -> Result<ResilienceValue, ResilienceError> {
    let language = Language::from_enfa(enfa, None);
    let rpq = Rpq::new(language).with_semantics(semantics);
    resilience_local(&rpq, db).map(|o| o.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use rpq_automata::{Alphabet, Word};
    use rpq_graphdb::generate::{flow_instance, random_labeled_graph, word_path};

    #[test]
    fn single_path_cut() {
        let db = word_path(&Word::from_str_word("axxb"));
        let out = resilience_local(&Rpq::parse("ax*b").unwrap(), &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(1));
        assert_eq!(out.contingency_set.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn non_local_language_is_rejected() {
        let db = word_path(&Word::from_str_word("aa"));
        assert!(matches!(
            resilience_local(&Rpq::parse("aa").unwrap(), &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
    }

    #[test]
    fn epsilon_in_language_gives_infinite_resilience() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = resilience_local(&Rpq::parse("x*").unwrap(), &db).unwrap();
        assert!(out.value.is_infinite());
    }

    #[test]
    fn query_not_holding_gives_zero() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = resilience_local(&Rpq::parse("ba|ca").unwrap(), &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(0));
        assert!(out.contingency_set.unwrap().is_empty());
    }

    #[test]
    fn bag_semantics_uses_multiplicities() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("s", 'a', "u");
        let f2 = db.add_fact_by_names("u", 'x', "v");
        let f3 = db.add_fact_by_names("v", 'b', "t");
        db.set_multiplicity(f1, 10);
        db.set_multiplicity(f2, 4);
        db.set_multiplicity(f3, 7);
        let bag = Rpq::parse("ax*b").unwrap().with_bag_semantics();
        let out = resilience_local(&bag, &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(4));
        assert_eq!(out.contingency_set.unwrap(), vec![f2]);
        let set = Rpq::parse("ax*b").unwrap();
        assert_eq!(resilience_local(&set, &db).unwrap().value, ResilienceValue::Finite(1));
    }

    #[test]
    fn multi_source_multi_sink_flow_instances_match_exact() {
        for seed in 0..4 {
            let db = flow_instance(3, 3, 2, 3, seed);
            let q = Rpq::parse("ax*b").unwrap().with_bag_semantics();
            let fast = resilience_local(&q, &db).unwrap();
            let slow = resilience_exact(&q, &db);
            assert_eq!(fast.value, slow.value, "seed {seed}");
            // The returned cut really is a contingency set of matching cost.
            let cut: std::collections::BTreeSet<FactId> =
                fast.contingency_set.unwrap().into_iter().collect();
            assert!(q.is_contingency_set(&db, &cut));
            assert_eq!(ResilienceValue::Finite(q.cost(&db, &cut)), fast.value);
        }
    }

    #[test]
    fn random_instances_match_exact_for_several_local_languages() {
        let alphabet = Alphabet::from_chars("abxd");
        for seed in 0..6 {
            let db = random_labeled_graph(5, 9, &alphabet, seed);
            for pattern in ["ax*b", "ab|ad", "a|b", "ab|ad|xd", "a(b|d)*x"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let lang = q.infix_free_language();
                if !is_local(&lang) {
                    continue;
                }
                let fast = resilience_local(&q, &db).unwrap();
                let slow = resilience_exact(&q, &db);
                assert_eq!(fast.value, slow.value, "pattern {pattern}, seed {seed}");
            }
        }
    }

    #[test]
    fn combined_complexity_entry_point() {
        let db = word_path(&Word::from_str_word("axb"));
        let enfa = rpq_automata::regex::Regex::parse("ax*b").unwrap().to_enfa();
        let value = resilience_local_from_enfa(&enfa, &db, Semantics::Set).unwrap();
        assert_eq!(value, ResilienceValue::Finite(1));
    }
}
