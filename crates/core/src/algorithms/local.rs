//! Theorem 3.13: resilience of local languages via MinCut.
//!
//! Given an RO-εNFA `A` for the (local) language and a bag database `D`, build
//! the flow network `N_{D,A}`:
//!
//! * vertices `(v, s)` for every database node `v` and automaton state `s`,
//!   plus a fresh source and target;
//! * for every fact `v --a--> v'` and the **unique** `a`-transition `(s, a, s')`
//!   of `A`, an edge `(v, s) → (v', s')` with capacity `mult(v --a--> v')`;
//! * for every ε-transition `(s, s')` and node `v`, an edge
//!   `(v, s) → (v, s')` with capacity `+∞`;
//! * edges of capacity `+∞` from the source to every `(v, s)` with `s` initial,
//!   and from every `(v, s)` with `s` final to the target.
//!
//! Because `A` is read-once, finite-capacity edges are in one-to-one
//! correspondence with facts, so minimum cuts correspond to minimum
//! contingency sets.

use super::{Algorithm, ResilienceError, ResilienceOutcome};
use crate::rpq::{ResilienceValue, Rpq, Semantics};
use rpq_automata::local::is_local;
use rpq_automata::ro_enfa::RoEnfa;
use rpq_automata::Language;
use rpq_flow::{Capacity, EdgeId, FlowAlgorithm, FlowNetwork, VertexId};
use rpq_graphdb::{FactId, GraphDb};
use std::collections::BTreeMap;

/// Computes the resilience of a query whose infix-free sublanguage is local
/// (Theorem 3.13). Errors with [`ResilienceError::NotApplicable`] otherwise.
pub fn resilience_local(rpq: &Rpq, db: &GraphDb) -> Result<ResilienceOutcome, ResilienceError> {
    let language = rpq.infix_free_language();
    if !is_local(&language) {
        return Err(ResilienceError::NotApplicable {
            algorithm: Algorithm::Local,
            reason: format!("IF({}) is not a local language", rpq.language()),
        });
    }
    if language.contains_epsilon() {
        return Ok(ResilienceOutcome::new(ResilienceValue::Infinite, Algorithm::Local, None));
    }
    let ro = RoEnfa::for_local_language(&language)?;
    Ok(solve_prepared(&ro, rpq, db, FlowAlgorithm::default(), true))
}

/// Runs the Theorem 3.13 reduction for an already-prepared RO-εNFA: the
/// query-only analysis (locality test, ε-check, automaton construction) has
/// been done by the caller, so this is the per-database half of the algorithm.
/// Used by [`crate::engine::PreparedQuery`] to solve batches without
/// re-deriving the plan.
pub(crate) fn solve_prepared(
    ro: &RoEnfa,
    rpq: &Rpq,
    db: &GraphDb,
    flow: FlowAlgorithm,
    want_cut: bool,
) -> ResilienceOutcome {
    let (value, cut) = resilience_via_ro_enfa(ro, db, rpq.semantics(), flow, |_| true);
    debug_assert!(
        value.is_infinite() || rpq.is_contingency_set(db, &cut.iter().copied().collect()),
        "the extracted cut must be a contingency set"
    );
    ResilienceOutcome::new(value, Algorithm::Local, want_cut.then_some(cut))
}

/// Runs the Theorem 3.13 product construction for an explicit RO-εNFA, with a
/// per-fact filter (`fact_filter` returns `false` for facts that should be
/// ignored entirely — used by the one-dangling rewriting). Returns the
/// resilience value and the facts of a minimum cut.
pub(crate) fn resilience_via_ro_enfa(
    ro: &RoEnfa,
    db: &GraphDb,
    semantics: Semantics,
    flow: FlowAlgorithm,
    fact_filter: impl Fn(FactId) -> bool,
) -> (ResilienceValue, Vec<FactId>) {
    let mut network = FlowNetwork::new();
    let num_states = ro.num_states();
    let num_nodes = db.num_nodes();
    // Product vertices are laid out as node_index * num_states + state.
    let first = network.add_vertices(num_nodes * num_states);
    debug_assert_eq!(first, VertexId(0));
    let source = network.add_vertex();
    let target = network.add_vertex();
    network.set_source(source);
    network.set_target(target);

    let product = |node: rpq_graphdb::NodeId, state: usize| -> VertexId {
        VertexId((node.0 as usize * num_states + state) as u32)
    };

    // Fact edges (finite capacity), one per fact whose label has a transition.
    let mut edge_to_fact: BTreeMap<EdgeId, FactId> = BTreeMap::new();
    for (fact_id, fact) in db.facts() {
        if !fact_filter(fact_id) {
            continue;
        }
        if let Some((s, s_prime)) = ro.letter_transition(fact.label) {
            // Exogenous facts can never be cut: they get capacity +∞, exactly
            // like the structural edges of the construction.
            let capacity = if db.is_exogenous(fact_id) {
                Capacity::Infinite
            } else {
                Capacity::Finite(semantics.fact_cost(db, fact_id) as u128)
            };
            let edge =
                network.add_edge(product(fact.source, s), product(fact.target, s_prime), capacity);
            edge_to_fact.insert(edge, fact_id);
        }
    }
    // ε-transition edges (infinite capacity).
    for (s, s_prime) in ro.epsilon_transitions() {
        for node in db.nodes() {
            network.add_edge(product(node, s), product(node, s_prime), Capacity::Infinite);
        }
    }
    // Source and target attachments (infinite capacity).
    for s in ro.initial_states() {
        for node in db.nodes() {
            network.add_edge(source, product(node, s), Capacity::Infinite);
        }
    }
    for s in ro.final_states() {
        for node in db.nodes() {
            network.add_edge(product(node, s), target, Capacity::Infinite);
        }
    }

    let cut = rpq_flow::min_cut_with(&network, flow);
    let facts: Vec<FactId> =
        cut.cut_edges.iter().filter_map(|e| edge_to_fact.get(e).copied()).collect();
    (ResilienceValue::from(cut.value), facts)
}

/// Convenience entry point matching the paper's combined-complexity statement:
/// the language is given as an arbitrary ε-NFA (promised to recognize a local
/// language) rather than as a [`Language`].
pub fn resilience_local_from_enfa(
    enfa: &rpq_automata::enfa::Enfa,
    db: &GraphDb,
    semantics: Semantics,
) -> Result<ResilienceValue, ResilienceError> {
    let language = Language::from_enfa(enfa, None);
    let rpq = Rpq::new(language).with_semantics(semantics);
    resilience_local(&rpq, db).map(|o| o.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use rpq_automata::{Alphabet, Word};
    use rpq_graphdb::generate::{flow_instance, random_labeled_graph, word_path};

    #[test]
    fn single_path_cut() {
        let db = word_path(&Word::from_str_word("axxb"));
        let out = resilience_local(&Rpq::parse("ax*b").unwrap(), &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(1));
        assert_eq!(out.contingency_set.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn non_local_language_is_rejected() {
        let db = word_path(&Word::from_str_word("aa"));
        assert!(matches!(
            resilience_local(&Rpq::parse("aa").unwrap(), &db),
            Err(ResilienceError::NotApplicable { .. })
        ));
    }

    #[test]
    fn epsilon_in_language_gives_infinite_resilience() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = resilience_local(&Rpq::parse("x*").unwrap(), &db).unwrap();
        assert!(out.value.is_infinite());
    }

    #[test]
    fn query_not_holding_gives_zero() {
        let db = word_path(&Word::from_str_word("ab"));
        let out = resilience_local(&Rpq::parse("ba|ca").unwrap(), &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(0));
        assert!(out.contingency_set.unwrap().is_empty());
    }

    #[test]
    fn bag_semantics_uses_multiplicities() {
        let mut db = GraphDb::new();
        let f1 = db.add_fact_by_names("s", 'a', "u");
        let f2 = db.add_fact_by_names("u", 'x', "v");
        let f3 = db.add_fact_by_names("v", 'b', "t");
        db.set_multiplicity(f1, 10);
        db.set_multiplicity(f2, 4);
        db.set_multiplicity(f3, 7);
        let bag = Rpq::parse("ax*b").unwrap().with_bag_semantics();
        let out = resilience_local(&bag, &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(4));
        assert_eq!(out.contingency_set.unwrap(), vec![f2]);
        let set = Rpq::parse("ax*b").unwrap();
        assert_eq!(resilience_local(&set, &db).unwrap().value, ResilienceValue::Finite(1));
    }

    #[test]
    fn multi_source_multi_sink_flow_instances_match_exact() {
        for seed in 0..4 {
            let db = flow_instance(3, 3, 2, 3, seed);
            let q = Rpq::parse("ax*b").unwrap().with_bag_semantics();
            let fast = resilience_local(&q, &db).unwrap();
            let slow = resilience_exact(&q, &db);
            assert_eq!(fast.value, slow.value, "seed {seed}");
            // The returned cut really is a contingency set of matching cost.
            let cut: std::collections::BTreeSet<FactId> =
                fast.contingency_set.unwrap().into_iter().collect();
            assert!(q.is_contingency_set(&db, &cut));
            assert_eq!(ResilienceValue::Finite(q.cost(&db, &cut)), fast.value);
        }
    }

    #[test]
    fn random_instances_match_exact_for_several_local_languages() {
        let alphabet = Alphabet::from_chars("abxd");
        for seed in 0..6 {
            let db = random_labeled_graph(5, 9, &alphabet, seed);
            for pattern in ["ax*b", "ab|ad", "a|b", "ab|ad|xd", "a(b|d)*x"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let lang = q.infix_free_language();
                if !is_local(&lang) {
                    continue;
                }
                let fast = resilience_local(&q, &db).unwrap();
                let slow = resilience_exact(&q, &db);
                assert_eq!(fast.value, slow.value, "pattern {pattern}, seed {seed}");
            }
        }
    }

    #[test]
    fn combined_complexity_entry_point() {
        let db = word_path(&Word::from_str_word("axb"));
        let enfa = rpq_automata::regex::Regex::parse("ax*b").unwrap().to_enfa();
        let value = resilience_local_from_enfa(&enfa, &db, Semantics::Set).unwrap();
        assert_eq!(value, ResilienceValue::Finite(1));
    }
}
