//! Proposition 7.9: resilience of one-dangling languages.
//!
//! A one-dangling language is `L ∪ {xy}` with `L` local over `Σ` and `x ≠ y`,
//! at least one of them outside `Σ`. Resilience reduces to a local-language
//! instance over **extended bag semantics**:
//!
//! 1. mirror everything if needed so that `y ∉ Σ`;
//! 2. pick a fresh letter `z` and rewrite the language to `L'`, obtained from
//!    `L` by replacing the letter `x` with the two-letter word `xz`;
//! 3. rewrite the database: each node `v` gets a twin `(v, in)`; `x`-facts
//!    into `v` are redirected to `(v, in)`; a `z`-fact `(v, in) → v` carries
//!    multiplicity `Σ mult(x-facts into v) − Σ mult(y-facts out of v)`
//!    (possibly zero or negative); `y`-facts are erased;
//! 4. `RES_bag(L ∪ {xy}, D) = κ + RES^ex_bag(L', D')` where `κ` is the total
//!    multiplicity of `y`-facts. Facts of non-positive multiplicity can always
//!    be removed for free in extended bag semantics, so
//!    `RES^ex_bag(L', D') = Σ_(negative multiplicities) + RES_bag(L', D'⁺)`,
//!    and the latter is solved with the Theorem 3.13 product construction.
//!
//! Under **set semantics** the same reduction applies after forgetting the
//! multiplicities of `D` (set resilience is bag resilience on the database
//! with all multiplicities equal to 1).
//!
//! # Witness extraction
//!
//! The rewriting not only certifies the value — a minimum cut of the
//! rewritten instance maps back to an **optimal contingency set of the
//! original database**. Every fact of `D'` carries a provenance:
//!
//! * a non-`x`, non-`z` fact stands for the identically-labeled original fact;
//! * an `x`-fact into the twin `(v, in)` stands for the original `x`-fact
//!   into `v`;
//! * the `z`-fact at `v` stands for the *per-node exchange* "delete every
//!   `x`-fact into `v` instead of the `y`-facts out of `v`" — its
//!   multiplicity `in_x(v) − out_y(v)` is exactly the price of that exchange
//!   on top of the baseline `κ` (which deletes every `y`-fact).
//!
//! The inverse mapping therefore starts from the baseline "delete all
//! `y`-facts", then *restores* the `y`-facts of every node whose exchange was
//! taken — either for free (`in_x(v) ≤ out_y(v)`, the non-positive `z`-facts
//! removed by the negative-credit accounting) or because the minimum cut cut
//! the `z`-fact at `v` — deleting all `x`-facts into those nodes instead;
//! cut `x`-facts and cut local facts map to their original facts directly.
//! Both [`GraphDb::reversed`] (the mirrored orientation) and the
//! unit-multiplicity copy taken under set semantics preserve fact
//! identifiers, so the extracted identifiers are valid in the caller's
//! database as-is. The cost bookkeeping telescopes:
//! `cost(witness) = κ + Σ_(non-positive z) + cost(cut) = value`.

use super::{Algorithm, ResilienceError, ResilienceOutcome, SolveScratch};
use crate::algorithms::local::resilience_via_ro_enfa;
use crate::rpq::{ResilienceValue, Rpq, Semantics};
use rpq_automata::finite::{one_dangling_decomposition, OneDanglingDecomposition};
use rpq_automata::ro_enfa::RoEnfa;
use rpq_automata::Language;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::{FactId, GraphDb, NodeId};
use rpq_obs::Trace;
use std::collections::BTreeSet;

/// The query-only half of the Proposition 7.9 rewriting: the one-dangling
/// decomposition, normalized so that `y ∉ Σ(local part)` (mirroring the query
/// when needed), together with the RO-εNFA of the local part. Reusable across
/// databases; only the fresh-letter choice and the database rewriting remain
/// per-call (they depend on the database's alphabet and facts).
#[derive(Debug, Clone)]
pub(crate) struct OneDanglingPlan {
    /// The normalized decomposition (`y ∉ Σ`).
    decomposition: OneDanglingDecomposition,
    /// Whether normalization mirrored the query: databases must be reversed
    /// before the rewriting (Proposition 6.3).
    mirrored: bool,
    /// RO-εNFA of the normalized local part (`None` when `ε ∈ IF(L)`, in
    /// which case every database has infinite resilience).
    ro: Option<RoEnfa>,
    /// The original infix-free language (debug cross-checks only; not stored
    /// in release builds, where prepared plans may be cached in bulk).
    #[cfg(debug_assertions)]
    language: Language,
}

impl OneDanglingPlan {
    /// Analyses `IF(language)`; errors with [`ResilienceError::NotApplicable`]
    /// when it is not one-dangling. `display` renders the original query
    /// language in error messages.
    pub(crate) fn from_infix_free(
        language: &Language,
        display: &Language,
    ) -> Result<OneDanglingPlan, ResilienceError> {
        let Some(decomposition) = one_dangling_decomposition(language) else {
            return Err(ResilienceError::NotApplicable {
                algorithm: Algorithm::OneDangling,
                reason: format!("IF({display}) is not a one-dangling language"),
            });
        };

        // Ensure y ∉ Σ (the alphabet of the local part); otherwise mirror
        // everything (Proposition 6.3): the mirrored decomposition swaps x and
        // y and mirrors the local part, and x is guaranteed to be outside Σ
        // because the original decomposition had at least one of x, y outside
        // it.
        let local_used = decomposition.local_part.used_letters();
        let (decomposition, mirrored) = if local_used.contains(decomposition.y) {
            let mirrored = OneDanglingDecomposition {
                local_part: decomposition.local_part.mirror(),
                x: decomposition.y,
                y: decomposition.x,
            };
            debug_assert!(!mirrored.local_part.used_letters().contains(mirrored.y));
            (mirrored, true)
        } else {
            (decomposition, false)
        };

        let ro = if language.contains_epsilon() {
            None
        } else {
            Some(RoEnfa::for_local_language(&decomposition.local_part)?)
        };
        Ok(OneDanglingPlan {
            decomposition,
            mirrored,
            ro,
            #[cfg(debug_assertions)]
            language: language.clone(),
        })
    }

    /// The dangling word `xy` of the normalized decomposition (plan reports).
    pub(crate) fn dangling_word(&self) -> rpq_automata::Word {
        self.decomposition.dangling_word()
    }

    /// The per-database half of the rewriting. When `want_cut` is set the
    /// outcome also carries an optimal contingency set, mapped back from a
    /// minimum cut of the rewritten instance (see the module docs). Errors
    /// with [`ResilienceError::NotApplicable`] on databases with exogenous
    /// facts (the κ-offset rewriting assumes finite fact weights); callers
    /// decide whether to fall back to an exact solver.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve(
        &self,
        rpq: &Rpq,
        db: &GraphDb,
        flow: FlowAlgorithm,
        want_cut: bool,
        scratch: &mut SolveScratch,
        trace: &mut Trace,
    ) -> Result<ResilienceOutcome, ResilienceError> {
        let Some(ro) = &self.ro else {
            return Ok(ResilienceOutcome::new(
                ResilienceValue::Infinite,
                Algorithm::OneDangling,
                None,
            ));
        };
        if db.has_exogenous_facts() {
            return Err(ResilienceError::NotApplicable {
                algorithm: Algorithm::OneDangling,
                reason: "the one-dangling rewriting does not support exogenous facts".to_string(),
            });
        }

        // Work on a database whose multiplicities reflect the query's
        // semantics, so that the rewriting below can always reason in bag
        // terms. Fact identifiers are preserved by the copy (and by
        // `reversed` below), so witness facts need no id translation.
        let rewrite_timer = trace.begin();
        let bag_db = match rpq.semantics() {
            Semantics::Bag => db.clone(),
            Semantics::Set => {
                let mut copy = GraphDb::new();
                // Rebuild with unit multiplicities, preserving node names.
                for node in db.nodes() {
                    copy.node(db.node_name(node));
                }
                for (_, fact) in db.facts() {
                    copy.add_fact(fact.source, fact.label, fact.target);
                }
                copy
            }
        };
        #[cfg(debug_assertions)]
        let original_bag_db = bag_db.clone();
        let bag_db = if self.mirrored { bag_db.reversed() } else { bag_db };
        trace.end(rewrite_timer, "rewrite");

        let (value, witness) =
            rewrite_and_solve(&self.decomposition, ro, &bag_db, flow, want_cut, scratch, trace)?;
        #[cfg(debug_assertions)]
        debug_assert!(
            {
                // Cross-check against the exact solver on small instances only.
                original_bag_db.num_facts() > 14 || {
                    let exact = crate::exact::resilience_exact(
                        &Rpq::new(self.language.clone()).with_bag_semantics(),
                        &original_bag_db,
                    );
                    exact.value == value
                }
            },
            "one-dangling rewriting disagrees with the exact solver"
        );
        if let Some(witness) = &witness {
            debug_assert!(
                value.is_infinite() || rpq.is_contingency_set(db, witness),
                "the extracted witness must be a contingency set of the original database"
            );
            debug_assert!(
                value.is_infinite() || ResilienceValue::Finite(rpq.cost(db, witness)) == value,
                "the extracted witness must cost exactly the certified value"
            );
        }
        Ok(ResilienceOutcome::new(
            value,
            Algorithm::OneDangling,
            witness.map(|w| w.into_iter().collect()),
        ))
    }
}

/// Computes the resilience of a query whose infix-free sublanguage is
/// one-dangling (Proposition 7.9), together with an optimal contingency set
/// extracted from a minimum cut of the rewritten instance.
pub fn resilience_one_dangling(
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<ResilienceOutcome, ResilienceError> {
    let plan = OneDanglingPlan::from_infix_free(&rpq.infix_free_language(), rpq.language())?;
    plan.solve(
        rpq,
        db,
        FlowAlgorithm::default(),
        true,
        &mut SolveScratch::new(),
        &mut Trace::disabled(),
    )
}

/// What a fact of the rewritten database stands for in the original one.
#[derive(Debug, Clone, Copy)]
enum Provenance {
    /// A carried-over local fact, or an `x`-fact redirected to a twin node.
    Original(FactId),
    /// The `z`-fact of node `v`: cutting it means "delete every `x`-fact into
    /// `v` and restore the `y`-facts out of `v`".
    Exchange(NodeId),
}

/// Performs steps 2–4 of the rewriting for a decomposition with `y ∉ Σ`, whose
/// local part is recognized by the prepared RO-εNFA `ro`. Returns the value
/// and, when `want_cut` is set and the value is finite, an optimal
/// contingency set in `db`'s fact identifiers.
#[allow(clippy::too_many_arguments)]
fn rewrite_and_solve(
    decomposition: &OneDanglingDecomposition,
    ro: &RoEnfa,
    db: &GraphDb,
    flow: FlowAlgorithm,
    want_cut: bool,
    scratch: &mut SolveScratch,
    trace: &mut Trace,
) -> Result<(ResilienceValue, Option<BTreeSet<FactId>>), ResilienceError> {
    let rewrite_timer = trace.begin();
    let x = decomposition.x;
    let y = decomposition.y;
    let local_part = &decomposition.local_part;

    // κ = total multiplicity of y-facts.
    let kappa: i128 =
        db.facts().filter(|(_, f)| f.label == y).map(|(id, _)| db.multiplicity(id) as i128).sum();

    // Fresh letter z and the rewritten automaton A' (x ↦ xz). When x does not
    // occur in the local part, the language is unchanged.
    let ambient = local_part.alphabet().union(&db.alphabet()).with(x).with(y);
    let z = ambient.fresh_letter();
    let ro_rewritten = if ro.letter_transition(x).is_some() {
        ro.split_letter_transition(x, z)?
    } else {
        ro.clone()
    };

    // Twin-node names must be fresh: grow the suffix until no original node
    // name collides with any twin name (otherwise a node literally named
    // `v__in` would alias the twin of `v` and corrupt the rewriting).
    let mut suffix = String::from("__in");
    while db.nodes().any(|v| db.find_node(&format!("{}{suffix}", db.node_name(v))).is_some()) {
        suffix.push('_');
    }
    let twin_name = |db: &GraphDb, v: NodeId| format!("{}{suffix}", db.node_name(v));

    // Rewrite the database, recording what each rewritten fact stands for.
    let mut rewritten = GraphDb::new();
    for node in db.nodes() {
        rewritten.node(db.node_name(node));
    }
    // Per-node bookkeeping for the z-fact multiplicities, dense by node id
    // (`touched` marks nodes with at least one incident x- or y-fact).
    let mut incoming_x: Vec<i128> = vec![0; db.num_nodes()];
    let mut outgoing_y: Vec<i128> = vec![0; db.num_nodes()];
    let mut touched: Vec<bool> = vec![false; db.num_nodes()];
    for (id, fact) in db.facts() {
        if fact.label == x {
            incoming_x[fact.target.0 as usize] += db.multiplicity(id) as i128;
            touched[fact.target.0 as usize] = true;
        }
        if fact.label == y {
            outgoing_y[fact.source.0 as usize] += db.multiplicity(id) as i128;
            touched[fact.source.0 as usize] = true;
        }
    }

    // Rewritten facts never collide (facts are identified by their triple,
    // x-facts are redirected to twins, z is fresh), so their ids are assigned
    // sequentially and `provenance` is a dense push-indexed Vec.
    let mut provenance: Vec<Provenance> = Vec::with_capacity(db.num_facts());
    for (id, fact) in db.facts() {
        match fact.label {
            l if l == y => {
                // y-facts are erased.
            }
            l if l == x => {
                // Redirect to the twin (v, in).
                let twin = rewritten.node(&twin_name(db, fact.target));
                let src = rewritten.node(db.node_name(fact.source));
                let new = rewritten.add_fact_with_multiplicity(src, x, twin, db.multiplicity(id));
                debug_assert_eq!(new.index(), provenance.len());
                provenance.push(Provenance::Original(id));
            }
            l => {
                let src = rewritten.node(db.node_name(fact.source));
                let dst = rewritten.node(db.node_name(fact.target));
                let new = rewritten.add_fact_with_multiplicity(src, l, dst, db.multiplicity(id));
                debug_assert_eq!(new.index(), provenance.len());
                provenance.push(Provenance::Original(id));
            }
        }
    }

    // z-facts (extended bag semantics): multiplicity may be ≤ 0, in which case
    // the fact is removed for free and its (non-positive) multiplicity is
    // credited to the final value — the per-node exchange is taken for free.
    // `restored` starts as the free exchanges; cut exchanges join it below.
    let mut negative_credit: i128 = 0;
    let mut restored: Vec<bool> = vec![false; db.num_nodes()];
    for v in db.nodes() {
        if !touched[v.0 as usize] {
            continue;
        }
        let mult = incoming_x[v.0 as usize] - outgoing_y[v.0 as usize];
        if mult > 0 {
            let twin = rewritten.node(&twin_name(db, v));
            let main = rewritten.node(db.node_name(v));
            let new = rewritten.add_fact_with_multiplicity(twin, z, main, mult as u64);
            debug_assert_eq!(new.index(), provenance.len());
            provenance.push(Provenance::Exchange(v));
        } else {
            negative_credit += mult;
            restored[v.0 as usize] = true;
        }
    }

    // Solve the rewritten (positive-multiplicity) instance with the local
    // algorithm in bag semantics.
    trace.end(rewrite_timer, "rewrite");
    let (local_value, cut) = resilience_via_ro_enfa(
        &ro_rewritten,
        &rewritten,
        Semantics::Bag,
        flow,
        scratch,
        trace,
        |_| true,
    );
    let local_value = match local_value {
        ResilienceValue::Infinite => return Ok((ResilienceValue::Infinite, None)),
        ResilienceValue::Finite(v) => v as i128,
    };
    let total = kappa + negative_credit + local_value;
    debug_assert!(total >= 0, "resilience values are non-negative");
    let value = ResilienceValue::Finite(total as u128);
    if !want_cut {
        return Ok((value, None));
    }

    // Map the minimum cut back to original facts. `restored` collects the
    // nodes whose exchange is taken: their y-facts survive, their x-facts go.
    // Every finite-capacity edge of the rewritten network is a rewritten
    // fact, and all of them were recorded above, so indexing cannot miss.
    let witness_timer = trace.begin();
    let mut witness: BTreeSet<FactId> = BTreeSet::new();
    for rewritten_fact in cut {
        match provenance[rewritten_fact.index()] {
            Provenance::Original(id) => {
                witness.insert(id);
            }
            Provenance::Exchange(v) => {
                restored[v.0 as usize] = true;
            }
        }
    }
    for (id, fact) in db.facts() {
        if fact.label == x && restored[fact.target.0 as usize] {
            witness.insert(id);
        }
        if fact.label == y && !restored[fact.source.0 as usize] {
            witness.insert(id);
        }
    }
    trace.end(witness_timer, "witness_extract");
    Ok((value, Some(witness)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use rpq_automata::alphabet::Letter;
    use rpq_automata::{Alphabet, Language, Word};
    use rpq_graphdb::generate::{one_dangling_instance, random_labeled_graph, word_path};

    /// The witness invariants of Proposition 7.9's extraction: present,
    /// a real contingency set, and of cost exactly the certified value.
    fn assert_witness(rpq: &Rpq, db: &GraphDb, outcome: &ResilienceOutcome) {
        let witness: BTreeSet<FactId> = outcome
            .contingency_set
            .as_ref()
            .expect("the one-dangling backend extracts witnesses")
            .iter()
            .copied()
            .collect();
        assert!(rpq.is_contingency_set(db, &witness), "not a contingency set: {witness:?}");
        assert_eq!(ResilienceValue::Finite(rpq.cost(db, &witness)), outcome.value);
    }

    #[test]
    fn not_applicable_languages_are_rejected() {
        let db = word_path(&Word::from_str_word("ab"));
        for pattern in ["aa", "axb|cxd", "abcd|bef"] {
            assert!(matches!(
                resilience_one_dangling(&Rpq::parse(pattern).unwrap(), &db),
                Err(ResilienceError::NotApplicable { .. })
            ));
        }
    }

    #[test]
    fn simple_abc_be_instance() {
        // Database: path a b c sharing its b-source node with a dangling e fact.
        let mut db = GraphDb::new();
        db.add_fact_by_names("1", 'a', "2");
        let b_fact = db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'c', "4");
        db.add_fact_by_names("3", 'e', "5");
        let q = Rpq::parse("abc|be").unwrap();
        let fast = resilience_one_dangling(&q, &db).unwrap();
        let slow = resilience_exact(&q, &db);
        assert_eq!(fast.value, slow.value);
        // Removing the b fact kills both matches: resilience 1.
        assert_eq!(fast.value, ResilienceValue::Finite(1));
        assert_eq!(fast.contingency_set, Some(vec![b_fact]));
        assert_witness(&q, &db, &fast);
    }

    #[test]
    fn mirrored_orientation_is_handled() {
        // ba|cba: the dangling word is "ba" with b ∈ Σ(L) for L = cba, so the
        // mirror step kicks in (ab|abc mirrored).
        let mut db = GraphDb::new();
        db.add_fact_by_names("1", 'c', "2");
        db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'a', "4");
        db.add_fact_by_names("0", 'b', "3b");
        db.add_fact_by_names("3b", 'a', "4b");
        let q = Rpq::parse("cba|ba").unwrap();
        let out = resilience_one_dangling(&q, &db);
        // cba|ba reduced to IF is just ba (ba is an infix of cba), which is
        // local, so the decomposition may degenerate; accept either a value
        // matching the exact solver or a NotApplicable error.
        match out {
            Ok(fast) => assert_eq!(fast.value, resilience_exact(&q, &db).value),
            Err(ResilienceError::NotApplicable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn mirrored_orientation_extracts_witnesses() {
        // cba|eb is the mirror of abc|be: the dangling word eb has y = b in
        // Σ(cba), so the plan reverses the database before rewriting. Fact
        // identifiers survive the reversal, so witnesses map straight back.
        let mut db = GraphDb::new();
        db.add_fact_by_names("4", 'c', "3");
        db.add_fact_by_names("3", 'b', "2");
        db.add_fact_by_names("2", 'a', "1");
        db.add_fact_by_names("5", 'e', "3");
        let q = Rpq::parse("cba|eb").unwrap();
        let fast = resilience_one_dangling(&q, &db).unwrap();
        let slow = resilience_exact(&q, &db);
        assert_eq!(fast.value, slow.value);
        assert_eq!(fast.value, ResilienceValue::Finite(1));
        assert_witness(&q, &db, &fast);
    }

    #[test]
    fn figure_1_one_dangling_languages_match_exact() {
        let alphabet = Alphabet::from_chars("abcdex");
        for seed in 0..5 {
            let db = random_labeled_graph(5, 9, &alphabet, seed);
            for pattern in ["abc|be", "abcd|ce", "abcd|be", "ab|xd", "ax*b|xd"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let fast = match resilience_one_dangling(&q, &db) {
                    Ok(out) => out,
                    Err(ResilienceError::NotApplicable { .. }) => continue,
                    Err(e) => panic!("{e}"),
                };
                let slow = resilience_exact(&q, &db);
                assert_eq!(fast.value, slow.value, "pattern {pattern}, seed {seed}");
                if !fast.value.is_infinite() {
                    assert_witness(&q, &db, &fast);
                }
            }
        }
    }

    #[test]
    fn mirrored_languages_match_exact_on_random_instances() {
        // The mirrors of the Figure 1 one-dangling patterns: the plan's
        // normalization reverses every database, exercising the witness
        // mapping through `GraphDb::reversed`.
        let alphabet = Alphabet::from_chars("abcdex");
        for seed in 0..5 {
            let db = random_labeled_graph(5, 9, &alphabet, seed);
            for pattern in ["cba|eb", "dcba|ec", "dcba|eb", "ba|dx"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let fast = match resilience_one_dangling(&q, &db) {
                    Ok(out) => out,
                    Err(ResilienceError::NotApplicable { .. }) => continue,
                    Err(e) => panic!("{e}"),
                };
                let slow = resilience_exact(&q, &db);
                assert_eq!(fast.value, slow.value, "pattern {pattern}, seed {seed}");
                if !fast.value.is_infinite() {
                    assert_witness(&q, &db, &fast);
                }
            }
        }
    }

    #[test]
    fn bag_semantics_with_multiplicities_matches_exact() {
        for seed in 0..4 {
            let mut db = one_dangling_instance(
                &Alphabet::from_chars("abc"),
                Letter('b'),
                Letter('e'),
                3,
                2,
                3,
                seed,
            );
            let ids: Vec<_> = db.fact_ids().collect();
            for (i, id) in ids.iter().enumerate() {
                db.set_multiplicity(*id, 1 + (i as u64 % 4));
            }
            if db.num_facts() > 13 {
                continue;
            }
            let q = Rpq::parse("abc|be").unwrap().with_bag_semantics();
            let fast = resilience_one_dangling(&q, &db).unwrap();
            let slow = resilience_exact(&q, &db);
            assert_eq!(fast.value, slow.value, "seed {seed}");
            assert_witness(&q, &db, &fast);
        }
    }

    #[test]
    fn dangling_word_only_instances() {
        // Database with only x/y facts: the resilience is the per-node
        // min(incoming x, outgoing y) summed over nodes.
        let mut db = GraphDb::new();
        db.add_fact_by_names("u1", 'b', "v");
        db.add_fact_by_names("u2", 'b', "v");
        db.add_fact_by_names("v", 'e', "w1");
        db.add_fact_by_names("v", 'e', "w2");
        db.add_fact_by_names("v", 'e', "w3");
        let q = Rpq::parse("abc|be").unwrap();
        let fast = resilience_one_dangling(&q, &db).unwrap();
        assert_eq!(fast.value, ResilienceValue::Finite(2));
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Finite(2));
        // The cheap side of the exchange: both b-facts, keeping the e-facts.
        assert_witness(&q, &db, &fast);
        assert_eq!(fast.contingency_set.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn ax_star_b_xd_from_figure_1() {
        // ax*b|xd was left open in the conference version and is now tractable
        // (Proposition 7.9). Cross-check on a small structured instance.
        let mut db = GraphDb::new();
        db.add_fact_by_names("s", 'a', "1");
        db.add_fact_by_names("1", 'x', "2");
        db.add_fact_by_names("2", 'x', "3");
        db.add_fact_by_names("3", 'b', "t");
        db.add_fact_by_names("2", 'd', "d1");
        db.add_fact_by_names("1", 'd', "d2");
        let q = Rpq::parse("ax*b|xd").unwrap();
        let fast = resilience_one_dangling(&q, &db).unwrap();
        let slow = resilience_exact(&q, &db);
        assert_eq!(fast.value, slow.value);
        assert_witness(&q, &db, &fast);
    }

    #[test]
    fn value_only_solves_skip_witness_extraction() {
        let mut db = GraphDb::new();
        db.add_fact_by_names("1", 'a', "2");
        db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'c', "4");
        db.add_fact_by_names("3", 'e', "5");
        let q = Rpq::parse("abc|be").unwrap();
        let plan =
            OneDanglingPlan::from_infix_free(&q.infix_free_language(), q.language()).unwrap();
        let out = plan
            .solve(
                &q,
                &db,
                FlowAlgorithm::default(),
                false,
                &mut SolveScratch::new(),
                &mut Trace::disabled(),
            )
            .unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(1));
        assert!(out.contingency_set.is_none());
    }

    #[test]
    fn adversarial_twin_node_names_do_not_alias() {
        // A node literally named `3__in` must not be mistaken for the twin of
        // node `3` by the rewriting.
        let mut db = GraphDb::new();
        db.add_fact_by_names("1", 'a', "2");
        db.add_fact_by_names("2", 'b', "3");
        db.add_fact_by_names("3", 'c', "4");
        db.add_fact_by_names("3", 'e', "5");
        db.add_fact_by_names("1", 'a', "3__in");
        db.add_fact_by_names("3__in", 'b', "3");
        let q = Rpq::parse("abc|be").unwrap();
        let fast = resilience_one_dangling(&q, &db).unwrap();
        let slow = resilience_exact(&q, &db);
        assert_eq!(fast.value, slow.value);
        assert_witness(&q, &db, &fast);
    }
}
