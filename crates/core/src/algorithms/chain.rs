//! Proposition 7.6: resilience of bipartite chain languages via MinCut.
//!
//! A chain language has no repeated letters and its words only interact
//! through their endpoint letters; when the endpoint graph is bipartite, the
//! words can be split into *forward* words (read from the source partition to
//! the target partition) and *reversed* words (read the other way). The flow
//! network then has one finite-capacity edge per fact (`start` → `end`
//! vertices) and infinite wiring edges that follow forward words left-to-right
//! and reversed words right-to-left, so that source-to-target paths correspond
//! exactly to query matches.

use super::{Algorithm, ResilienceError, ResilienceOutcome, SolveScratch};
use crate::rpq::{ResilienceValue, Rpq};
use rpq_automata::alphabet::Letter;
use rpq_automata::finite::FiniteLanguage;
use rpq_automata::word::Word;
use rpq_automata::Language;
use rpq_flow::{Capacity, FlowAlgorithm, VertexId};
use rpq_graphdb::{FactId, GraphDb};
use rpq_obs::Trace;
use std::collections::BTreeSet;

/// The query-only half of the Proposition 7.6 reduction: everything derived
/// from the (bipartite chain) language alone, reusable across databases.
#[derive(Debug, Clone)]
pub(crate) struct ChainPlan {
    /// `ε ∈ IF(L)`: the resilience is `+∞` on every database.
    epsilon: bool,
    /// Letters of the single-letter words (their facts are force-removed).
    single_letters: BTreeSet<Letter>,
    /// The words of length ≥ 2.
    words: Vec<Word>,
    /// The endpoint bipartition (source side, target side).
    source_letters: BTreeSet<Letter>,
    target_letters: BTreeSet<Letter>,
    /// Consecutive-letter pairs of forward / reversed words.
    forward_digrams: BTreeSet<(Letter, Letter)>,
    reversed_digrams: BTreeSet<(Letter, Letter)>,
    /// Letters occurring in any word of length ≥ 2.
    relevant_letters: BTreeSet<Letter>,
    /// First / last letters of the words of length ≥ 2.
    endpoint_first: BTreeSet<Letter>,
    endpoint_last: BTreeSet<Letter>,
}

impl ChainPlan {
    /// Analyses `IF(language)`; errors with [`ResilienceError::NotApplicable`]
    /// when it is not a bipartite chain language. `display` renders the
    /// original query language in error messages.
    pub(crate) fn from_infix_free(
        language: &Language,
        display: &Language,
    ) -> Result<ChainPlan, ResilienceError> {
        let not_applicable = |reason: String| ResilienceError::NotApplicable {
            algorithm: Algorithm::BipartiteChain,
            reason,
        };
        let finite = FiniteLanguage::from_language(language)
            .map_err(|_| not_applicable(format!("IF({display}) is infinite")))?;
        if !finite.is_chain_language() {
            return Err(not_applicable(format!("IF({display}) is not a chain language")));
        }
        let Some((source_letters, target_letters)) = finite.endpoint_bipartition() else {
            return Err(not_applicable(format!(
                "the endpoint graph of IF({display}) is not bipartite"
            )));
        };

        let epsilon = finite.words().iter().any(Word::is_empty);
        let single_letters: BTreeSet<Letter> =
            finite.words().iter().filter(|w| w.len() == 1).map(|w| w.letter_at(0)).collect();
        let words: Vec<Word> = finite.words().iter().filter(|w| w.len() >= 2).cloned().collect();

        // Words are forward when their first letter is in the source partition.
        let mut forward_digrams: BTreeSet<(Letter, Letter)> = BTreeSet::new();
        let mut reversed_digrams: BTreeSet<(Letter, Letter)> = BTreeSet::new();
        let mut relevant_letters: BTreeSet<Letter> = BTreeSet::new();
        for word in &words {
            let Some(first) = word.first() else { continue };
            relevant_letters.extend(word.iter());
            let digrams = word.letters().windows(2).map(|p| (p[0], p[1]));
            if source_letters.contains(&first) {
                forward_digrams.extend(digrams);
            } else {
                reversed_digrams.extend(digrams);
            }
        }
        let endpoint_first: BTreeSet<Letter> = words.iter().filter_map(|w| w.first()).collect();
        let endpoint_last: BTreeSet<Letter> = words.iter().filter_map(|w| w.last()).collect();

        Ok(ChainPlan {
            epsilon,
            single_letters,
            words,
            source_letters,
            target_letters,
            forward_digrams,
            reversed_digrams,
            relevant_letters,
            endpoint_first,
            endpoint_last,
        })
    }

    /// The per-database half of the reduction: builds and cuts the flow
    /// network of Proposition 7.6 for one database, inside `scratch`'s CSR
    /// arena (fact edges first, so arena ids index the dense `edge_fact`
    /// provenance; per-fact vertices live in the dense `fact_vertex` lookup).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve(
        &self,
        rpq: &Rpq,
        db: &GraphDb,
        flow: FlowAlgorithm,
        want_cut: bool,
        scratch: &mut SolveScratch,
        trace: &mut Trace,
    ) -> ResilienceOutcome {
        let infinite =
            || ResilienceOutcome::new(ResilienceValue::Infinite, Algorithm::BipartiteChain, None);
        if self.epsilon {
            return infinite();
        }
        let build_timer = trace.begin();

        // Preprocessing: single-letter words force the removal of every fact
        // with that label.
        let mut base_cost: u128 = 0;
        let mut forced_facts: Vec<FactId> = Vec::new();
        for (id, fact) in db.facts() {
            if self.single_letters.contains(&fact.label) {
                if db.is_exogenous(id) {
                    // A single-letter word matched by an exogenous fact can
                    // never be broken: the resilience is +∞.
                    return infinite();
                }
                base_cost += rpq.semantics().fact_cost(db, id) as u128;
                forced_facts.push(id);
            }
        }

        // Build the flow network into the scratch arena.
        let SolveScratch { csr, flow: flow_scratch, edge_fact, fact_vertex, .. } = scratch;
        csr.clear();
        let source = csr.add_vertex();
        let target = csr.add_vertex();
        csr.set_source(source);
        csr.set_target(target);

        // Per-fact start/end vertices (end = start + 1) and the
        // finite-capacity fact edge. Every fact with a single-letter label is
        // already force-removed above, so it never enters the network.
        const ABSENT: u32 = u32::MAX;
        fact_vertex.clear();
        fact_vertex.resize(db.num_facts(), ABSENT);
        edge_fact.clear();
        for (id, fact) in db.facts() {
            if self.single_letters.contains(&fact.label)
                || !self.relevant_letters.contains(&fact.label)
            {
                continue;
            }
            let start = csr.add_vertex();
            let end = csr.add_vertex();
            fact_vertex[id.index()] = start.0;
            // Exogenous facts can never be cut: capacity +∞.
            let capacity = if db.is_exogenous(id) {
                Capacity::Infinite
            } else {
                Capacity::Finite(rpq.semantics().fact_cost(db, id) as u128)
            };
            let edge = csr.add_edge(start, end, capacity);
            debug_assert_eq!(edge.index(), edge_fact.len());
            edge_fact.push(id.0);
        }

        // Wiring edges between consecutive facts.
        for (id_a, fact_a) in db.facts() {
            let start_a = fact_vertex[id_a.index()];
            if start_a == ABSENT {
                continue;
            }
            let end_a = VertexId(start_a + 1);
            for id_b in db.out_facts(fact_a.target) {
                let start_b = fact_vertex[id_b.index()];
                if start_b == ABSENT {
                    continue;
                }
                let fact_b = db.fact(id_b);
                let digram = (fact_a.label, fact_b.label);
                if self.forward_digrams.contains(&digram) {
                    csr.add_edge(end_a, VertexId(start_b), Capacity::Infinite);
                }
                if self.reversed_digrams.contains(&digram) {
                    csr.add_edge(VertexId(start_b + 1), VertexId(start_a), Capacity::Infinite);
                }
            }
        }

        // Source / target attachments: only endpoint letters of words.
        for (id, fact) in db.facts() {
            let start = fact_vertex[id.index()];
            if start == ABSENT {
                continue;
            }
            let label = fact.label;
            let is_endpoint =
                self.endpoint_first.contains(&label) || self.endpoint_last.contains(&label);
            if !is_endpoint {
                continue;
            }
            if self.source_letters.contains(&label) {
                csr.add_edge(source, VertexId(start), Capacity::Infinite);
            }
            if self.target_letters.contains(&label) {
                csr.add_edge(VertexId(start + 1), target, Capacity::Infinite);
            }
        }

        trace.end(build_timer, "product_build");
        let freeze_timer = trace.begin();
        csr.freeze();
        trace.end(freeze_timer, "csr_freeze");
        let cut = if trace.is_enabled() {
            let (cut, timings) = csr.min_cut_timed(flow, flow_scratch);
            trace.add(super::flow_phase(timings.backend), timings.solve_us);
            trace.add("cut_extract", timings.extract_us);
            cut
        } else {
            csr.min_cut(flow, flow_scratch)
        };
        let witness_timer = trace.begin();
        let value = match cut.value {
            Capacity::Infinite => ResilienceValue::Infinite,
            Capacity::Finite(v) => ResilienceValue::Finite(v + base_cost),
        };
        let mut contingency: Vec<FactId> = forced_facts;
        contingency.extend(
            cut.cut_edges
                .iter()
                .filter(|e| e.index() < edge_fact.len())
                .map(|e| FactId(edge_fact[e.index()])),
        );
        trace.end(witness_timer, "witness_extract");
        debug_assert!(
            value.is_infinite()
                || rpq.is_contingency_set(db, &contingency.iter().copied().collect()),
            "the extracted cut must be a contingency set"
        );
        ResilienceOutcome::new(value, Algorithm::BipartiteChain, want_cut.then_some(contingency))
    }

    /// The number of words of length ≥ 2 in the plan (used by plan reports).
    pub(crate) fn num_words(&self) -> usize {
        self.words.len()
    }
}

/// Computes the resilience of a query whose infix-free sublanguage is a
/// bipartite chain language (Proposition 7.6).
pub fn resilience_bipartite_chain(
    rpq: &Rpq,
    db: &GraphDb,
) -> Result<ResilienceOutcome, ResilienceError> {
    let plan = ChainPlan::from_infix_free(&rpq.infix_free_language(), rpq.language())?;
    Ok(plan.solve(
        rpq,
        db,
        FlowAlgorithm::default(),
        true,
        &mut SolveScratch::new(),
        &mut Trace::disabled(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::resilience_exact;
    use rpq_automata::{Alphabet, Language};
    use rpq_graphdb::generate::{chain_instance, random_labeled_graph, word_path};

    #[test]
    fn simple_ab_bc_instance() {
        // Path a b c: matches of ab|bc are {ab-facts} and {bc-facts}; removing
        // the middle b fact kills both.
        let db = word_path(&Word::from_str_word("abc"));
        let q = Rpq::parse("ab|bc").unwrap();
        let out = resilience_bipartite_chain(&q, &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(1));
        let cut: BTreeSet<FactId> = out.contingency_set.unwrap().into_iter().collect();
        assert!(q.is_contingency_set(&db, &cut));
    }

    #[test]
    fn non_applicable_languages_are_rejected() {
        let db = word_path(&Word::from_str_word("ab"));
        for pattern in ["aa", "ax*b", "ab|bc|ca"] {
            assert!(matches!(
                resilience_bipartite_chain(&Rpq::parse(pattern).unwrap(), &db),
                Err(ResilienceError::NotApplicable { .. })
            ));
        }
    }

    #[test]
    fn single_letter_words_force_removals() {
        // L = a|bc: every a-fact must be removed, plus a min cut for bc.
        let mut db = GraphDb::new();
        db.add_fact_by_names("u", 'a', "v");
        db.add_fact_by_names("w", 'a', "x");
        db.add_fact_by_names("p", 'b', "q");
        db.add_fact_by_names("q", 'c', "r");
        let q = Rpq::parse("a|bc").unwrap();
        let out = resilience_bipartite_chain(&q, &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(3));
        assert_eq!(resilience_exact(&q, &db).value, ResilienceValue::Finite(3));
    }

    #[test]
    fn matches_exact_on_random_instances() {
        let alphabet = Alphabet::from_chars("abc");
        for seed in 0..6 {
            let db = random_labeled_graph(5, 10, &alphabet, seed);
            for pattern in ["ab|bc", "ab|cb", "ab", "axb|byc"] {
                let q = Rpq::new(Language::parse(pattern).unwrap());
                let fast = match resilience_bipartite_chain(&q, &db) {
                    Ok(out) => out,
                    Err(_) => continue,
                };
                let slow = resilience_exact(&q, &db);
                assert_eq!(fast.value, slow.value, "pattern {pattern}, seed {seed}");
            }
        }
    }

    #[test]
    fn matches_exact_on_chain_instances_with_bag_semantics() {
        let words = vec![Word::from_str_word("ab"), Word::from_str_word("bc")];
        for seed in 0..4 {
            let mut db = chain_instance(&words, 2, 2, seed);
            // Give some facts non-unit multiplicities.
            let ids: Vec<FactId> = db.fact_ids().collect();
            for (i, id) in ids.iter().enumerate() {
                db.set_multiplicity(*id, 1 + (i as u64 % 3));
            }
            let q = Rpq::parse("ab|bc").unwrap().with_bag_semantics();
            let fast = resilience_bipartite_chain(&q, &db).unwrap();
            let slow = resilience_exact(&q, &db);
            assert_eq!(fast.value, slow.value, "seed {seed}");
        }
    }

    #[test]
    fn example_7_3_bcl_with_longer_words() {
        // L = axyb|bztc|cd|dea (a BCL from Example 7.3) on a database formed of
        // its own words glued at shared endpoint nodes.
        let mut db = GraphDb::new();
        db.add_fact_by_names("n1", 'a', "n2");
        db.add_fact_by_names("n2", 'x', "n3");
        db.add_fact_by_names("n3", 'y', "n4");
        db.add_fact_by_names("n4", 'b', "n5");
        db.add_fact_by_names("n5", 'z', "n6");
        db.add_fact_by_names("n6", 't', "n7");
        db.add_fact_by_names("n7", 'c', "n8");
        db.add_fact_by_names("n8", 'd', "n9");
        db.add_fact_by_names("n9", 'e', "n10");
        db.add_fact_by_names("n10", 'a', "n11");
        let q = Rpq::parse("axyb|bztc|cd|dea").unwrap();
        let fast = resilience_bipartite_chain(&q, &db).unwrap();
        let slow = resilience_exact(&q, &db);
        assert_eq!(fast.value, slow.value);
    }

    #[test]
    fn query_not_holding_gives_zero() {
        let db = word_path(&Word::from_str_word("ac"));
        let q = Rpq::parse("ab|bc").unwrap();
        let out = resilience_bipartite_chain(&q, &db).unwrap();
        assert_eq!(out.value, ResilienceValue::Finite(0));
    }
}
