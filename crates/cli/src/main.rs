//! `rpq-cli`: command-line front end for the RPQ resilience library.
//!
//! ```text
//! rpq-cli classify  '<regex>'                 classify RES(L) (Figure 1 engine)
//! rpq-cli resilience '<regex>' <db.txt>...    compute the resilience on databases
//!            [--bag] [--algorithm <name>] [--flow <name>] [--enumeration-limit <n>] [--show-cut]
//! rpq-cli gadget    '<regex>'                 derive a verified hardness gadget
//! rpq-cli figure1                             re-derive the Figure 1 classification map
//! rpq-cli serve                               run the resilience service (TCP or --pipe)
//! rpq-cli client <verb> ...                   talk to a running service
//! ```
//!
//! `serve` starts the `rpq-server` daemon: a newline-delimited JSON protocol
//! (`prepare`, `solve`, `solve_batch`, the `db_*` hosted-database verbs,
//! `stats`, `metrics`, `shutdown`) over TCP — or stdin/stdout with `--pipe`
//! — backed by
//! a worker pool, a prepared-query cache keyed by canonicalized language, and
//! a snapshot-database store (`rpq-store`) patched in place by incremental
//! solves. `client` is the matching one-shot front end; see the repository
//! README for the wire format.
//!
//! All resilience computations go through the prepared-query engine
//! ([`rpq_resilience::engine::Engine`]): the query is classified **once**
//! (`Engine::prepare`) and the cached plan is reused for every database file
//! on the command line, so batch invocations never re-derive the language
//! analysis. `--algorithm` accepts every backend name of [`Algorithm`] and
//! `--flow` every MinCut backend of [`FlowAlgorithm`] (`rpq-cli --help` shows
//! both lists).
//!
//! Databases use the line-based text format of `rpq-graphdb::text`: one fact
//! per line, `source label target [multiplicity] [!]` (a trailing `!` marks
//! the fact exogenous, i.e. un-removable), `#` for comments.

#![forbid(unsafe_code)]
use std::io::Write;
use std::process::ExitCode;

use rpq_automata::Language;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::{text, GraphDb};
use rpq_resilience::algorithms::{Algorithm, ResilienceOutcome};
use rpq_resilience::classify::{classify, figure1_rows};
use rpq_resilience::engine::{Engine, SolveOptions};
use rpq_resilience::gadgets::families::find_gadget;
use rpq_resilience::router::{RouteBudget, Router, TieredOutcome};
use rpq_resilience::rpq::Rpq;
use rpq_server::{
    run_pipe, Client, Json, QuerySpec, Request, Server, ServerConfig, ServerState, SnapshotSel,
};

const USAGE: &str = "\
usage:
  rpq-cli classify '<regex>'
  rpq-cli resilience '<regex>' <db.txt>... [--bag] [--algorithm <name>] [--flow <name>]
          [--enumeration-limit <n>] [--show-cut] [--no-cut] [--jobs <n>]
          [--deadline-ms <n>] [--cost-budget-us <n>]
  rpq-cli gadget '<regex>'
  rpq-cli figure1
  rpq-cli serve [--port <p>] [--pipe] [--threads <n>] [--cache-capacity <n>]
          [--cache-shards <n>] [--jobs <n>] [--flow <name>] [--enumeration-limit <n>]
          [--store-capacity <n>] [--store-body-limit <bytes>] [--slow-query-log <us>]
          [--shed-queue-depth <n>] [--shed-cost-budget <us>]
  rpq-cli client [--addr <host:port>] prepare '<regex>' [query options]
  rpq-cli client [--addr <host:port>] solve '<regex>' <db.txt>... [query options]
  rpq-cli client [--addr <host:port>] db-put <name> <db.txt>
  rpq-cli client [--addr <host:port>] db-patch <name> <patch.txt>
  rpq-cli client [--addr <host:port>] db-snapshot <name> <snapshot-name> [--at <ref>]
  rpq-cli client [--addr <host:port>] db-solve <name> '<regex>' [--snapshot <ref>]...
          [query options]
  rpq-cli client [--addr <host:port>] db-list | db-drop <name>
  rpq-cli client [--addr <host:port>] stats | metrics | shutdown | raw '<json>'

algorithms: local (Thm 3.13), chain (Prp 7.6), one-dangling (Prp 7.9),
            exact (branch & bound), enumeration (subset oracle, tiny inputs),
            greedy / k-approx (certified polynomial bounds, finite languages)
flow backends: dinic (default), edmonds-karp, push-relabel,
               auto (per-instance choice from measured size thresholds)
database format: one fact per line, `source label target [multiplicity] [!]`\n(a trailing `!` declares the fact exogenous / un-removable)
with several database files, the query plan is prepared once and reused
serve: NDJSON protocol (prepare/solve/solve_batch/db_*/stats/metrics/shutdown)
       on 127.0.0.1, default port 7878; --pipe serves stdin/stdout instead of TCP.
       Connections are multiplexed: workers pick up one request at a time, so
       idle persistent connections never starve new clients. The prepared-query
       cache is keyed by canonicalized language (equivalent regex spellings
       share one cached plan) and striped over --cache-shards locks.
       --slow-query-log <us> logs solve-family requests slower than the
       threshold to stderr with their per-phase breakdown
jobs: worker threads for the per-database half of a batch (default 1);
      on `serve` the default for requests without a `jobs` field, on `client`
      sent with the request, on `resilience` used across the database files
show-cut: `contingency set : {}` means the optimal cut is empty (resilience 0);
          an explicit `(…)` note says why no witness is available instead
no-cut: value-only solving (skips witness extraction; with --show-cut, the
        contingency set line reports the cut as not extracted)
client query options: [--bag] [--algorithm <name>] [--flow <name>] [--enumeration-limit <n>]
                      [--no-cut] (value-only response: sends want_cut=false)
                      [--jobs <n>] (parallel per-database solving server-side)
                      [--trace] (per-phase timings in the response: sends trace=true)
                      [--deadline-ms <n>] [--cost-budget-us <n>] (deadline-aware routing:
                      the server answers exactly when the projected cost fits, else
                      degrades to certified [lower, upper] bounds; responses report
                      the answering `tier` and a `route` reason)
deadline-ms / cost-budget-us: on `resilience`, route locally through the cost
      model — over-budget solves degrade to certified bounds instead of running
      the planned backend; the tier line reports which tier answered and why.
      On `serve`, --shed-queue-depth / --shed-cost-budget tune the overload
      shedding (a ready-queue deeper than the threshold tightens every solve
      budget so the backlog drains with certified degraded answers)
client: `solve` with several databases sends one solve_batch request
client metrics: prints the server's Prometheus text exposition (latency
        histograms by verb/family/tier/backend, cache, store and connection
        counters); every solve response also carries `elapsed_us`
db-*: server-hosted snapshot databases. `db-put` uploads under a name,
      `db-patch` appends a delta (`+ u a v [mult] [!]` / `- u a v` per line);
      both print the new snapshot id (the fact-log offset). A snapshot <ref>
      is an integer offset or a name pinned with `db-snapshot`. `db-solve`
      binds to (name, snapshot) — no --snapshot means the current head, one
      answers inline, several return per-snapshot results; consecutive head
      solves of the same query reuse the server's incrementally patched flow
      network. --store-capacity bounds hosted databases and cached snapshot
      materializations (named snapshots and heads are never evicted);
      --store-body-limit rejects larger db-put/db-patch bodies";

/// Prints one line to stdout, exiting quietly when the consumer closed the
/// pipe — `rpq-cli figure1 | head` must not panic with a broken-pipe error.
fn out(args: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout.write_fmt(args).and_then(|()| stdout.write_all(b"\n")) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

macro_rules! outln {
    () => { out(format_args!("")) };
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("classify") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_classify(pattern)
        }
        Some("resilience") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_resilience(pattern, &args[2..])
        }
        Some("gadget") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_gadget(pattern)
        }
        Some("figure1") => {
            cmd_figure1();
            Ok(())
        }
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("--help" | "-h" | "help") => {
            outln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

fn parse_language(pattern: &str) -> Result<Language, String> {
    Language::parse(pattern).map_err(|e| format!("cannot parse `{pattern}`: {e}"))
}

fn load_database(path: &str) -> Result<GraphDb, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    text::parse(&contents).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_classify(pattern: &str) -> Result<(), String> {
    let language = parse_language(pattern)?;
    let classification = classify(&language);
    outln!("language        : {pattern}");
    outln!("infix-free form : {}", language.infix_free().description());
    outln!("classification  : {}", classification.label());
    match find_gadget(&language) {
        Some(found) => outln!(
            "hardness gadget : {:?} ({}){}",
            found.family,
            found.family.paper_result(),
            if found.for_mirror { " — for the mirror language (Prp 6.3)" } else { "" }
        ),
        None if classification.is_np_hard() => {
            outln!(
                "hardness gadget : none transcribed (certificate is a language-theoretic witness)"
            )
        }
        None => {}
    }
    Ok(())
}

fn cmd_resilience(pattern: &str, args: &[String]) -> Result<(), String> {
    let language = parse_language(pattern)?;
    let mut query = Rpq::new(language);
    let mut algorithm: Option<Algorithm> = None;
    let mut options = SolveOptions::default();
    let mut show_cut = false;
    let mut jobs: usize = 1;
    let mut budget = RouteBudget::UNLIMITED;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--bag" => query = query.with_bag_semantics(),
            "--show-cut" => show_cut = true,
            "--no-cut" => options.want_cut = false,
            "--algorithm" => {
                let name = iter.next().ok_or("--algorithm requires a value")?;
                algorithm = Some(name.parse::<Algorithm>()?);
            }
            "--flow" => {
                let name = iter.next().ok_or("--flow requires a value")?;
                options.flow_backend = name.parse::<FlowAlgorithm>()?;
            }
            "--enumeration-limit" => {
                options.enumeration_limit = parse_number("--enumeration-limit", iter.next())?;
            }
            "--jobs" => jobs = parse_number("--jobs", iter.next())?,
            "--deadline-ms" => {
                budget.deadline_ms = Some(parse_number("--deadline-ms", iter.next())?);
            }
            "--cost-budget-us" => {
                budget.cost_budget_us = Some(parse_number("--cost-budget-us", iter.next())?);
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            _ => paths.push(option),
        }
    }
    if paths.is_empty() {
        return Err("missing database file".to_string());
    }

    // Prepare the query once; solve every database with the cached plan.
    let engine = Engine::with_options(options);
    let prepared = match algorithm {
        Some(algorithm) => engine.prepare_with(algorithm, &query),
        None => engine.prepare(&query),
    }
    .map_err(|e| e.to_string())?;

    outln!("query           : {query}");
    outln!("classification  : {}", classify(query.language()).label());
    outln!("plan            : {}", prepared.plan());
    if options.flow_backend != FlowAlgorithm::default() {
        outln!("flow backend    : {}", options.flow_backend);
    }
    let budgeted = budget.deadline_ms.is_some() || budget.cost_budget_us.is_some();
    let report = |path: &str, db: &GraphDb, tiered: &TieredOutcome| {
        let outcome = &tiered.outcome;
        outln!();
        outln!("database        : {path} ({} nodes, {} facts)", db.num_nodes(), db.num_facts());
        outln!("algorithm       : {}", outcome.algorithm);
        // Budget routing is opt-in on the command line; without a budget the
        // tier lines would repeat the plan on every database.
        if budgeted {
            outln!(
                "tier            : {}{}",
                tiered.tier,
                if tiered.degraded { " (degraded)" } else { "" }
            );
            outln!("route           : {}", tiered.reason);
        }
        match outcome.bounds {
            Some((lower, upper)) if lower != upper => {
                outln!("resilience      : in [{lower}, {upper}] (certified bounds)")
            }
            _ => outln!("resilience      : {}", outcome.value),
        }
        if show_cut {
            for line in cut_report(outcome, db, options.want_cut) {
                outln!("{line}");
            }
        }
    };
    let router = Router::new();
    if jobs > 1 {
        // `--jobs n`: load everything, solve the whole batch on scoped
        // threads, then print in file order.
        let dbs = paths.iter().map(|path| load_database(path)).collect::<Result<Vec<_>, _>>()?;
        let outcomes = prepared.route_batch_parallel(&dbs, jobs, &budget, &router);
        for ((path, db), outcome) in paths.iter().zip(&dbs).zip(outcomes) {
            report(path, db, &outcome.map_err(|e| e.to_string())?);
        }
    } else {
        // Sequential default: stream each database's result as it is
        // solved (earlier results survive a later file failing to load).
        for path in paths {
            let db = load_database(path)?;
            let tiered = prepared
                .route_with_cut(&db, options.want_cut, &budget, &router)
                .map_err(|e| e.to_string())?;
            report(path, &db, &tiered);
        }
    }
    Ok(())
}

/// Renders the `--show-cut` lines for one outcome. The three cases are
/// explicitly distinguishable: a non-empty witness is listed fact by fact, a
/// genuinely empty optimal cut prints `{}` (the query does not hold, nothing
/// needs removing), and a missing witness states *why* none is shown —
/// value-only solving (`--no-cut`), an infinite value (no finite cut exists),
/// or a backend that only certifies the value.
fn cut_report(outcome: &ResilienceOutcome, db: &GraphDb, want_cut: bool) -> Vec<String> {
    match &outcome.contingency_set {
        Some(cut) if !cut.is_empty() => {
            let mut lines = vec!["contingency set :".to_string()];
            lines.extend(cut.iter().map(|&fact| format!("  {}", db.display_fact(fact))));
            lines
        }
        Some(_) => vec!["contingency set : {}".to_string()],
        None if !want_cut => {
            vec!["contingency set : (not extracted: --no-cut)".to_string()]
        }
        None if outcome.value.is_infinite() => {
            vec!["contingency set : (none exists: the resilience is infinite)".to_string()]
        }
        None => vec![format!(
            "contingency set : (unavailable: `{}` only certifies the value)",
            outcome.algorithm
        )],
    }
}

fn cmd_gadget(pattern: &str) -> Result<(), String> {
    let language = parse_language(pattern)?;
    match find_gadget(&language) {
        Some(found) => {
            outln!("language        : {pattern}");
            outln!("gadget family   : {:?} ({})", found.family, found.family.paper_result());
            if found.for_mirror {
                outln!("note            : the gadget certifies the mirror language (Prp 6.3)");
            }
            outln!("matches         : {}", found.report.num_matches);
            outln!("condensed path  : {} edges (odd)", found.report.path_length.unwrap());
            outln!("pre-gadget facts:");
            let db = found.gadget.db();
            for (id, _) in db.facts() {
                outln!("  {}", db.display_fact(id));
            }
            Ok(())
        }
        None => Err(format!(
            "no verified gadget found for `{pattern}` (the language may be tractable, \
             unclassified, or only covered by the untranscribed Figure 6 / Figure 12 families)"
        )),
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} requires a value"))?;
    value.parse::<T>().map_err(|_| format!("invalid {flag} `{value}`"))
}

/// Runs the resilience service: TCP on 127.0.0.1 (default port 7878, `0`
/// asks the OS for a free port) or stdin/stdout with `--pipe`. Blocks until
/// a `shutdown` request (TCP) or EOF (pipe).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig::default();
    let mut port: u16 = 7878;
    let mut pipe = false;
    let mut iter = args.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--pipe" => pipe = true,
            "--port" => port = parse_number("--port", iter.next())?,
            "--threads" => config.threads = parse_number("--threads", iter.next())?,
            "--cache-capacity" => {
                config.cache_capacity = parse_number("--cache-capacity", iter.next())?;
            }
            "--cache-shards" => {
                config.cache_shards = parse_number("--cache-shards", iter.next())?;
            }
            "--jobs" => config.jobs = parse_number("--jobs", iter.next())?,
            "--flow" => {
                let name = iter.next().ok_or("--flow requires a value")?;
                config.options.flow_backend = name.parse::<FlowAlgorithm>()?;
            }
            "--enumeration-limit" => {
                config.options.enumeration_limit =
                    parse_number("--enumeration-limit", iter.next())?;
            }
            "--store-capacity" => {
                config.store.capacity = parse_number("--store-capacity", iter.next())?;
            }
            "--store-body-limit" => {
                config.store.max_body_bytes = parse_number("--store-body-limit", iter.next())?;
            }
            "--slow-query-log" => {
                config.slow_query_log_us = Some(parse_number("--slow-query-log", iter.next())?);
            }
            "--shed-queue-depth" => {
                config.shed_queue_depth = parse_number("--shed-queue-depth", iter.next())?;
            }
            "--shed-cost-budget" => {
                config.shed_cost_budget_us = parse_number("--shed-cost-budget", iter.next())?;
            }
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    if pipe {
        let state = ServerState::new(config);
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        run_pipe(&state, stdin.lock(), stdout.lock())
            .map_err(|e| format!("pipe server failed: {e}"))
    } else {
        let server = Server::bind(("127.0.0.1", port), config)
            .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
        let addr = server.local_addr().map_err(|e| e.to_string())?;
        outln!(
            "rpq-server listening on {addr} (threads={}, jobs={}, cache-capacity={})",
            config.threads.max(1),
            config.jobs.max(1),
            config.cache_capacity
        );
        server.run().map_err(|e| format!("server failed: {e}"))
    }
}

/// The parsed client command line: the shared query settings, the snapshot
/// references of the `db-*` verbs, and the leftover positionals.
struct ClientArgs {
    spec: QuerySpec,
    /// `--snapshot <ref>` occurrences (db-solve only).
    snapshots: Vec<SnapshotSel>,
    /// `--at <ref>` (db-snapshot only).
    at: Option<SnapshotSel>,
    positional: Vec<String>,
}

/// A snapshot reference from the command line: an integer is a log offset,
/// anything else a snapshot name.
fn parse_snapshot_sel(value: &str) -> SnapshotSel {
    match value.parse::<usize>() {
        Ok(offset) => SnapshotSel::Offset(offset),
        Err(_) => SnapshotSel::Named(value.to_string()),
    }
}

/// Parses the shared query options (`--bag`, `--flow`, `--algorithm`,
/// `--enumeration-limit`, `--no-cut`, `--jobs`, `--deadline-ms`,
/// `--cost-budget-us`) plus the snapshot options of the `db-*` verbs out of
/// `args`.
fn parse_query_options(args: &[String]) -> Result<ClientArgs, String> {
    let mut spec = QuerySpec::default();
    let mut snapshots = Vec::new();
    let mut at = None;
    let mut positional = Vec::new();
    let mut iter = args.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--bag" => spec.bag = true,
            "--flow" => {
                let name = iter.next().ok_or("--flow requires a value")?;
                spec.flow = Some(name.parse::<FlowAlgorithm>()?);
            }
            "--algorithm" => {
                let name = iter.next().ok_or("--algorithm requires a value")?;
                spec.algorithm = Some(name.parse::<Algorithm>()?);
            }
            "--enumeration-limit" => {
                spec.enumeration_limit = Some(parse_number("--enumeration-limit", iter.next())?);
            }
            "--no-cut" => spec.want_cut = Some(false),
            "--trace" => spec.trace = Some(true),
            "--jobs" => spec.jobs = Some(parse_number("--jobs", iter.next())?),
            "--deadline-ms" => {
                spec.deadline_ms = Some(parse_number("--deadline-ms", iter.next())?);
            }
            "--cost-budget-us" => {
                spec.cost_budget_us = Some(parse_number("--cost-budget-us", iter.next())?);
            }
            "--snapshot" => {
                let value = iter.next().ok_or("--snapshot requires a value")?;
                snapshots.push(parse_snapshot_sel(value));
            }
            "--at" => {
                let value = iter.next().ok_or("--at requires a value")?;
                at = Some(parse_snapshot_sel(value));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown client option `{other}`"));
            }
            _ => positional.push(option.clone()),
        }
    }
    Ok(ClientArgs { spec, snapshots, at, positional })
}

/// One-shot protocol client: builds the request, sends it to a running
/// server, prints the raw JSON response line, and fails on `"ok": false`.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut rest: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--addr" => {
                addr = iter.next().ok_or("--addr requires a value")?.clone();
            }
            _ => rest.push(option.clone()),
        }
    }
    let verb = rest.first().cloned().ok_or("missing client verb")?;
    let ClientArgs { spec: spec_options, snapshots, at, positional } =
        parse_query_options(&rest[1..])?;
    if !snapshots.is_empty() && verb != "db-solve" {
        return Err("--snapshot is only valid with `client db-solve`".to_string());
    }
    if at.is_some() && verb != "db-snapshot" {
        return Err("--at is only valid with `client db-snapshot`".to_string());
    }
    let read_file = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };

    let line = match verb.as_str() {
        "prepare" => {
            let pattern =
                positional.first().ok_or("client prepare requires a regular expression")?;
            let query = QuerySpec { pattern: pattern.clone(), ..spec_options };
            Request::Prepare { query }.to_json().to_string()
        }
        "solve" => {
            let pattern = positional.first().ok_or("client solve requires a regular expression")?;
            let paths = &positional[1..];
            if paths.is_empty() {
                return Err("client solve requires at least one database file".to_string());
            }
            let dbs = paths.iter().map(read_file).collect::<Result<Vec<_>, _>>()?;
            let query = QuerySpec { pattern: pattern.clone(), ..spec_options };
            if dbs.len() == 1 {
                Request::Solve { query, db: dbs.into_iter().next().expect("one database") }
            } else {
                Request::SolveBatch { query, dbs }
            }
            .to_json()
            .to_string()
        }
        "db-put" => {
            let [name, path] = positional.as_slice() else {
                return Err("client db-put requires a database name and a database file".into());
            };
            Request::DbPut { name: name.clone(), db: read_file(path)? }.to_json().to_string()
        }
        "db-patch" => {
            let [name, path] = positional.as_slice() else {
                return Err("client db-patch requires a database name and a patch file".into());
            };
            Request::DbPatch { name: name.clone(), patch: read_file(path)? }.to_json().to_string()
        }
        "db-snapshot" => {
            let [name, snapshot_name] = positional.as_slice() else {
                return Err(
                    "client db-snapshot requires a database name and a snapshot name".to_string()
                );
            };
            Request::DbSnapshot { name: name.clone(), snapshot_name: snapshot_name.clone(), at }
                .to_json()
                .to_string()
        }
        "db-solve" => {
            let [name, pattern] = positional.as_slice() else {
                return Err(
                    "client db-solve requires a database name and a regular expression".into()
                );
            };
            let query = QuerySpec { pattern: pattern.clone(), ..spec_options };
            // One `--snapshot` is answered inline, several as a results
            // array; none binds to the current head.
            let (snapshot, snapshots) = match snapshots.len() {
                0 => (None, None),
                1 => (snapshots.into_iter().next(), None),
                _ => (None, Some(snapshots)),
            };
            Request::DbSolve { query, name: name.clone(), snapshot, snapshots }
                .to_json()
                .to_string()
        }
        "db-list" => Request::DbList.to_json().to_string(),
        "db-drop" => {
            let name = positional.first().ok_or("client db-drop requires a database name")?;
            Request::DbDrop { name: name.clone() }.to_json().to_string()
        }
        "stats" => Request::Stats.to_json().to_string(),
        "metrics" => Request::Metrics.to_json().to_string(),
        "shutdown" => Request::Shutdown.to_json().to_string(),
        "raw" => positional.first().ok_or("client raw requires a JSON line")?.clone(),
        other => Err(format!("unknown client verb `{other}`"))?,
    };

    let mut client =
        Client::connect(&addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let response = client.request_line(&line).map_err(|e| format!("request failed: {e}"))?;
    let json = Json::parse(&response);
    // `metrics` prints the Prometheus text itself (ready to scrape or pipe to
    // a file); every other verb prints the raw JSON response line.
    match &json {
        Ok(parsed) if verb == "metrics" && parsed.get("metrics").is_some() => {
            outln!("{}", parsed.get("metrics").and_then(Json::as_str).unwrap_or("").trim_end());
        }
        _ => outln!("{response}"),
    }
    match json {
        Ok(json) if json.get("ok").and_then(Json::as_bool) == Some(false) => {
            Err(json.get("error").and_then(Json::as_str).unwrap_or("request failed").to_string())
        }
        _ => Ok(()),
    }
}

fn cmd_figure1() {
    outln!("{:<16} {:<36} {:<40}", "language", "Figure 1 region", "computed classification");
    outln!("{}", "-".repeat(94));
    for row in figure1_rows() {
        outln!("{:<16} {:<36} {:<40}", row.pattern, row.expected, row.computed.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_and_gadget_commands_succeed() {
        assert!(run(&["classify".into(), "ax*b".into()]).is_ok());
        assert!(run(&["classify".into(), "aa".into()]).is_ok());
        assert!(run(&["gadget".into(), "aab".into()]).is_ok());
        assert!(run(&["figure1".into()]).is_ok());
        assert!(run(&["--help".into()]).is_ok());
    }

    #[test]
    fn every_engine_backend_is_reachable_from_the_command_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_backends_db.txt");
        std::fs::write(&path, "s a u\nu a v\nv a t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        for algorithm in Algorithm::ALL {
            let result = run(&[
                "resilience".into(),
                "aa".into(),
                path.clone(),
                "--algorithm".into(),
                algorithm.name().into(),
            ]);
            // `aa` is not local / chain / one-dangling: those backends must
            // report NotApplicable; the exact and approximate ones succeed.
            match algorithm {
                Algorithm::Local | Algorithm::BipartiteChain | Algorithm::OneDangling => {
                    assert!(result.unwrap_err().contains("does not apply"), "{algorithm}")
                }
                _ => assert!(result.is_ok(), "{algorithm}"),
            }
        }
    }

    #[test]
    fn every_flow_backend_is_reachable_from_the_command_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_flow_db.txt");
        std::fs::write(&path, "s a u\nu x v\nv b t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        // SELECTABLE = the concrete backends plus `auto`.
        for flow in FlowAlgorithm::SELECTABLE {
            assert!(run(&[
                "resilience".into(),
                "ax*b".into(),
                path.clone(),
                "--flow".into(),
                flow.name().into(),
            ])
            .is_ok());
        }
        assert!(run(&["resilience".into(), "ax*b".into(), path, "--flow".into(), "bogus".into(),])
            .unwrap_err()
            .contains("unknown flow algorithm"));
    }

    #[test]
    fn several_databases_reuse_one_prepared_query() {
        let dir = std::env::temp_dir();
        let path_1 = dir.join("rpq_cli_batch_1.txt");
        let path_2 = dir.join("rpq_cli_batch_2.txt");
        std::fs::write(&path_1, "s a u\nu x v\nv b t\n").unwrap();
        std::fs::write(&path_2, "s a u\nu b t\n").unwrap();
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path_1.to_string_lossy().to_string(),
            path_2.to_string_lossy().to_string(),
            "--show-cut".into(),
        ])
        .is_ok());
    }

    #[test]
    fn cut_report_distinguishes_empty_unavailable_and_suppressed() {
        use rpq_resilience::rpq::ResilienceValue;
        let mut db = GraphDb::new();
        let fact = db.add_fact_by_names("u", 'a', "v");
        let outcome = |value, cut| ResilienceOutcome::new(value, Algorithm::Local, cut);

        // A non-empty witness is listed fact by fact.
        let lines = cut_report(&outcome(ResilienceValue::Finite(1), Some(vec![fact])), &db, true);
        assert_eq!(lines, vec!["contingency set :".to_string(), "  u -a-> v".to_string()]);
        // An empty optimal cut is `{}` — distinguishable from "no witness".
        let lines = cut_report(&outcome(ResilienceValue::Finite(0), Some(vec![])), &db, true);
        assert_eq!(lines, vec!["contingency set : {}".to_string()]);
        // Value-only solving says so explicitly.
        let lines = cut_report(&outcome(ResilienceValue::Finite(1), None), &db, false);
        assert_eq!(lines, vec!["contingency set : (not extracted: --no-cut)".to_string()]);
        // Infinite resilience has no finite cut.
        let lines = cut_report(&outcome(ResilienceValue::Infinite, None), &db, true);
        assert_eq!(
            lines,
            vec!["contingency set : (none exists: the resilience is infinite)".to_string()]
        );
        // A value-only backend is named.
        let none =
            ResilienceOutcome::new(ResilienceValue::Finite(1), Algorithm::ExactEnumeration, None);
        let lines = cut_report(&none, &db, true);
        assert_eq!(
            lines,
            vec!["contingency set : (unavailable: `enumeration` only certifies the value)"
                .to_string()]
        );
    }

    #[test]
    fn one_dangling_show_cut_and_no_cut_work_end_to_end() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_one_dangling_db.txt");
        std::fs::write(&path, "1 a 2\n2 b 3\n3 c 4\n3 e 5\n").unwrap();
        let path = path.to_string_lossy().to_string();
        // The one-dangling backend now extracts witnesses: --show-cut lists
        // them, and --no-cut degrades to the explicit "(not extracted)" note.
        assert!(
            run(&["resilience".into(), "abc|be".into(), path.clone(), "--show-cut".into()]).is_ok()
        );
        assert!(run(&[
            "resilience".into(),
            "abc|be".into(),
            path,
            "--show-cut".into(),
            "--no-cut".into(),
        ])
        .is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&["classify".into(), "((".into()]).is_err());
        assert!(run(&["gadget".into(), "ax*b".into()]).is_err());
        assert!(run(&["resilience".into(), "aa".into()]).is_err());
        assert!(run(&["resilience".into(), "aa".into(), "/nonexistent/file".into()]).is_err());
        assert!(run(&["serve".into(), "--bogus".into()]).is_err());
        assert!(run(&["serve".into(), "--slow-query-log".into(), "soon".into()]).is_err());
        assert!(run(&["client".into()]).is_err());
        assert!(run(&["client".into(), "fly".into()]).is_err());
        assert!(run(&["client".into(), "--addr".into(), "127.0.0.1:1".into(), "stats".into()])
            .unwrap_err()
            .contains("cannot connect"));
    }

    #[test]
    fn enumeration_limit_is_threaded_through_the_resilience_command() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_enum_limit_db.txt");
        std::fs::write(&path, "1 a 2\n2 a 3\n3 a 4\n").unwrap();
        let path = path.to_string_lossy().to_string();
        let err = run(&[
            "resilience".into(),
            "aa".into(),
            path.clone(),
            "--algorithm".into(),
            "enumeration".into(),
            "--enumeration-limit".into(),
            "2".into(),
        ])
        .unwrap_err();
        assert!(err.contains("limit of 2"), "{err}");
        assert!(run(&[
            "resilience".into(),
            "aa".into(),
            path,
            "--algorithm".into(),
            "enumeration".into(),
            "--enumeration-limit".into(),
            "10".into(),
        ])
        .is_ok());
    }

    #[test]
    fn client_talks_to_an_in_process_server() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let running = server.spawn().unwrap();
        let addr = running.addr.to_string();
        let dir = std::env::temp_dir();
        let db1 = dir.join("rpq_cli_client_db1.txt");
        let db2 = dir.join("rpq_cli_client_db2.txt");
        std::fs::write(&db1, "s a u\nu x v\nv b t\n").unwrap();
        std::fs::write(&db2, "s a u\nu b t\n").unwrap();

        let client = |args: &[&str]| -> Result<(), String> {
            let mut full = vec!["client".to_string(), "--addr".to_string(), addr.clone()];
            full.extend(args.iter().map(|s| s.to_string()));
            run(&full)
        };
        assert!(client(&["prepare", "ax*b"]).is_ok());
        assert!(client(&["prepare", "a(x)*b", "--flow", "push-relabel"]).is_ok());
        assert!(client(&["solve", "ax*b", &db1.to_string_lossy()]).is_ok());
        assert!(client(&[
            "solve",
            "ax*b",
            &db1.to_string_lossy(),
            &db2.to_string_lossy(),
            "--bag"
        ])
        .is_ok());
        assert!(client(&["stats"]).is_ok());
        assert!(client(&["raw", r#"{"op":"stats"}"#]).is_ok());
        // The observability surface: traced solves and the metrics scrape.
        assert!(client(&["solve", "ax*b", &db1.to_string_lossy(), "--trace"]).is_ok());
        assert!(client(&["metrics"]).is_ok());
        // Deadline-aware routing over the wire: an impossible deadline is
        // still an `"ok": true` response (certified bounds, tier reported).
        assert!(client(&["solve", "ax*b", &db1.to_string_lossy(), "--deadline-ms", "0"]).is_ok());
        assert!(
            client(&["solve", "ax*b", &db1.to_string_lossy(), "--cost-budget-us", "50000"]).is_ok()
        );
        // A server-side failure surfaces as a CLI error.
        assert!(client(&["prepare", "(("]).unwrap_err().contains("cannot parse"));

        // The hosted-database verbs: upload, patch, solve at two snapshots,
        // pin, list, drop.
        let patch = dir.join("rpq_cli_client_patch.txt");
        std::fs::write(&patch, "- u x v\n").unwrap();
        assert!(client(&["db-put", "g", &db1.to_string_lossy()]).is_ok());
        assert!(client(&["db-patch", "g", &patch.to_string_lossy()]).is_ok());
        assert!(client(&["db-snapshot", "g", "before", "--at", "3"]).is_ok());
        assert!(client(&["db-solve", "g", "ax*b"]).is_ok());
        assert!(
            client(&["db-solve", "g", "ax*b", "--snapshot", "before", "--snapshot", "4"]).is_ok()
        );
        assert!(client(&["db-list"]).is_ok());
        assert!(client(&["db-drop", "g"]).is_ok());
        // Store errors surface typed through the CLI too.
        assert!(client(&["db-patch", "ghost", &patch.to_string_lossy()])
            .unwrap_err()
            .contains("unknown database"));
        // Misplaced snapshot options are rejected client-side.
        assert!(client(&["stats", "--snapshot", "1"]).unwrap_err().contains("db-solve"));
        assert!(client(&["db-solve", "g", "ax*b", "--at", "1"])
            .unwrap_err()
            .contains("db-snapshot"));
        assert!(client(&["shutdown"]).is_ok());
        running.join().unwrap();
    }

    #[test]
    fn deadline_routing_is_reachable_from_the_command_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_deadline_db.txt");
        std::fs::write(&path, "s a u\nu x v\nv b t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        // An impossible deadline still answers (certified bounds, no error),
        // sequentially and through the parallel batch path.
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path.clone(),
            "--deadline-ms".into(),
            "0".into(),
        ])
        .is_ok());
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path.clone(),
            path.clone(),
            "--jobs".into(),
            "2".into(),
            "--cost-budget-us".into(),
            "0".into(),
        ])
        .is_ok());
        // A generous budget runs the planned backend.
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path,
            "--deadline-ms".into(),
            "60000".into(),
        ])
        .is_ok());
        assert!(run(&["resilience".into(), "ax*b".into(), "--deadline-ms".into()]).is_err());
    }

    #[test]
    fn resilience_command_works_on_a_temp_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_test_db.txt");
        std::fs::write(&path, "s a u\nu x v 3\nv b t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path.clone(),
            "--bag".into(),
            "--show-cut".into()
        ])
        .is_ok());
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path,
            "--algorithm".into(),
            "local".into()
        ])
        .is_ok());
    }
}
