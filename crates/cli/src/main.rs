//! `rpq-cli`: command-line front end for the RPQ resilience library.
//!
//! ```text
//! rpq-cli classify  '<regex>'                 classify RES(L) (Figure 1 engine)
//! rpq-cli resilience '<regex>' <db.txt>...    compute the resilience on databases
//!            [--bag] [--algorithm <name>] [--flow <name>] [--show-cut]
//! rpq-cli gadget    '<regex>'                 derive a verified hardness gadget
//! rpq-cli figure1                             re-derive the Figure 1 classification map
//! ```
//!
//! All resilience computations go through the prepared-query engine
//! ([`rpq_resilience::engine::Engine`]): the query is classified **once**
//! (`Engine::prepare`) and the cached plan is reused for every database file
//! on the command line, so batch invocations never re-derive the language
//! analysis. `--algorithm` accepts every backend name of [`Algorithm`] and
//! `--flow` every MinCut backend of [`FlowAlgorithm`] (`rpq-cli --help` shows
//! both lists).
//!
//! Databases use the line-based text format of `rpq-graphdb::text`: one fact
//! per line, `source label target [multiplicity] [!]` (a trailing `!` marks
//! the fact exogenous, i.e. un-removable), `#` for comments.

use std::io::Write;
use std::process::ExitCode;

use rpq_automata::Language;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::{text, GraphDb};
use rpq_resilience::algorithms::Algorithm;
use rpq_resilience::classify::{classify, figure1_rows};
use rpq_resilience::engine::{Engine, SolveOptions};
use rpq_resilience::gadgets::families::find_gadget;
use rpq_resilience::rpq::Rpq;

const USAGE: &str = "\
usage:
  rpq-cli classify '<regex>'
  rpq-cli resilience '<regex>' <db.txt>... [--bag] [--algorithm <name>] [--flow <name>] [--show-cut]
  rpq-cli gadget '<regex>'
  rpq-cli figure1

algorithms: local (Thm 3.13), chain (Prp 7.6), one-dangling (Prp 7.9),
            exact (branch & bound), enumeration (subset oracle, tiny inputs),
            greedy / k-approx (certified polynomial bounds, finite languages)
flow backends: dinic (default), edmonds-karp, push-relabel
database format: one fact per line, `source label target [multiplicity] [!]`\n(a trailing `!` declares the fact exogenous / un-removable)
with several database files, the query plan is prepared once and reused";

/// Prints one line to stdout, exiting quietly when the consumer closed the
/// pipe — `rpq-cli figure1 | head` must not panic with a broken-pipe error.
fn out(args: std::fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = stdout.write_fmt(args).and_then(|()| stdout.write_all(b"\n")) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        panic!("failed printing to stdout: {e}");
    }
}

macro_rules! outln {
    () => { out(format_args!("")) };
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("classify") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_classify(pattern)
        }
        Some("resilience") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_resilience(pattern, &args[2..])
        }
        Some("gadget") => {
            let pattern = args.get(1).ok_or("missing regular expression")?;
            cmd_gadget(pattern)
        }
        Some("figure1") => {
            cmd_figure1();
            Ok(())
        }
        Some("--help" | "-h" | "help") => {
            outln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("no command given".to_string()),
    }
}

fn parse_language(pattern: &str) -> Result<Language, String> {
    Language::parse(pattern).map_err(|e| format!("cannot parse `{pattern}`: {e}"))
}

fn load_database(path: &str) -> Result<GraphDb, String> {
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    text::parse(&contents).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_classify(pattern: &str) -> Result<(), String> {
    let language = parse_language(pattern)?;
    let classification = classify(&language);
    outln!("language        : {pattern}");
    outln!("infix-free form : {}", language.infix_free().description());
    outln!("classification  : {}", classification.label());
    match find_gadget(&language) {
        Some(found) => outln!(
            "hardness gadget : {:?} ({}){}",
            found.family,
            found.family.paper_result(),
            if found.for_mirror { " — for the mirror language (Prp 6.3)" } else { "" }
        ),
        None if classification.is_np_hard() => {
            outln!(
                "hardness gadget : none transcribed (certificate is a language-theoretic witness)"
            )
        }
        None => {}
    }
    Ok(())
}

fn cmd_resilience(pattern: &str, args: &[String]) -> Result<(), String> {
    let language = parse_language(pattern)?;
    let mut query = Rpq::new(language);
    let mut algorithm: Option<Algorithm> = None;
    let mut options = SolveOptions::default();
    let mut show_cut = false;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(option) = iter.next() {
        match option.as_str() {
            "--bag" => query = query.with_bag_semantics(),
            "--show-cut" => show_cut = true,
            "--algorithm" => {
                let name = iter.next().ok_or("--algorithm requires a value")?;
                algorithm = Some(name.parse::<Algorithm>()?);
            }
            "--flow" => {
                let name = iter.next().ok_or("--flow requires a value")?;
                options.flow_backend = name.parse::<FlowAlgorithm>()?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option `{other}`")),
            _ => paths.push(option),
        }
    }
    if paths.is_empty() {
        return Err("missing database file".to_string());
    }

    // Prepare the query once; solve every database with the cached plan.
    let engine = Engine::with_options(options);
    let prepared = match algorithm {
        Some(algorithm) => engine.prepare_with(algorithm, &query),
        None => engine.prepare(&query),
    }
    .map_err(|e| e.to_string())?;

    outln!("query           : {query}");
    outln!("classification  : {}", classify(query.language()).label());
    outln!("plan            : {}", prepared.plan());
    if options.flow_backend != FlowAlgorithm::default() {
        outln!("flow backend    : {}", options.flow_backend);
    }
    for path in paths {
        let db = load_database(path)?;
        outln!();
        outln!("database        : {path} ({} nodes, {} facts)", db.num_nodes(), db.num_facts());
        let outcome = prepared.solve(&db).map_err(|e| e.to_string())?;
        outln!("algorithm       : {}", outcome.algorithm);
        match outcome.bounds {
            Some((lower, upper)) if lower != upper => {
                outln!("resilience      : in [{lower}, {upper}] (certified bounds)")
            }
            _ => outln!("resilience      : {}", outcome.value),
        }
        if show_cut {
            match &outcome.contingency_set {
                Some(cut) if !cut.is_empty() => {
                    outln!("contingency set :");
                    for &fact in cut {
                        outln!("  {}", db.display_fact(fact));
                    }
                }
                Some(_) => outln!("contingency set : (empty)"),
                None => outln!("contingency set : not produced by this algorithm"),
            }
        }
    }
    Ok(())
}

fn cmd_gadget(pattern: &str) -> Result<(), String> {
    let language = parse_language(pattern)?;
    match find_gadget(&language) {
        Some(found) => {
            outln!("language        : {pattern}");
            outln!("gadget family   : {:?} ({})", found.family, found.family.paper_result());
            if found.for_mirror {
                outln!("note            : the gadget certifies the mirror language (Prp 6.3)");
            }
            outln!("matches         : {}", found.report.num_matches);
            outln!("condensed path  : {} edges (odd)", found.report.path_length.unwrap());
            outln!("pre-gadget facts:");
            let db = found.gadget.db();
            for (id, _) in db.facts() {
                outln!("  {}", db.display_fact(id));
            }
            Ok(())
        }
        None => Err(format!(
            "no verified gadget found for `{pattern}` (the language may be tractable, \
             unclassified, or only covered by the untranscribed Figure 6 / Figure 12 families)"
        )),
    }
}

fn cmd_figure1() {
    outln!("{:<16} {:<36} {:<40}", "language", "Figure 1 region", "computed classification");
    outln!("{}", "-".repeat(94));
    for row in figure1_rows() {
        outln!("{:<16} {:<36} {:<40}", row.pattern, row.expected, row.computed.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_and_gadget_commands_succeed() {
        assert!(run(&["classify".into(), "ax*b".into()]).is_ok());
        assert!(run(&["classify".into(), "aa".into()]).is_ok());
        assert!(run(&["gadget".into(), "aab".into()]).is_ok());
        assert!(run(&["figure1".into()]).is_ok());
        assert!(run(&["--help".into()]).is_ok());
    }

    #[test]
    fn every_engine_backend_is_reachable_from_the_command_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_backends_db.txt");
        std::fs::write(&path, "s a u\nu a v\nv a t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        for algorithm in Algorithm::ALL {
            let result = run(&[
                "resilience".into(),
                "aa".into(),
                path.clone(),
                "--algorithm".into(),
                algorithm.name().into(),
            ]);
            // `aa` is not local / chain / one-dangling: those backends must
            // report NotApplicable; the exact and approximate ones succeed.
            match algorithm {
                Algorithm::Local | Algorithm::BipartiteChain | Algorithm::OneDangling => {
                    assert!(result.unwrap_err().contains("does not apply"), "{algorithm}")
                }
                _ => assert!(result.is_ok(), "{algorithm}"),
            }
        }
    }

    #[test]
    fn every_flow_backend_is_reachable_from_the_command_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_flow_db.txt");
        std::fs::write(&path, "s a u\nu x v\nv b t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        for flow in FlowAlgorithm::ALL {
            assert!(run(&[
                "resilience".into(),
                "ax*b".into(),
                path.clone(),
                "--flow".into(),
                flow.name().into(),
            ])
            .is_ok());
        }
        assert!(run(&["resilience".into(), "ax*b".into(), path, "--flow".into(), "bogus".into(),])
            .unwrap_err()
            .contains("unknown flow algorithm"));
    }

    #[test]
    fn several_databases_reuse_one_prepared_query() {
        let dir = std::env::temp_dir();
        let path_1 = dir.join("rpq_cli_batch_1.txt");
        let path_2 = dir.join("rpq_cli_batch_2.txt");
        std::fs::write(&path_1, "s a u\nu x v\nv b t\n").unwrap();
        std::fs::write(&path_2, "s a u\nu b t\n").unwrap();
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path_1.to_string_lossy().to_string(),
            path_2.to_string_lossy().to_string(),
            "--show-cut".into(),
        ])
        .is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus".into()]).is_err());
        assert!(run(&["classify".into(), "((".into()]).is_err());
        assert!(run(&["gadget".into(), "ax*b".into()]).is_err());
        assert!(run(&["resilience".into(), "aa".into()]).is_err());
        assert!(run(&["resilience".into(), "aa".into(), "/nonexistent/file".into()]).is_err());
    }

    #[test]
    fn resilience_command_works_on_a_temp_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("rpq_cli_test_db.txt");
        std::fs::write(&path, "s a u\nu x v 3\nv b t\n").unwrap();
        let path = path.to_string_lossy().to_string();
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path.clone(),
            "--bag".into(),
            "--show-cut".into()
        ])
        .is_ok());
        assert!(run(&[
            "resilience".into(),
            "ax*b".into(),
            path,
            "--algorithm".into(),
            "local".into()
        ])
        .is_ok());
    }
}
