//! # `rpq-server`: a concurrent resilience service
//!
//! The complexity classification of the paper splits every tractable
//! resilience computation into **query-only** analysis and **per-database**
//! flow work, and `rpq_resilience::engine` exploits the split with
//! `Engine::prepare` / `PreparedQuery`. This crate turns that amortization
//! into a service: a multi-threaded request/response server speaking a
//! newline-delimited JSON protocol (`prepare`, `solve`, `solve_batch`,
//! `stats`, `shutdown`) over TCP — or over stdin/stdout in pipe mode — backed
//! by a shared [`QueryCache`].
//!
//! The cache is keyed by the **canonicalized query language**
//! ([`rpq_automata::Language::canonical_form`], derived from the minimized
//! DFA): textually different but equivalent regexes (`a|b` vs `b|a`) hit the
//! same cached `PreparedQuery`, so a fleet of clients issuing differently
//! spelled versions of the same query still shares one plan. Plans are
//! `Send + Sync` and shared across worker threads behind an `Arc` — solving
//! is read-only per-database work.
//!
//! ```
//! use rpq_server::{Client, Request, QuerySpec, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let running = server.spawn().unwrap();
//! let mut client = Client::connect(running.addr).unwrap();
//! let response = client
//!     .request(&Request::Solve {
//!         query: QuerySpec::new("a x* b"),
//!         db: "s a u\nu x v\nv b t\n".to_string(),
//!     })
//!     .unwrap();
//! assert_eq!(response.get("value").and_then(|v| v.as_int()), Some(1));
//! client.request(&Request::Shutdown).unwrap();
//! running.join().unwrap();
//! ```
//!
//! The wire protocol is documented verb by verb in [`protocol`] and in the
//! repository README; `rpq-cli serve` / `rpq-cli client` are the command-line
//! front ends.

#![forbid(unsafe_code)]
pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, QueryCache};
pub use client::Client;
pub use json::{Json, JsonError};
pub use protocol::{QuerySpec, Request, SnapshotSel};
pub use server::{run_pipe, Server, ServerConfig, ServerState, SpawnedServer};
