//! The language-keyed prepared-query cache.
//!
//! Preparing a query ([`Engine::prepare`]) runs the full query-only analysis
//! — infix-free sublanguage, ε-check, locality RO-εNFA, chain / one-dangling
//! decompositions — which dominates small-batch latency (see the
//! `prepared_vs_unprepared` benchmark). [`QueryCache`] memoizes
//! [`PreparedQuery`] plans behind an [`Arc`] so concurrent connections share
//! them, and keys entries by the **canonical language form**
//! ([`rpq_automata::Language::canonical_form`]) rather than the regex text:
//! textually different but equivalent spellings (`a|b` vs `b|a`,
//! `a(b|c)` vs `ab|ac`) hit the same entry. The canonical form is derived
//! from the minimized DFA, so keying is collision-free — two keys are equal
//! iff the languages contain exactly the same words.
//!
//! Because a plan bakes in the solve configuration, the key also includes the
//! query semantics (set/bag), the plan-relevant [`SolveOptions`] and any
//! forced algorithm; the same language prepared under a different flow
//! backend is a different entry. `SolveOptions::want_cut` is deliberately
//! **not** part of the key: whether a contingency set is extracted is a
//! solve-time flag (`PreparedQuery::solve_with_cut`), so value-only and
//! with-cut requests for the same language share one entry. Eviction is
//! least-recently-used with a fixed capacity.
//!
//! The cache is **sharded into lock stripes** keyed by the language
//! fingerprint: each stripe has its own mutex and its own LRU region, so
//! cache hits on different languages never contend on one global lock under
//! high connection counts. Counters (hits/misses/evictions) are lock-free
//! atomics; eviction is LRU *within a stripe* (stripe capacities sum to the
//! configured total), which approximates global LRU the way any striped
//! cache does. `QueryCache::with_shards(capacity, 1)` recovers exact global
//! LRU when determinism matters more than throughput.

use rpq_obs::Trace;
use rpq_resilience::algorithms::{Algorithm, ResilienceError};
use rpq_resilience::engine::{Engine, PreparedQuery, SolveOptions};
use rpq_resilience::rpq::{Rpq, Semantics};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The collision-free cache key: canonical language + everything else the
/// plan depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical form of the query language (spelling-independent).
    canonical: String,
    /// Bag vs set semantics.
    bag: bool,
    /// A forced algorithm, if the caller bypassed automatic dispatch.
    forced: Option<&'static str>,
    /// The flow backend baked into the plan.
    flow: &'static str,
    /// Remaining plan-relevant `SolveOptions` fields (`want_cut` is excluded:
    /// it is applied per solve call, not baked into the plan).
    exact_fallback: bool,
    enumeration_limit: usize,
}

impl CacheKey {
    fn new(rpq: &Rpq, options: &SolveOptions, forced: Option<Algorithm>) -> CacheKey {
        CacheKey {
            canonical: rpq.language().canonical_form(),
            bag: rpq.semantics() == Semantics::Bag,
            forced: forced.map(Algorithm::name),
            flow: options.flow_backend.name(),
            exact_fallback: options.exact_fallback,
            enumeration_limit: options.enumeration_limit,
        }
    }
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// The result of a cache lookup (see [`QueryCache::get_or_prepare`]).
pub struct CacheLookup {
    /// The shared prepared plan.
    pub prepared: Arc<PreparedQuery>,
    /// Whether the plan was answered from the cache.
    pub hit: bool,
    /// The 64-bit language fingerprint — hashed from the canonical key this
    /// lookup already computed, so callers never re-canonicalize.
    pub fingerprint: u64,
}

/// Aggregate cache counters (see [`QueryCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run `Engine::prepare`.
    pub misses: u64,
    /// Entries dropped to respect the capacity.
    pub evictions: u64,
    /// Entries currently cached (summed over all stripes).
    pub entries: usize,
    /// The configured total capacity.
    pub capacity: usize,
    /// The number of lock stripes.
    pub shards: usize,
}

/// The default stripe count of [`QueryCache::new`] (clamped to the capacity).
pub const DEFAULT_SHARDS: usize = 8;

/// The minimum number of slots per stripe: every option-variant of a
/// language shares its stripe, so stripes must hold a few entries each.
pub const MIN_STRIPE_CAPACITY: usize = 4;

/// A thread-safe, lock-striped LRU cache of [`PreparedQuery`] plans keyed by
/// canonicalized query language (plus semantics and options). See the module
/// docs for the keying and sharding rules.
pub struct QueryCache {
    capacity: usize,
    stripe_capacity: usize,
    stripes: Vec<Mutex<Inner>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// A cache holding at most `capacity` prepared plans (at least one),
    /// striped over [`DEFAULT_SHARDS`] locks.
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit stripe count. The stripe count is clamped so
    /// that every stripe gets at least [`MIN_STRIPE_CAPACITY`] slots — all
    /// option-variants of one language land in the same stripe (they share a
    /// fingerprint), so tiny stripes would thrash between variants. Each
    /// stripe gets `capacity.div_ceil(shards)` slots; stripe capacities sum
    /// to (at least) the requested total.
    pub fn with_shards(capacity: usize, shards: usize) -> QueryCache {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, (capacity / MIN_STRIPE_CAPACITY).max(1));
        QueryCache {
            capacity,
            stripe_capacity: capacity.div_ceil(shards),
            stripes: (0..shards)
                .map(|_| Mutex::new(Inner { entries: HashMap::new(), tick: 0 }))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The stripe a language fingerprint maps to. All keys of one language
    /// share a stripe regardless of options, so a hot language contends on
    /// exactly one lock and different languages spread over all of them.
    fn stripe(&self, fingerprint: u64) -> &Mutex<Inner> {
        // lint: allow(panic-freedom, modulo of the stripe count is always in range)
        &self.stripes[(fingerprint % self.stripes.len() as u64) as usize]
    }

    /// Returns the cached plan for the query's language (and the engine's
    /// options), preparing and inserting it on a miss. Preparation runs
    /// outside every cache lock, so a slow `prepare` never blocks hits on
    /// other languages; two threads racing on the same new language may both
    /// prepare, and the first insert wins.
    pub fn get_or_prepare(
        &self,
        engine: &Engine,
        rpq: &Rpq,
        forced: Option<Algorithm>,
    ) -> Result<CacheLookup, ResilienceError> {
        self.get_or_prepare_traced(engine, rpq, forced, &mut Trace::disabled())
    }

    /// [`QueryCache::get_or_prepare`] with phase tracing: a hit records one
    /// `cache_lookup` span (canonicalization plus the stripe probe); a miss
    /// records the engine's own `canonicalize`/`classify`/`plan` spans (or a
    /// single `plan` span when the algorithm is forced, since forced plans
    /// skip classification).
    pub fn get_or_prepare_traced(
        &self,
        engine: &Engine,
        rpq: &Rpq,
        forced: Option<Algorithm>,
        trace: &mut Trace,
    ) -> Result<CacheLookup, ResilienceError> {
        let lookup_timer = trace.begin();
        let key = CacheKey::new(rpq, engine.options(), forced);
        let fingerprint = rpq_automata::Language::fingerprint_of_canonical_form(&key.canonical);
        if let Some(prepared) = self.lookup(fingerprint, &key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            trace.end(lookup_timer, "cache_lookup");
            return Ok(CacheLookup { prepared, hit: true, fingerprint });
        }
        trace.end(lookup_timer, "cache_lookup");
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(match forced {
            Some(algorithm) => {
                let plan_timer = trace.begin();
                let prepared = engine.prepare_with(algorithm, rpq)?;
                trace.end(plan_timer, "plan");
                prepared
            }
            None => engine.prepare_traced(rpq, trace)?,
        });
        Ok(CacheLookup {
            prepared: self.insert(fingerprint, key, prepared),
            hit: false,
            fingerprint,
        })
    }

    fn lookup(&self, fingerprint: u64, key: &CacheKey) -> Option<Arc<PreparedQuery>> {
        // A poisoned stripe still holds a structurally valid map (every
        // mutation below is panic-free), so recover instead of unwinding.
        let mut inner = self.stripe(fingerprint).lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.prepared)
        })
    }

    fn insert(
        &self,
        fingerprint: u64,
        key: CacheKey,
        prepared: Arc<PreparedQuery>,
    ) -> Arc<PreparedQuery> {
        let mut inner = self.stripe(fingerprint).lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.entries.get_mut(&key) {
            // Another thread prepared the same language concurrently; keep
            // the incumbent so every caller shares one plan.
            existing.last_used = tick;
            return Arc::clone(&existing.prepared);
        }
        while inner.entries.len() >= self.stripe_capacity {
            let oldest =
                inner.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone());
            let Some(oldest) = oldest else { break };
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.entries.insert(key, Entry { prepared: Arc::clone(&prepared), last_used: tick });
        prepared
    }

    /// The current counters (entries summed over all stripes).
    pub fn stats(&self) -> CacheStats {
        let entries = self
            .stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).entries.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
            shards: self.stripes.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_and_engine(capacity: usize) -> (QueryCache, Engine) {
        (QueryCache::new(capacity), Engine::new())
    }

    #[test]
    fn equivalent_spellings_share_one_entry() {
        let (cache, engine) = cache_and_engine(8);
        let first = cache.get_or_prepare(&engine, &Rpq::parse("a|b").unwrap(), None).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_prepare(&engine, &Rpq::parse("b|a").unwrap(), None).unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.prepared, &second.prepared));
        assert_eq!(first.fingerprint, second.fingerprint);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_languages_get_different_entries() {
        let (cache, engine) = cache_and_engine(8);
        cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap();
        assert!(!cache.get_or_prepare(&engine, &Rpq::parse("ab").unwrap(), None).unwrap().hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn semantics_options_and_forced_algorithm_split_the_key() {
        let (cache, engine) = cache_and_engine(8);
        let q = Rpq::parse("ax*b").unwrap();
        cache.get_or_prepare(&engine, &q, None).unwrap();
        // Bag semantics: same language, different key.
        let bag = Rpq::parse("ax*b").unwrap().with_bag_semantics();
        assert!(!cache.get_or_prepare(&engine, &bag, None).unwrap().hit);
        // Different flow backend: different key.
        let ek = Engine::with_options(SolveOptions {
            flow_backend: rpq_flow::FlowAlgorithm::EdmondsKarp,
            ..Default::default()
        });
        assert!(!cache.get_or_prepare(&ek, &q, None).unwrap().hit);
        // Forced algorithm: different key.
        assert!(!cache.get_or_prepare(&engine, &q, Some(Algorithm::Local)).unwrap().hit);
        // And each of those now hits.
        assert!(cache.get_or_prepare(&engine, &q, None).unwrap().hit);
        assert!(cache.get_or_prepare(&ek, &q, None).unwrap().hit);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn want_cut_is_not_part_of_the_key() {
        // Cut extraction is a solve-time flag: a value-only engine and a
        // with-cut engine share one cached plan per language.
        let (cache, with_cut) = cache_and_engine(8);
        let value_only =
            Engine::with_options(SolveOptions { want_cut: false, ..Default::default() });
        let q = Rpq::parse("abc|be").unwrap();
        let first = cache.get_or_prepare(&with_cut, &q, None).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_prepare(&value_only, &q, None).unwrap();
        assert!(second.hit, "want_cut must not split the cache key");
        assert!(Arc::ptr_eq(&first.prepared, &second.prepared));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn sharding_clamps_and_reports_its_stripe_count() {
        // Tiny capacities collapse to one stripe (exact global LRU).
        assert_eq!(QueryCache::new(2).stats().shards, 1);
        assert_eq!(QueryCache::with_shards(2, 16).stats().shards, 1);
        // Every stripe keeps at least MIN_STRIPE_CAPACITY slots.
        assert_eq!(QueryCache::with_shards(16, 16).stats().shards, 16 / MIN_STRIPE_CAPACITY);
        // The default server configuration really is striped.
        let default = QueryCache::new(256).stats();
        assert_eq!(default.shards, DEFAULT_SHARDS);
        assert_eq!(default.capacity, 256);
    }

    #[test]
    fn striped_cache_spreads_languages_and_aggregates_stats() {
        let (cache, engine) = cache_and_engine(64); // 8 stripes by default
        let patterns = ["a", "b", "c", "ab", "ax*b", "ab|bc", "abc|be", "ba"];
        for pattern in patterns {
            assert!(
                !cache.get_or_prepare(&engine, &Rpq::parse(pattern).unwrap(), None).unwrap().hit
            );
        }
        // Entries are summed over all stripes; every language now hits.
        assert_eq!(cache.stats().entries, patterns.len());
        for pattern in patterns {
            assert!(
                cache.get_or_prepare(&engine, &Rpq::parse(pattern).unwrap(), None).unwrap().hit
            );
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (patterns.len() as u64, patterns.len() as u64));
        // At least two distinct stripes are populated (fingerprints spread).
        let distinct: std::collections::BTreeSet<u64> = patterns
            .iter()
            .map(|p| {
                let lookup = cache.get_or_prepare(&engine, &Rpq::parse(p).unwrap(), None).unwrap();
                lookup.fingerprint % stats.shards as u64
            })
            .collect();
        assert!(distinct.len() > 1, "fingerprints must spread over stripes: {distinct:?}");
    }

    #[test]
    fn concurrent_hits_on_distinct_stripes_share_plans() {
        let cache = std::sync::Arc::new(QueryCache::new(64));
        let patterns = ["a", "b", "ax*b", "ab|bc"];
        let mut handles = Vec::new();
        for &pattern in &patterns {
            for _ in 0..3 {
                let cache = std::sync::Arc::clone(&cache);
                handles.push(std::thread::spawn(move || {
                    let engine = Engine::new();
                    let rpq = Rpq::parse(pattern).unwrap();
                    let lookup = cache.get_or_prepare(&engine, &rpq, None).unwrap();
                    std::sync::Arc::as_ptr(&lookup.prepared) as usize
                }));
            }
        }
        let mut plans: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        plans.sort_unstable();
        plans.dedup();
        // Racing threads may both prepare, but the first insert wins and
        // every caller is handed the incumbent: exactly one shared plan per
        // language, no matter how the 12 lookups interleaved.
        assert_eq!(cache.stats().entries, patterns.len());
        assert_eq!(plans.len(), patterns.len());
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 12);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        // Capacity 2 collapses to a single stripe: exact global LRU.
        let (cache, engine) = cache_and_engine(2);
        cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap();
        cache.get_or_prepare(&engine, &Rpq::parse("b").unwrap(), None).unwrap();
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap().hit);
        cache.get_or_prepare(&engine, &Rpq::parse("c").unwrap(), None).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        // `a` survived, `b` was evicted.
        assert!(cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap().hit);
        assert!(!cache.get_or_prepare(&engine, &Rpq::parse("b").unwrap(), None).unwrap().hit);
    }

    #[test]
    fn prepare_errors_are_not_cached() {
        let engine =
            Engine::with_options(SolveOptions { exact_fallback: false, ..Default::default() });
        let cache = QueryCache::new(4);
        let q = Rpq::parse("aa").unwrap();
        assert!(cache.get_or_prepare(&engine, &q, None).is_err());
        assert!(cache.get_or_prepare(&engine, &q, None).is_err());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.misses), (0, 2));
    }
}
