//! The language-keyed prepared-query cache.
//!
//! Preparing a query ([`Engine::prepare`]) runs the full query-only analysis
//! — infix-free sublanguage, ε-check, locality RO-εNFA, chain / one-dangling
//! decompositions — which dominates small-batch latency (see the
//! `prepared_vs_unprepared` benchmark). [`QueryCache`] memoizes
//! [`PreparedQuery`] plans behind an [`Arc`] so concurrent connections share
//! them, and keys entries by the **canonical language form**
//! ([`rpq_automata::Language::canonical_form`]) rather than the regex text:
//! textually different but equivalent spellings (`a|b` vs `b|a`,
//! `a(b|c)` vs `ab|ac`) hit the same entry. The canonical form is derived
//! from the minimized DFA, so keying is collision-free — two keys are equal
//! iff the languages contain exactly the same words.
//!
//! Because a plan bakes in the solve configuration, the key also includes the
//! query semantics (set/bag), the plan-relevant [`SolveOptions`] and any
//! forced algorithm; the same language prepared under a different flow
//! backend is a different entry. `SolveOptions::want_cut` is deliberately
//! **not** part of the key: whether a contingency set is extracted is a
//! solve-time flag (`PreparedQuery::solve_with_cut`), so value-only and
//! with-cut requests for the same language share one entry. Eviction is
//! least-recently-used with a fixed capacity.

use rpq_resilience::algorithms::{Algorithm, ResilienceError};
use rpq_resilience::engine::{Engine, PreparedQuery, SolveOptions};
use rpq_resilience::rpq::{Rpq, Semantics};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The collision-free cache key: canonical language + everything else the
/// plan depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical form of the query language (spelling-independent).
    canonical: String,
    /// Bag vs set semantics.
    bag: bool,
    /// A forced algorithm, if the caller bypassed automatic dispatch.
    forced: Option<&'static str>,
    /// The flow backend baked into the plan.
    flow: &'static str,
    /// Remaining plan-relevant `SolveOptions` fields (`want_cut` is excluded:
    /// it is applied per solve call, not baked into the plan).
    exact_fallback: bool,
    enumeration_limit: usize,
}

impl CacheKey {
    fn new(rpq: &Rpq, options: &SolveOptions, forced: Option<Algorithm>) -> CacheKey {
        CacheKey {
            canonical: rpq.language().canonical_form(),
            bag: rpq.semantics() == Semantics::Bag,
            forced: forced.map(Algorithm::name),
            flow: options.flow_backend.name(),
            exact_fallback: options.exact_fallback,
            enumeration_limit: options.enumeration_limit,
        }
    }
}

struct Entry {
    prepared: Arc<PreparedQuery>,
    last_used: u64,
}

struct Inner {
    entries: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// The result of a cache lookup (see [`QueryCache::get_or_prepare`]).
pub struct CacheLookup {
    /// The shared prepared plan.
    pub prepared: Arc<PreparedQuery>,
    /// Whether the plan was answered from the cache.
    pub hit: bool,
    /// The 64-bit language fingerprint — hashed from the canonical key this
    /// lookup already computed, so callers never re-canonicalize.
    pub fingerprint: u64,
}

/// Aggregate cache counters (see [`QueryCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run `Engine::prepare`.
    pub misses: u64,
    /// Entries dropped to respect the capacity.
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// The configured capacity.
    pub capacity: usize,
}

/// A thread-safe LRU cache of [`PreparedQuery`] plans keyed by canonicalized
/// query language (plus semantics and options). See the module docs.
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// A cache holding at most `capacity` prepared plans (at least one).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { entries: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached plan for the query's language (and the engine's
    /// options), preparing and inserting it on a miss. Preparation runs
    /// outside the cache lock, so a slow `prepare` never blocks hits on
    /// other languages; two threads racing on the same new language may both
    /// prepare, and the first insert wins.
    pub fn get_or_prepare(
        &self,
        engine: &Engine,
        rpq: &Rpq,
        forced: Option<Algorithm>,
    ) -> Result<CacheLookup, ResilienceError> {
        let key = CacheKey::new(rpq, engine.options(), forced);
        let fingerprint = rpq_automata::Language::fingerprint_of_canonical_form(&key.canonical);
        if let Some(prepared) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(CacheLookup { prepared, hit: true, fingerprint });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = Arc::new(match forced {
            Some(algorithm) => engine.prepare_with(algorithm, rpq)?,
            None => engine.prepare(rpq)?,
        });
        Ok(CacheLookup { prepared: self.insert(key, prepared), hit: false, fingerprint })
    }

    fn lookup(&self, key: &CacheKey) -> Option<Arc<PreparedQuery>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.prepared)
        })
    }

    fn insert(&self, key: CacheKey, prepared: Arc<PreparedQuery>) -> Arc<PreparedQuery> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.entries.get_mut(&key) {
            // Another thread prepared the same language concurrently; keep
            // the incumbent so every caller shares one plan.
            existing.last_used = tick;
            return Arc::clone(&existing.prepared);
        }
        while inner.entries.len() >= self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty cache above capacity");
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.entries.insert(key, Entry { prepared: Arc::clone(&prepared), last_used: tick });
        prepared
    }

    /// The current counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("cache lock").entries.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_and_engine(capacity: usize) -> (QueryCache, Engine) {
        (QueryCache::new(capacity), Engine::new())
    }

    #[test]
    fn equivalent_spellings_share_one_entry() {
        let (cache, engine) = cache_and_engine(8);
        let first = cache.get_or_prepare(&engine, &Rpq::parse("a|b").unwrap(), None).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_prepare(&engine, &Rpq::parse("b|a").unwrap(), None).unwrap();
        assert!(second.hit);
        assert!(Arc::ptr_eq(&first.prepared, &second.prepared));
        assert_eq!(first.fingerprint, second.fingerprint);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_languages_get_different_entries() {
        let (cache, engine) = cache_and_engine(8);
        cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap();
        assert!(!cache.get_or_prepare(&engine, &Rpq::parse("ab").unwrap(), None).unwrap().hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn semantics_options_and_forced_algorithm_split_the_key() {
        let (cache, engine) = cache_and_engine(8);
        let q = Rpq::parse("ax*b").unwrap();
        cache.get_or_prepare(&engine, &q, None).unwrap();
        // Bag semantics: same language, different key.
        let bag = Rpq::parse("ax*b").unwrap().with_bag_semantics();
        assert!(!cache.get_or_prepare(&engine, &bag, None).unwrap().hit);
        // Different flow backend: different key.
        let ek = Engine::with_options(SolveOptions {
            flow_backend: rpq_flow::FlowAlgorithm::EdmondsKarp,
            ..Default::default()
        });
        assert!(!cache.get_or_prepare(&ek, &q, None).unwrap().hit);
        // Forced algorithm: different key.
        assert!(!cache.get_or_prepare(&engine, &q, Some(Algorithm::Local)).unwrap().hit);
        // And each of those now hits.
        assert!(cache.get_or_prepare(&engine, &q, None).unwrap().hit);
        assert!(cache.get_or_prepare(&ek, &q, None).unwrap().hit);
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn want_cut_is_not_part_of_the_key() {
        // Cut extraction is a solve-time flag: a value-only engine and a
        // with-cut engine share one cached plan per language.
        let (cache, with_cut) = cache_and_engine(8);
        let value_only =
            Engine::with_options(SolveOptions { want_cut: false, ..Default::default() });
        let q = Rpq::parse("abc|be").unwrap();
        let first = cache.get_or_prepare(&with_cut, &q, None).unwrap();
        assert!(!first.hit);
        let second = cache.get_or_prepare(&value_only, &q, None).unwrap();
        assert!(second.hit, "want_cut must not split the cache key");
        assert!(Arc::ptr_eq(&first.prepared, &second.prepared));
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let (cache, engine) = cache_and_engine(2);
        cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap();
        cache.get_or_prepare(&engine, &Rpq::parse("b").unwrap(), None).unwrap();
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap().hit);
        cache.get_or_prepare(&engine, &Rpq::parse("c").unwrap(), None).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        // `a` survived, `b` was evicted.
        assert!(cache.get_or_prepare(&engine, &Rpq::parse("a").unwrap(), None).unwrap().hit);
        assert!(!cache.get_or_prepare(&engine, &Rpq::parse("b").unwrap(), None).unwrap().hit);
    }

    #[test]
    fn prepare_errors_are_not_cached() {
        let engine =
            Engine::with_options(SolveOptions { exact_fallback: false, ..Default::default() });
        let cache = QueryCache::new(4);
        let q = Rpq::parse("aa").unwrap();
        assert!(cache.get_or_prepare(&engine, &q, None).is_err());
        assert!(cache.get_or_prepare(&engine, &q, None).is_err());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.misses), (0, 2));
    }
}
