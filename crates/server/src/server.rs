//! The concurrent resilience service.
//!
//! [`Server::bind`] opens a TCP listener; [`Server::run`] accepts connections
//! and dispatches each to a fixed pool of worker threads. Every connection
//! speaks the newline-delimited JSON protocol of [`crate::protocol`], and all
//! workers share one [`QueryCache`], so a query language prepared by any
//! connection is reused by every other one ([`Arc`]-shared
//! `PreparedQuery` plans — the engine layer is `Send + Sync` by
//! construction). [`run_pipe`] serves the same protocol over an arbitrary
//! reader/writer pair (stdin/stdout in `rpq-cli serve --pipe`), which is also
//! how the unit tests below drive the handler without sockets.
//!
//! A `shutdown` request stops the accept loop; open connections are drained
//! by the workers before [`Server::run`] returns, so a client that issues
//! `shutdown` after reading its response observes a clean exit.

use crate::cache::{CacheLookup, CacheStats, QueryCache};
use crate::json::Json;
use crate::protocol::{error_response, outcome_json, QuerySpec, Request};
use rpq_automata::Language;
use rpq_graphdb::{text, GraphDb};
use rpq_resilience::engine::{Engine, SolveOptions};
use rpq_resilience::rpq::Rpq;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration: worker pool size, cache capacity and the default
/// [`SolveOptions`] (per-request settings override them, see
/// [`crate::protocol::QuerySpec`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling connections (at least 1).
    pub threads: usize,
    /// Capacity of the shared prepared-query cache.
    pub cache_capacity: usize,
    /// Default solve options; the baseline for per-request overrides.
    pub options: SolveOptions,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { threads: 4, cache_capacity: 256, options: SolveOptions::default() }
    }
}

/// Shared server state: the prepared-query cache, request counters and the
/// shutdown flag. All request handling lives here so that the TCP front end
/// and the pipe front end behave identically.
pub struct ServerState {
    options: SolveOptions,
    threads: usize,
    cache: QueryCache,
    requests: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    /// The bound address, once known — used to self-connect and wake the
    /// accept loop on shutdown.
    addr: Mutex<Option<SocketAddr>>,
}

impl ServerState {
    /// Fresh state for a configuration.
    pub fn new(config: ServerConfig) -> ServerState {
        ServerState {
            options: config.options,
            threads: config.threads.max(1),
            cache: QueryCache::new(config.cache_capacity),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr: Mutex::new(None),
        }
    }

    /// The shared prepared-query cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one request line and returns the response line plus whether
    /// the request asked the server to shut down. Never panics on malformed
    /// input: every failure becomes an `{"ok":false,…}` response.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match Request::parse(line) {
            Ok(Request::Shutdown) => (Json::object([("ok", Json::Bool(true))]).to_string(), true),
            Ok(request) => {
                let response = self.handle_request(&request);
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                (response.to_string(), false)
            }
            Err(message) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                (error_response(message).to_string(), false)
            }
        }
    }

    /// Handles one parsed, non-`shutdown` request.
    pub fn handle_request(&self, request: &Request) -> Json {
        match request {
            Request::Prepare { query } => self.handle_prepare(query),
            Request::Solve { query, db } => self.handle_solve(query, db),
            Request::SolveBatch { query, dbs } => self.handle_solve_batch(query, dbs),
            Request::Stats => self.handle_stats(),
            Request::Shutdown => Json::object([("ok", Json::Bool(true))]),
        }
    }

    fn engine_for(&self, spec: &QuerySpec) -> Engine {
        let mut options = self.options;
        if let Some(flow) = spec.flow {
            options.flow_backend = flow;
        }
        if let Some(limit) = spec.enumeration_limit {
            options.enumeration_limit = limit;
        }
        Engine::with_options(options)
    }

    /// Whether this request wants a contingency set: the per-request
    /// `want_cut` override, or the server default. Applied per solve call
    /// (`PreparedQuery::solve_with_cut`), never part of the cache key.
    fn want_cut_for(&self, spec: &QuerySpec) -> bool {
        spec.want_cut.unwrap_or(self.options.want_cut)
    }

    fn parse_query(&self, spec: &QuerySpec) -> Result<Rpq, String> {
        let language = Language::parse(&spec.pattern)
            .map_err(|e| format!("cannot parse query `{}`: {e}", spec.pattern))?;
        let mut rpq = Rpq::new(language);
        if spec.bag {
            rpq = rpq.with_bag_semantics();
        }
        Ok(rpq)
    }

    fn prepare(&self, spec: &QuerySpec) -> Result<CacheLookup, String> {
        let rpq = self.parse_query(spec)?;
        let engine = self.engine_for(spec);
        self.cache.get_or_prepare(&engine, &rpq, spec.algorithm).map_err(|e| e.to_string())
    }

    fn handle_prepare(&self, spec: &QuerySpec) -> Json {
        let lookup = match self.prepare(spec) {
            Ok(p) => p,
            Err(message) => return error_response(message),
        };
        Json::object([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(lookup.hit)),
            // The fingerprint is hashed from the canonical form the cache
            // lookup already computed — no second canonicalization.
            ("fingerprint", Json::Str(format!("{:016x}", lookup.fingerprint))),
            ("plan", Json::Raw(lookup.prepared.plan().to_json())),
        ])
    }

    fn handle_solve(&self, spec: &QuerySpec, db_text: &str) -> Json {
        let CacheLookup { prepared, hit: cached, .. } = match self.prepare(spec) {
            Ok(p) => p,
            Err(message) => return error_response(message),
        };
        let db = match parse_db(db_text) {
            Ok(db) => db,
            Err(message) => return error_response(message),
        };
        match prepared.solve_with_cut(&db, self.want_cut_for(spec)) {
            Ok(outcome) => {
                let mut fields = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("cached".to_string(), Json::Bool(cached)),
                ];
                if let Json::Object(rest) = outcome_json(&outcome, &db) {
                    fields.extend(rest);
                }
                Json::Object(fields)
            }
            Err(e) => error_response(e.to_string()),
        }
    }

    fn handle_solve_batch(&self, spec: &QuerySpec, dbs: &[String]) -> Json {
        let CacheLookup { prepared, hit: cached, .. } = match self.prepare(spec) {
            Ok(p) => p,
            Err(message) => return error_response(message),
        };
        let want_cut = self.want_cut_for(spec);
        let results = dbs
            .iter()
            .map(|db_text| match parse_db(db_text) {
                Err(message) => error_response(message),
                Ok(db) => match prepared.solve_with_cut(&db, want_cut) {
                    Ok(outcome) => outcome_json(&outcome, &db),
                    Err(e) => error_response(e.to_string()),
                },
            })
            .collect();
        Json::object([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(cached)),
            ("results", Json::Array(results)),
        ])
    }

    fn handle_stats(&self) -> Json {
        let CacheStats { hits, misses, evictions, entries, capacity } = self.cache.stats();
        Json::object([
            ("ok", Json::Bool(true)),
            ("requests", Json::Int(self.requests.load(Ordering::Relaxed) as i128)),
            ("errors", Json::Int(self.errors.load(Ordering::Relaxed) as i128)),
            ("threads", Json::Int(self.threads as i128)),
            (
                "cache",
                Json::object([
                    ("hits", Json::Int(hits as i128)),
                    ("misses", Json::Int(misses as i128)),
                    ("evictions", Json::Int(evictions as i128)),
                    ("entries", Json::Int(entries as i128)),
                    ("capacity", Json::Int(capacity as i128)),
                ]),
            ),
        ])
    }

    /// Sets the shutdown flag and wakes the accept loop with a self-connect.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self.addr.lock().expect("addr lock");
        if let Some(addr) = addr {
            // The dummy connection only has to make `accept` return; errors
            // mean the listener is already gone, which is fine.
            let _ = TcpStream::connect(addr);
        }
    }
}

fn parse_db(db_text: &str) -> Result<GraphDb, String> {
    text::parse(db_text).map_err(|e| format!("cannot parse database: {e}"))
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an OS-assigned
    /// port) with the given configuration.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState::new(config));
        *state.addr.lock().expect("addr lock") = Some(listener.local_addr()?);
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (counters, cache).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves connections until a `shutdown` request arrives.
    /// Open connections are drained before returning.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, state } = self;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<JoinHandle<()>> = (0..state.threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let stream = match receiver.lock().expect("worker queue lock").recv() {
                        Ok(stream) => stream,
                        Err(_) => return, // channel closed: server is done
                    };
                    if let Err(e) = handle_connection(&state, stream) {
                        // Connection-level I/O errors (resets, truncated
                        // lines) only affect that client.
                        eprintln!("rpq-server: connection error: {e}");
                    }
                })
            })
            .collect();

        for stream in listener.incoming() {
            if state.is_shutting_down() {
                break; // the stream waking us up is dropped unanswered
            }
            match stream {
                Ok(stream) => {
                    sender.send(stream).expect("workers outlive the accept loop");
                }
                Err(e) => eprintln!("rpq-server: accept error: {e}"),
            }
        }
        drop(sender);
        for worker in workers {
            worker.join().expect("worker thread panicked");
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning its address and a
    /// join handle (convenience for tests and benchmarks).
    pub fn spawn(self) -> io::Result<SpawnedServer> {
        let addr = self.local_addr()?;
        let state = self.state();
        let handle = std::thread::spawn(move || self.run());
        Ok(SpawnedServer { addr, state, handle })
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct SpawnedServer {
    /// The bound address.
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    handle: JoinHandle<io::Result<()>>,
}

impl SpawnedServer {
    /// The shared state (counters, cache).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Waits for the server to exit (after a `shutdown` request).
    pub fn join(self) -> io::Result<()> {
        self.handle.join().expect("server thread panicked")
    }
}

/// How often an idle connection re-checks the shutdown flag. Requests in
/// flight are never interrupted; a connection merely *waiting* for its next
/// request is released within this interval once a shutdown is requested, so
/// [`Server::run`] can join its workers even while clients keep idle
/// persistent connections open.
const IDLE_POLL: std::time::Duration = std::time::Duration::from_millis(250);

fn handle_connection(state: &ServerState, stream: TcpStream) -> io::Result<()> {
    // One short line per response: disable Nagle so replies are not held
    // back waiting for ACKs of previous responses (~40 ms per round trip).
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Raw bytes, not a String: `read_until` keeps everything consumed so far
    // on a timeout, whereas `read_line` would truncate a slice ending in the
    // middle of a multi-byte UTF-8 character and silently lose those bytes.
    let mut buffer: Vec<u8> = Vec::new();
    let mut eof = false;
    while !eof {
        // `read_until` appends, so a line arriving in several timeout slices
        // accumulates across retries until its newline shows up.
        match reader.read_until(b'\n', &mut buffer) {
            Ok(0) => eof = true, // serve a trailing newline-less request below
            Ok(_) if !buffer.ends_with(b"\n") => continue, // partial line
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if state.is_shutting_down() {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = String::from_utf8_lossy(&std::mem::take(&mut buffer)).into_owned();
        if request.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = state.handle_line(&request);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            state.initiate_shutdown();
            return Ok(());
        }
    }
    Ok(())
}

/// Serves the protocol over a reader/writer pair — `rpq-cli serve --pipe`
/// uses stdin/stdout. Returns at EOF or after a `shutdown` request. The pipe
/// front end is single-threaded but shares the same [`ServerState`] handler
/// (and cache semantics) as the TCP front end.
pub fn run_pipe(
    state: &ServerState,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = state.handle_line(&line);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        ServerState::new(ServerConfig::default())
    }

    fn request(state: &ServerState, line: &str) -> Json {
        let (response, _) = state.handle_line(line);
        Json::parse(&response).expect("responses are valid JSON")
    }

    #[test]
    fn prepare_reports_plan_and_cache_status() {
        let state = state();
        let first = request(&state, r#"{"op":"prepare","query":"ax*b"}"#);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            first.get("plan").unwrap().get("algorithm").and_then(Json::as_str),
            Some("local")
        );
        // A differently spelled but equivalent regex hits the cache.
        let second = request(&state, r#"{"op":"prepare","query":"a(x)*b"}"#);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(second.get("fingerprint"), first.get("fingerprint"));
    }

    #[test]
    fn solve_returns_values_and_cuts() {
        let state = state();
        let response =
            request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("value"), Some(&Json::Int(1)));
        assert_eq!(response.get("algorithm").and_then(Json::as_str), Some("local"));
        assert_eq!(response.get("exact"), Some(&Json::Bool(true)));
        assert_eq!(response.get("contingency_set").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn solve_batch_mixes_successes_and_per_database_errors() {
        let state = state();
        let response = request(
            &state,
            r#"{"op":"solve_batch","query":"ab","dbs":["u a v\nv b w\n","u ab v"]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("value"), Some(&Json::Int(1)));
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
        assert!(results[1].get("error").and_then(Json::as_str).unwrap().contains("parse"));
    }

    #[test]
    fn per_request_settings_reach_the_engine() {
        let state = state();
        // ε ∈ L: infinite resilience.
        let response = request(&state, r#"{"op":"solve","query":"a*","db":"u a v\n"}"#);
        assert_eq!(response.get("value").and_then(Json::as_str), Some("infinite"));
        // Bag semantics multiply the cut cost by the multiplicity.
        let set = request(&state, r#"{"op":"solve","query":"a","db":"u a v 5\n"}"#);
        assert_eq!(set.get("value"), Some(&Json::Int(1)));
        let bag = request(&state, r#"{"op":"solve","query":"a","bag":true,"db":"u a v 5\n"}"#);
        assert_eq!(bag.get("value"), Some(&Json::Int(5)));
        // Forced enumeration with a tiny limit yields a typed error.
        let response = request(
            &state,
            r#"{"op":"solve","query":"aa","algorithm":"enumeration","enumeration_limit":2,"db":"1 a 2\n2 a 3\n3 a 4\n"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert!(response.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        // Approximation backends report bounds.
        let response = request(
            &state,
            r#"{"op":"solve","query":"aa","algorithm":"greedy","db":"1 a 2\n2 a 3\n3 a 4\n"}"#,
        );
        assert!(response.get("bounds").is_some());
    }

    #[test]
    fn want_cut_false_yields_value_only_responses_from_one_cache_entry() {
        let state = state();
        // One-dangling query: the backend now extracts witnesses by default.
        let db = "1 a 2\\n2 b 3\\n3 c 4\\n3 e 5\\n";
        let with_cut =
            request(&state, &format!(r#"{{"op":"solve","query":"abc|be","db":"{db}"}}"#));
        assert_eq!(with_cut.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(with_cut.get("algorithm").and_then(Json::as_str), Some("one-dangling"));
        assert_eq!(with_cut.get("contingency_set").unwrap().as_array().unwrap().len(), 1);
        // Opting out drops the witness but reuses the same cached plan.
        let value_only = request(
            &state,
            &format!(r#"{{"op":"solve","query":"abc|be","want_cut":false,"db":"{db}"}}"#),
        );
        assert_eq!(value_only.get("value"), with_cut.get("value"));
        assert!(value_only.get("contingency_set").is_none());
        assert_eq!(value_only.get("cached"), Some(&Json::Bool(true)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("cache").unwrap().get("entries"), Some(&Json::Int(1)));
        // Batches honor the flag too.
        let batch = request(
            &state,
            &format!(r#"{{"op":"solve_batch","query":"abc|be","want_cut":false,"dbs":["{db}"]}}"#),
        );
        let results = batch.get("results").unwrap().as_array().unwrap();
        assert!(results[0].get("contingency_set").is_none());
    }

    #[test]
    fn stats_and_errors_are_counted() {
        let state = state();
        request(&state, r#"{"op":"prepare","query":"a|b"}"#);
        request(&state, r#"{"op":"prepare","query":"b|a"}"#);
        request(&state, "garbage");
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("requests"), Some(&Json::Int(4)));
        assert_eq!(stats.get("errors"), Some(&Json::Int(1)));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits"), Some(&Json::Int(1)));
        assert_eq!(cache.get("misses"), Some(&Json::Int(1)));
        assert_eq!(cache.get("entries"), Some(&Json::Int(1)));
    }

    #[test]
    fn pipe_mode_serves_the_same_protocol() {
        let state = state();
        let input = "{\"op\":\"prepare\",\"query\":\"ab|cd\"}\n\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"stats\"}\n";
        let mut output = Vec::new();
        run_pipe(&state, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().trim().lines().collect();
        // The trailing request after `shutdown` is not served.
        assert_eq!(lines.len(), 3);
        assert!(Json::parse(lines[0]).unwrap().get("plan").is_some());
        assert_eq!(
            Json::parse(lines[2]).unwrap().get("ok"),
            Some(&Json::Bool(true)) // the shutdown acknowledgement
        );
        assert!(state.is_shutting_down());
    }
}
