//! The concurrent resilience service.
//!
//! [`Server::bind`] opens a TCP listener; [`Server::run`] accepts connections
//! and serves them with a **multiplexed scheduler**: an accept loop hands
//! every connection to a *poller* thread, the poller parks connections in
//! non-blocking mode and extracts complete request lines into a shared
//! ready-queue, and a fixed pool of workers picks up **one request at a
//! time** — never a whole connection. An idle keep-alive connection
//! therefore costs no worker at all: any number of clients can hold
//! persistent connections open without starving new clients, and a client
//! that pipelines many requests shares the workers fairly with everyone
//! else (its connection re-enters the queue after every response).
//!
//! This replaces the original one-connection-per-worker pool, which pinned a
//! worker for a connection's entire lifetime — `threads` idle persistent
//! connections starved every subsequent client indefinitely (see the
//! starvation regression test in `tests/server_concurrency.rs`).
//!
//! Every connection speaks the newline-delimited JSON protocol of
//! [`crate::protocol`], and all workers share one [`QueryCache`], so a query
//! language prepared by any connection is reused by every other one
//! ([`Arc`]-shared `PreparedQuery` plans — the engine layer is `Send + Sync`
//! by construction). [`run_pipe`] serves the same protocol over an arbitrary
//! reader/writer pair (stdin/stdout in `rpq-cli serve --pipe`), which is also
//! how the unit tests below drive the handler without sockets.
//!
//! A `shutdown` request stops the accept loop and the poller; parked idle
//! connections are dropped, requests already in the ready-queue are answered,
//! and [`Server::run`] joins its threads before returning, so a client that
//! issues `shutdown` after reading its response observes a clean exit.

use crate::cache::{CacheLookup, CacheStats, QueryCache};
use crate::json::Json;
use crate::protocol::{
    coded_error_response, error_response, tiered_outcome_json, QuerySpec, Request, SnapshotSel,
};
use rpq_automata::Language;
use rpq_graphdb::{text, GraphDb};
use rpq_obs::{prom, MetricsRegistry, RouteCounters, Trace};
use rpq_resilience::algorithms::Algorithm;
use rpq_resilience::engine::{Engine, SolveMode, SolveOptions};
use rpq_resilience::router::{
    RouteBudget, Router, DEFAULT_SHED_COST_BUDGET_US, DEFAULT_SHED_QUEUE_DEPTH,
};
use rpq_resilience::rpq::Rpq;
use rpq_store::{SnapshotRef, Store, StoreConfig, StoreError, StoreRoute, StoreStats};
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TryRecvError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration: worker pool size, cache geometry, batch parallelism
/// and the default [`SolveOptions`] (per-request settings override them, see
/// [`crate::protocol::QuerySpec`]).
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads handling requests (at least 1). Workers are shared by
    /// all connections — this bounds concurrent *request* processing, not
    /// the number of connected clients.
    pub threads: usize,
    /// Capacity of the shared prepared-query cache.
    pub cache_capacity: usize,
    /// Lock stripes of the shared cache (see [`QueryCache::with_shards`]).
    pub cache_shards: usize,
    /// Default worker threads for the per-database half of a `solve_batch`
    /// (the per-request `jobs` setting overrides it; 1 = sequential).
    pub jobs: usize,
    /// Default solve options; the baseline for per-request overrides.
    pub options: SolveOptions,
    /// Hosted-database store geometry: database/materialization capacity and
    /// the `db_put`/`db_patch` body-size limit (see [`StoreConfig`]).
    pub store: StoreConfig,
    /// Log solve-family requests slower than this many microseconds to
    /// stderr, with their phase breakdown (`None` disables the log — and
    /// with it the per-request tracing the breakdown needs, so the default
    /// hot path takes zero clock reads beyond the whole-request stopwatch).
    pub slow_query_log_us: Option<u64>,
    /// Ready-queue depth at which the router starts shedding: while at least
    /// this many requests sit extracted-but-unserved, every solve budget is
    /// tightened to `shed_cost_budget_us` so the backlog drains with
    /// certified degraded answers instead of growing behind one slow exact
    /// solve.
    pub shed_queue_depth: u64,
    /// The per-solve cost budget (estimated microseconds) imposed while the
    /// ready queue is over `shed_queue_depth`.
    pub shed_cost_budget_us: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            cache_capacity: 256,
            cache_shards: crate::cache::DEFAULT_SHARDS,
            jobs: 1,
            options: SolveOptions::default(),
            store: StoreConfig::default(),
            slow_query_log_us: None,
            shed_queue_depth: DEFAULT_SHED_QUEUE_DEPTH,
            shed_cost_budget_us: DEFAULT_SHED_COST_BUDGET_US,
        }
    }
}

/// Connection and keep-alive counters (see the `connections` object of the
/// `stats` response). All counters are lock-free atomics; `open` and
/// `queue_depth` are gauges, the rest are monotone totals.
#[derive(Debug, Default)]
struct ConnectionMetrics {
    /// Currently open TCP connections (parked, queued or being served).
    open: AtomicU64,
    /// Total connections accepted since the server started.
    accepted: AtomicU64,
    /// Total requests served over TCP connections.
    requests: AtomicU64,
    /// The largest number of requests any single connection has issued.
    max_requests: AtomicU64,
    /// Requests currently sitting in the ready-queue (extracted from a
    /// connection, not yet picked up by a worker).
    queue_depth: AtomicU64,
}

/// Shared server state: the prepared-query cache, request counters and the
/// shutdown flag. All request handling lives here so that the TCP front end
/// and the pipe front end behave identically.
pub struct ServerState {
    options: SolveOptions,
    threads: usize,
    jobs: usize,
    cache: QueryCache,
    store: Store,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Monotone per-verb request totals, indexed like [`VERBS`]. Bumped on
    /// every successfully parsed request (including `shutdown`).
    by_verb: [AtomicU64; VERBS.len()],
    /// Latency histograms for the solve-family verbs, keyed by
    /// `(verb, family, tier, backend)`.
    metrics: MetricsRegistry,
    /// When the state was created — the base of `uptime_secs`.
    started: Instant,
    slow_query_log_us: Option<u64>,
    shutdown: AtomicBool,
    /// Shared with the router's overload probe, which reads `queue_depth`.
    connections: Arc<ConnectionMetrics>,
    /// The cost-model tier router every solve-family request goes through.
    /// Its overload probe reads the ready-queue depth: a deep backlog
    /// tightens every budget to the shed cost budget (see [`ServerConfig`]).
    router: Router,
    /// Configured shed thresholds, kept for the `stats` response.
    shed_queue_depth: u64,
    shed_cost_budget_us: u64,
    /// Per-tier routed-solve counters (poly/exact/approx, degradations,
    /// overload sheds) for `stats` and `metrics`.
    route_counters: RouteCounters,
    /// The bound address, once known — used to self-connect and wake the
    /// accept loop on shutdown.
    addr: Mutex<Option<SocketAddr>>,
}

impl ServerState {
    /// Fresh state for a configuration.
    pub fn new(config: ServerConfig) -> ServerState {
        let connections = Arc::new(ConnectionMetrics::default());
        let probe = Arc::clone(&connections);
        let router = Router::new()
            .with_overload_probe(Arc::new(move || probe.queue_depth.load(Ordering::Relaxed)))
            .with_shed_thresholds(config.shed_queue_depth, config.shed_cost_budget_us);
        ServerState {
            options: config.options,
            threads: config.threads.max(1),
            jobs: config.jobs.clamp(1, MAX_BATCH_JOBS),
            cache: QueryCache::with_shards(config.cache_capacity, config.cache_shards),
            store: Store::new(config.store),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            by_verb: std::array::from_fn(|_| AtomicU64::new(0)),
            metrics: MetricsRegistry::default(),
            started: Instant::now(),
            slow_query_log_us: config.slow_query_log_us,
            shutdown: AtomicBool::new(false),
            connections,
            router,
            shed_queue_depth: config.shed_queue_depth,
            shed_cost_budget_us: config.shed_cost_budget_us.max(1),
            route_counters: RouteCounters::default(),
            addr: Mutex::new(None),
        }
    }

    /// The shared prepared-query cache.
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The hosted-database store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Whether a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handles one raw request line (undecoded bytes). Invalid UTF-8 is an
    /// explicit protocol error — the bytes are never lossily replaced and
    /// forwarded, which used to surface as a confusing downstream JSON parse
    /// error on mangled text.
    pub fn handle_raw_line(&self, line: &[u8]) -> (String, bool) {
        match std::str::from_utf8(line) {
            Ok(text) => self.handle_line(text),
            Err(e) => {
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.errors.fetch_add(1, Ordering::Relaxed);
                let message = format!(
                    "invalid encoding: request line is not UTF-8 (first invalid byte at \
                     offset {})",
                    e.valid_up_to()
                );
                (error_response(message).to_string(), false)
            }
        }
    }

    /// Handles one request line and returns the response line plus whether
    /// the request asked the server to shut down. Never panics on malformed
    /// input: every failure becomes an `{"ok":false,…}` response.
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match Request::parse(line) {
            Ok(request) => {
                if let Some(count) = self.by_verb.get(verb_slot(verb_of(&request))) {
                    count.fetch_add(1, Ordering::Relaxed);
                }
                if matches!(request, Request::Shutdown) {
                    return (Json::object([("ok", Json::Bool(true))]).to_string(), true);
                }
                let response = self.handle_request(&request);
                if response.get("ok").and_then(Json::as_bool) != Some(true) {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                (response.to_string(), false)
            }
            Err(message) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                (error_response(message).to_string(), false)
            }
        }
    }

    /// Handles one parsed, non-`shutdown` request.
    pub fn handle_request(&self, request: &Request) -> Json {
        match request {
            Request::Prepare { query } => self.handle_prepare(query),
            Request::Solve { query, db } => self.handle_solve(query, db),
            Request::SolveBatch { query, dbs } => self.handle_solve_batch(query, dbs),
            Request::DbPut { name, db } => self.handle_db_put(name, db),
            Request::DbPatch { name, patch } => self.handle_db_patch(name, patch),
            Request::DbSnapshot { name, snapshot_name, at } => {
                self.handle_db_snapshot(name, snapshot_name, at.as_ref())
            }
            Request::DbSolve { query, name, snapshot, snapshots } => {
                self.handle_db_solve(query, name, snapshot.as_ref(), snapshots.as_deref())
            }
            Request::DbList => self.handle_db_list(),
            Request::DbDrop { name } => self.handle_db_drop(name),
            Request::Stats => self.handle_stats(),
            Request::Metrics => self.handle_metrics(),
            Request::Shutdown => Json::object([("ok", Json::Bool(true))]),
        }
    }

    fn engine_for(&self, spec: &QuerySpec) -> Engine {
        let mut options = self.options;
        if let Some(flow) = spec.flow {
            options.flow_backend = flow;
        }
        if let Some(limit) = spec.enumeration_limit {
            options.enumeration_limit = limit;
        }
        Engine::with_options(options)
    }

    /// Whether this request wants a contingency set: the per-request
    /// `want_cut` override, or the server default. Applied per solve call
    /// (`PreparedQuery::solve_with_cut`), never part of the cache key.
    fn want_cut_for(&self, spec: &QuerySpec) -> bool {
        spec.want_cut.unwrap_or(self.options.want_cut)
    }

    fn parse_query(&self, spec: &QuerySpec) -> Result<Rpq, String> {
        let language = Language::parse(&spec.pattern)
            .map_err(|e| format!("cannot parse query `{}`: {e}", spec.pattern))?;
        let mut rpq = Rpq::new(language);
        if spec.bag {
            rpq = rpq.with_bag_semantics();
        }
        Ok(rpq)
    }

    fn prepare(&self, spec: &QuerySpec) -> Result<CacheLookup, String> {
        self.prepare_traced(spec, &mut Trace::disabled())
    }

    fn prepare_traced(&self, spec: &QuerySpec, trace: &mut Trace) -> Result<CacheLookup, String> {
        let rpq = self.parse_query(spec)?;
        let engine = self.engine_for(spec);
        self.cache
            .get_or_prepare_traced(&engine, &rpq, spec.algorithm, trace)
            .map_err(|e| e.to_string())
    }

    /// The trace to run a solve-family request under: enabled when the
    /// request opted in (`trace: true`) or when the slow-query log needs a
    /// phase breakdown, disabled (zero clock reads) otherwise.
    fn trace_for(&self, spec: &QuerySpec) -> Trace {
        if spec.trace == Some(true) || self.slow_query_log_us.is_some() {
            Trace::enabled()
        } else {
            Trace::disabled()
        }
    }

    /// The route budget of a solve-family request: the per-request
    /// `deadline_ms`/`cost_budget_us` knobs, unlimited when neither is set
    /// (which makes the routed path bit-identical to the pre-router solve).
    fn budget_for(spec: &QuerySpec) -> RouteBudget {
        RouteBudget { deadline_ms: spec.deadline_ms, cost_budget_us: spec.cost_budget_us }
    }

    /// Stamps a finished solve-family request: seals the trace, appends the
    /// always-on `elapsed_us` (and, when the request asked to trace, the
    /// `timings` phase object) to the response fields, records the latency
    /// histogram under `(verb, family, tier, backend)`, and writes the
    /// slow-query log line if the request was over threshold. `algorithm` is
    /// the backend that *answered* (after any routing degradation) for the
    /// single-solve verbs, and the planned backend for batch verbs whose
    /// entries may mix tiers.
    #[allow(clippy::too_many_arguments)]
    fn finish_solve(
        &self,
        verb: &'static str,
        spec: &QuerySpec,
        algorithm: Algorithm,
        fingerprint: u64,
        started: Instant,
        mut trace: Trace,
        fields: &mut Vec<(String, Json)>,
    ) {
        trace.seal();
        let elapsed_us = started.elapsed().as_micros() as u64;
        let family = algorithm.name();
        let tier = algorithm.tier();
        let backend = spec.flow.unwrap_or(self.options.flow_backend).name();
        self.metrics.histogram([verb, family, tier, backend]).record(elapsed_us);
        fields.push(("elapsed_us".to_string(), Json::Int(elapsed_us as i128)));
        if spec.trace == Some(true) {
            let timings: Vec<(String, Json)> = trace
                .spans()
                .iter()
                .map(|&(phase, us)| (phase.to_string(), Json::Int(us as i128)))
                .collect();
            fields.push(("timings".to_string(), Json::Object(timings)));
        }
        if let Some(threshold) = self.slow_query_log_us {
            if elapsed_us >= threshold {
                let phases: Vec<String> =
                    trace.spans().iter().map(|&(phase, us)| format!("{phase}={us}us")).collect();
                eprintln!(
                    "rpq-server: slow query: verb={verb} query={fingerprint:016x} \
                     family={family} tier={tier} backend={backend} elapsed={elapsed_us}us \
                     phases=[{}]",
                    phases.join(" ")
                );
            }
        }
    }

    fn handle_prepare(&self, spec: &QuerySpec) -> Json {
        let lookup = match self.prepare(spec) {
            Ok(p) => p,
            Err(message) => return error_response(message),
        };
        Json::object([
            ("ok", Json::Bool(true)),
            ("cached", Json::Bool(lookup.hit)),
            // The fingerprint is hashed from the canonical form the cache
            // lookup already computed — no second canonicalization.
            ("fingerprint", Json::Str(format!("{:016x}", lookup.fingerprint))),
            ("plan", Json::Raw(lookup.prepared.plan().to_json())),
        ])
    }

    fn handle_solve(&self, spec: &QuerySpec, db_text: &str) -> Json {
        let started = Instant::now();
        let mut trace = self.trace_for(spec);
        let CacheLookup { prepared, hit: cached, fingerprint } =
            match self.prepare_traced(spec, &mut trace) {
                Ok(p) => p,
                Err(message) => return with_elapsed(error_response(message), started),
            };
        let parse_timer = trace.begin();
        let db = match parse_db(db_text) {
            Ok(db) => db,
            Err(message) => return with_elapsed(error_response(message), started),
        };
        trace.end(parse_timer, "parse_db");
        let budget = Self::budget_for(spec);
        match prepared.route_with_cut_traced(
            &db,
            self.want_cut_for(spec),
            &budget,
            &self.router,
            &mut trace,
        ) {
            Ok(tiered) => {
                self.route_counters.record(tiered.tier, tiered.degraded, tiered.shed);
                let mut fields = vec![
                    ("ok".to_string(), Json::Bool(true)),
                    ("cached".to_string(), Json::Bool(cached)),
                ];
                if let Json::Object(rest) = tiered_outcome_json(&tiered, &db) {
                    fields.extend(rest);
                }
                self.finish_solve(
                    "solve",
                    spec,
                    tiered.outcome.algorithm,
                    fingerprint,
                    started,
                    trace,
                    &mut fields,
                );
                Json::Object(fields)
            }
            Err(e) => with_elapsed(error_response(e.to_string()), started),
        }
    }

    fn handle_solve_batch(&self, spec: &QuerySpec, dbs: &[String]) -> Json {
        let started = Instant::now();
        let mut trace = self.trace_for(spec);
        let CacheLookup { prepared, hit: cached, fingerprint } =
            match self.prepare_traced(spec, &mut trace) {
                Ok(p) => p,
                Err(message) => return with_elapsed(error_response(message), started),
            };
        let want_cut = self.want_cut_for(spec);
        // The per-request override is untrusted input: clamp it, or one
        // request could ask for an OS thread per database.
        let jobs = spec.jobs.unwrap_or(self.jobs).clamp(1, MAX_BATCH_JOBS);
        // Parse every database up front (cheap, per-entry failures recorded),
        // then run the per-database solves through the engine's scoped-thread
        // batch path — `jobs` worker threads over the parsed databases.
        let parse_timer = trace.begin();
        let mut parsed: Vec<GraphDb> = Vec::with_capacity(dbs.len());
        let slots: Vec<Result<usize, String>> = dbs
            .iter()
            .map(|db_text| {
                parse_db(db_text).map(|db| {
                    parsed.push(db);
                    parsed.len() - 1
                })
            })
            .collect();
        trace.end(parse_timer, "parse_db");
        let budget = Self::budget_for(spec);
        let outcomes = prepared.route_batch_parallel_with_cut_traced(
            &parsed,
            want_cut,
            jobs,
            &budget,
            &self.router,
            &mut trace,
        );
        let mut failures: u64 = 0;
        let results: Vec<Json> = slots
            .into_iter()
            .map(|slot| match slot {
                Err(message) => {
                    failures += 1;
                    error_response(message)
                }
                // lint: allow(panic-freedom, slots index the same vectors they were built from)
                Ok(i) => match &outcomes[i] {
                    Ok(tiered) => {
                        self.route_counters.record(tiered.tier, tiered.degraded, tiered.shed);
                        // lint: allow(panic-freedom, slots index the same vectors they were built from)
                        tiered_outcome_json(tiered, &parsed[i])
                    }
                    Err(e) => {
                        failures += 1;
                        error_response(e.to_string())
                    }
                },
            })
            .collect();
        // Per-database failures ride inside an `"ok": true` envelope; count
        // them here or the `errors` stat undercounts mixed batches.
        if failures > 0 {
            self.errors.fetch_add(failures, Ordering::Relaxed);
        }
        let mut fields = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("cached".to_string(), Json::Bool(cached)),
            ("results".to_string(), Json::Array(results)),
        ];
        self.finish_solve(
            "solve_batch",
            spec,
            prepared.plan().algorithm,
            fingerprint,
            started,
            trace,
            &mut fields,
        );
        Json::Object(fields)
    }

    fn handle_db_put(&self, name: &str, body: &str) -> Json {
        match self.store.put(name, body) {
            Ok(appended) => Json::object([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.to_string())),
                ("snapshot", Json::Int(appended.snapshot as i128)),
                ("facts", Json::Int(appended.entries as i128)),
            ]),
            Err(e) => store_error(&e),
        }
    }

    fn handle_db_patch(&self, name: &str, body: &str) -> Json {
        match self.store.patch(name, body) {
            Ok(appended) => Json::object([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.to_string())),
                ("snapshot", Json::Int(appended.snapshot as i128)),
                ("applied", Json::Int(appended.entries as i128)),
            ]),
            Err(e) => store_error(&e),
        }
    }

    fn handle_db_snapshot(
        &self,
        name: &str,
        snapshot_name: &str,
        at: Option<&SnapshotSel>,
    ) -> Json {
        match self.store.snapshot(name, snapshot_name, at.map(|sel| snapshot_ref(Some(sel)))) {
            Ok(offset) => Json::object([
                ("ok", Json::Bool(true)),
                ("name", Json::Str(name.to_string())),
                ("snapshot_name", Json::Str(snapshot_name.to_string())),
                ("snapshot", Json::Int(offset as i128)),
            ]),
            Err(e) => store_error(&e),
        }
    }

    /// `db_solve`: one snapshot answered inline, or a `snapshots` array
    /// answered as per-snapshot `results` entries. Per-snapshot failures
    /// (engine errors, unresolvable references) become entries naming the
    /// offending snapshot instead of failing the whole request.
    fn handle_db_solve(
        &self,
        spec: &QuerySpec,
        name: &str,
        snapshot: Option<&SnapshotSel>,
        snapshots: Option<&[SnapshotSel]>,
    ) -> Json {
        let started = Instant::now();
        let mut trace = self.trace_for(spec);
        let CacheLookup { prepared, hit: cached, fingerprint } =
            match self.prepare_traced(spec, &mut trace) {
                Ok(p) => p,
                Err(message) => return with_elapsed(error_response(message), started),
            };
        let want_cut = self.want_cut_for(spec);
        let budget = Self::budget_for(spec);
        let Some(refs) = snapshots else {
            // The inline form: the solve result fields merge into the
            // response envelope, like a plain `solve`.
            return match self.store.route_traced(
                name,
                &snapshot_ref(snapshot),
                &prepared,
                fingerprint,
                want_cut,
                &budget,
                &self.router,
                &mut trace,
            ) {
                Ok(route) => {
                    let answered = match &route.result {
                        Ok((tiered, _)) => tiered.outcome.algorithm,
                        Err(_) => prepared.plan().algorithm,
                    };
                    let entry = self.db_route_entry(&route);
                    if route.result.is_err() {
                        // Already `"ok": false` with the snapshot id.
                        return with_elapsed(entry, started);
                    }
                    let mut fields = vec![
                        ("ok".to_string(), Json::Bool(true)),
                        ("cached".to_string(), Json::Bool(cached)),
                        ("name".to_string(), Json::Str(name.to_string())),
                    ];
                    if let Json::Object(rest) = entry {
                        fields.extend(rest);
                    }
                    self.finish_solve(
                        "db_solve",
                        spec,
                        answered,
                        fingerprint,
                        started,
                        trace,
                        &mut fields,
                    );
                    Json::Object(fields)
                }
                Err(e) => with_elapsed(store_error(&e), started),
            };
        };
        let mut failures: u64 = 0;
        let results: Vec<Json> = refs
            .iter()
            .map(|sel| {
                match self.store.route_traced(
                    name,
                    &snapshot_ref(Some(sel)),
                    &prepared,
                    fingerprint,
                    want_cut,
                    &budget,
                    &self.router,
                    &mut trace,
                ) {
                    Ok(route) => {
                        if route.result.is_err() {
                            failures += 1;
                        }
                        self.db_route_entry(&route)
                    }
                    Err(e) => {
                        failures += 1;
                        store_error(&e)
                    }
                }
            })
            .collect();
        // Like `solve_batch`: per-snapshot failures ride inside an
        // `"ok": true` envelope, so count them into the errors stat here.
        if failures > 0 {
            self.errors.fetch_add(failures, Ordering::Relaxed);
        }
        let mut fields = vec![
            ("ok".to_string(), Json::Bool(true)),
            ("cached".to_string(), Json::Bool(cached)),
            ("name".to_string(), Json::Str(name.to_string())),
            ("results".to_string(), Json::Array(results)),
        ];
        self.finish_solve(
            "db_solve",
            spec,
            prepared.plan().algorithm,
            fingerprint,
            started,
            trace,
            &mut fields,
        );
        Json::Object(fields)
    }

    /// One per-snapshot `db_solve` result: the resolved snapshot id, the
    /// `incremental` and `result_cached` markers and the routed outcome
    /// fields — or, for an engine failure, an `"ok": false` entry that still
    /// names the offending snapshot. Routed entries feed the tier counters.
    fn db_route_entry(&self, route: &StoreRoute) -> Json {
        match &route.result {
            Ok((tiered, mode)) => {
                self.route_counters.record(tiered.tier, tiered.degraded, tiered.shed);
                let mut fields = vec![
                    ("snapshot".to_string(), Json::Int(route.snapshot as i128)),
                    ("incremental".to_string(), Json::Bool(*mode == SolveMode::Incremental)),
                    ("result_cached".to_string(), Json::Bool(route.result_cached)),
                ];
                if let Json::Object(rest) = tiered_outcome_json(tiered, &route.graph) {
                    fields.extend(rest);
                }
                Json::Object(fields)
            }
            Err(e) => Json::object([
                ("ok", Json::Bool(false)),
                ("error", Json::Str(e.to_string())),
                ("snapshot", Json::Int(route.snapshot as i128)),
            ]),
        }
    }

    fn handle_db_list(&self) -> Json {
        let databases: Vec<Json> = self
            .store
            .list()
            .into_iter()
            .map(|info| {
                let named = info
                    .named
                    .into_iter()
                    .map(|(n, offset)| (n, Json::Int(offset as i128)))
                    .collect();
                Json::object([
                    ("name", Json::Str(info.name)),
                    ("snapshot", Json::Int(info.snapshot as i128)),
                    ("facts", Json::Int(info.facts as i128)),
                    ("log_entries", Json::Int(info.log_entries as i128)),
                    ("log_bytes", Json::Int(info.log_bytes as i128)),
                    ("named", Json::Object(named)),
                    ("materialized", Json::Int(info.materialized as i128)),
                ])
            })
            .collect();
        Json::object([("ok", Json::Bool(true)), ("databases", Json::Array(databases))])
    }

    fn handle_db_drop(&self, name: &str) -> Json {
        let dropped = self.store.drop_database(name);
        Json::object([
            ("ok", Json::Bool(true)),
            ("name", Json::Str(name.to_string())),
            ("dropped", Json::Bool(dropped)),
        ])
    }

    fn handle_stats(&self) -> Json {
        let CacheStats { hits, misses, evictions, entries, capacity, shards } = self.cache.stats();
        let StoreStats {
            databases,
            named_snapshots,
            materialized,
            log_entries,
            log_bytes,
            incremental_solves,
            full_solves,
            materializations,
            evictions: store_evictions,
            capacity: store_capacity,
            max_body_bytes,
            result_hits,
            result_misses,
        } = self.store.stats();
        let routed = self.route_counters.snapshot();
        let connections = &self.connections;
        Json::object([
            ("ok", Json::Bool(true)),
            ("requests", Json::Int(self.requests.load(Ordering::Relaxed) as i128)),
            ("errors", Json::Int(self.errors.load(Ordering::Relaxed) as i128)),
            ("uptime_secs", Json::Int(self.started.elapsed().as_secs() as i128)),
            ("threads", Json::Int(self.threads as i128)),
            ("jobs", Json::Int(self.jobs as i128)),
            (
                "requests_by_verb",
                Json::Object(
                    VERBS
                        .iter()
                        .zip(self.by_verb.iter())
                        .map(|(verb, count)| {
                            (verb.to_string(), Json::Int(count.load(Ordering::Relaxed) as i128))
                        })
                        .collect(),
                ),
            ),
            (
                "connections",
                Json::object([
                    ("open", Json::Int(connections.open.load(Ordering::Relaxed) as i128)),
                    ("accepted", Json::Int(connections.accepted.load(Ordering::Relaxed) as i128)),
                    ("requests", Json::Int(connections.requests.load(Ordering::Relaxed) as i128)),
                    (
                        "max_requests",
                        Json::Int(connections.max_requests.load(Ordering::Relaxed) as i128),
                    ),
                    (
                        "queue_depth",
                        Json::Int(connections.queue_depth.load(Ordering::Relaxed) as i128),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object([
                    ("hits", Json::Int(hits as i128)),
                    ("misses", Json::Int(misses as i128)),
                    ("evictions", Json::Int(evictions as i128)),
                    ("entries", Json::Int(entries as i128)),
                    ("capacity", Json::Int(capacity as i128)),
                    ("shards", Json::Int(shards as i128)),
                ]),
            ),
            (
                "store",
                Json::object([
                    ("databases", Json::Int(databases as i128)),
                    ("named_snapshots", Json::Int(named_snapshots as i128)),
                    ("materialized", Json::Int(materialized as i128)),
                    ("log_entries", Json::Int(log_entries as i128)),
                    ("log_bytes", Json::Int(log_bytes as i128)),
                    ("incremental_solves", Json::Int(incremental_solves as i128)),
                    ("full_solves", Json::Int(full_solves as i128)),
                    ("materializations", Json::Int(materializations as i128)),
                    ("evictions", Json::Int(store_evictions as i128)),
                    ("capacity", Json::Int(store_capacity as i128)),
                    ("max_body_bytes", Json::Int(max_body_bytes as i128)),
                    ("result_hits", Json::Int(result_hits as i128)),
                    ("result_misses", Json::Int(result_misses as i128)),
                ]),
            ),
            (
                "router",
                Json::object([
                    ("poly", Json::Int(routed.poly as i128)),
                    ("exact", Json::Int(routed.exact as i128)),
                    ("approx", Json::Int(routed.approx as i128)),
                    ("degraded", Json::Int(routed.degraded as i128)),
                    ("overload_sheds", Json::Int(routed.overload_sheds as i128)),
                    ("queue_depth", Json::Int(self.router.queue_depth() as i128)),
                    ("overloaded", Json::Bool(self.router.is_overloaded())),
                    ("shed_queue_depth", Json::Int(self.shed_queue_depth as i128)),
                    ("shed_cost_budget_us", Json::Int(self.shed_cost_budget_us as i128)),
                ]),
            ),
        ])
    }

    /// Renders every counter, gauge and latency histogram as Prometheus text
    /// exposition, returned in the `metrics` field of the response.
    fn handle_metrics(&self) -> Json {
        let mut out = String::new();
        prom::header(&mut out, "rpq_uptime_seconds", "Seconds since the server started.", "gauge");
        prom::sample(&mut out, "rpq_uptime_seconds", "", self.started.elapsed().as_secs());
        prom::header(&mut out, "rpq_requests_total", "Requests received (any verb).", "counter");
        prom::sample(&mut out, "rpq_requests_total", "", self.requests.load(Ordering::Relaxed));
        prom::header(&mut out, "rpq_errors_total", "Requests answered with an error.", "counter");
        prom::sample(&mut out, "rpq_errors_total", "", self.errors.load(Ordering::Relaxed));
        prom::header(
            &mut out,
            "rpq_requests_by_verb_total",
            "Successfully parsed requests, by wire verb.",
            "counter",
        );
        for (verb, count) in VERBS.iter().zip(self.by_verb.iter()) {
            prom::sample(
                &mut out,
                "rpq_requests_by_verb_total",
                &format!("verb=\"{verb}\""),
                count.load(Ordering::Relaxed),
            );
        }
        let cache = self.cache.stats();
        for (name, help, value) in [
            ("rpq_cache_hits_total", "Prepared-query cache hits.", cache.hits),
            ("rpq_cache_misses_total", "Prepared-query cache misses.", cache.misses),
            ("rpq_cache_evictions_total", "Prepared-query cache evictions.", cache.evictions),
        ] {
            prom::header(&mut out, name, help, "counter");
            prom::sample(&mut out, name, "", value);
        }
        prom::header(&mut out, "rpq_cache_entries", "Prepared-query plans cached.", "gauge");
        prom::sample(&mut out, "rpq_cache_entries", "", cache.entries as u64);
        let store = self.store.stats();
        for (name, help, value) in [
            ("rpq_store_databases", "Hosted databases.", store.databases as u64),
            ("rpq_store_named_snapshots", "Pinned named snapshots.", store.named_snapshots as u64),
            ("rpq_store_materialized", "Materialized snapshots held.", store.materialized as u64),
            (
                "rpq_store_log_entries",
                "Fact-log entries across databases.",
                store.log_entries as u64,
            ),
            ("rpq_store_log_bytes", "Fact-log bytes across databases.", store.log_bytes as u64),
        ] {
            prom::header(&mut out, name, help, "gauge");
            prom::sample(&mut out, name, "", value);
        }
        for (name, help, value) in [
            (
                "rpq_store_incremental_solves_total",
                "Hosted solves answered incrementally.",
                store.incremental_solves,
            ),
            ("rpq_store_full_solves_total", "Hosted solves built from scratch.", store.full_solves),
            (
                "rpq_store_materializations_total",
                "Snapshot materializations replayed from the log.",
                store.materializations,
            ),
            ("rpq_store_evictions_total", "Materialized snapshots evicted.", store.evictions),
            (
                "rpq_store_result_cache_hits_total",
                "Hosted solves answered from the cross-snapshot result cache.",
                store.result_hits,
            ),
            (
                "rpq_store_result_cache_misses_total",
                "Hosted solves that missed the cross-snapshot result cache.",
                store.result_misses,
            ),
        ] {
            prom::header(&mut out, name, help, "counter");
            prom::sample(&mut out, name, "", value);
        }
        let routed = self.route_counters.snapshot();
        prom::header(
            &mut out,
            "rpq_routed_total",
            "Routed solves, by the complexity tier that answered.",
            "counter",
        );
        for (tier, count) in
            [("poly", routed.poly), ("exact", routed.exact), ("approx", routed.approx)]
        {
            prom::sample(&mut out, "rpq_routed_total", &format!("tier=\"{tier}\""), count);
        }
        for (name, help, value) in [
            (
                "rpq_routed_degraded_total",
                "Routed solves degraded to a certified cheaper tier by their budget.",
                routed.degraded,
            ),
            (
                "rpq_overload_sheds_total",
                "Routed solves whose budget was tightened by overload shedding.",
                routed.overload_sheds,
            ),
        ] {
            prom::header(&mut out, name, help, "counter");
            prom::sample(&mut out, name, "", value);
        }
        let connections = &self.connections;
        for (name, help, value) in [
            (
                "rpq_connections_open",
                "Currently open TCP connections.",
                connections.open.load(Ordering::Relaxed),
            ),
            (
                "rpq_ready_queue_depth",
                "Requests extracted from connections, not yet picked up by a worker.",
                connections.queue_depth.load(Ordering::Relaxed),
            ),
        ] {
            prom::header(&mut out, name, help, "gauge");
            prom::sample(&mut out, name, "", value);
        }
        prom::header(
            &mut out,
            "rpq_connections_accepted_total",
            "TCP connections accepted.",
            "counter",
        );
        prom::sample(
            &mut out,
            "rpq_connections_accepted_total",
            "",
            connections.accepted.load(Ordering::Relaxed),
        );
        let latency = self.metrics.snapshot();
        prom::header(
            &mut out,
            "rpq_solve_latency_us",
            "Whole-request solve latency in microseconds, by verb, algorithm family, \
             complexity tier and flow backend.",
            "histogram",
        );
        for (key, snapshot) in &latency {
            prom::histogram(&mut out, "rpq_solve_latency_us", &latency_labels(key), snapshot);
        }
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let name = format!("rpq_solve_latency_us_{suffix}");
            prom::header(
                &mut out,
                &name,
                "Latency quantile upper bound derived from the histogram buckets.",
                "gauge",
            );
            for (key, snapshot) in &latency {
                prom::sample(&mut out, &name, &latency_labels(key), snapshot.quantile(q));
            }
        }
        prom::header(
            &mut out,
            "rpq_solve_latency_us_max",
            "Largest observed solve latency.",
            "gauge",
        );
        for (key, snapshot) in &latency {
            prom::sample(&mut out, "rpq_solve_latency_us_max", &latency_labels(key), snapshot.max);
        }
        Json::object([("ok", Json::Bool(true)), ("metrics", Json::Str(out))])
    }

    /// Sets the shutdown flag and wakes the accept loop with a self-connect.
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self.addr.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(addr) = addr {
            // The dummy connection only has to make `accept` return; errors
            // mean the listener is already gone, which is fine.
            let _ = TcpStream::connect(addr);
        }
    }
}

/// Upper bound on the scoped worker threads a single `solve_batch` may use,
/// whatever the request's `jobs` field says (threads beyond the physical
/// core count only add overhead anyway).
pub const MAX_BATCH_JOBS: usize = 64;

/// Every wire verb, in the order the `requests_by_verb` stats object and the
/// `rpq_requests_by_verb_total` metric report them.
pub const VERBS: [&str; 12] = [
    "prepare",
    "solve",
    "solve_batch",
    "db_put",
    "db_patch",
    "db_snapshot",
    "db_solve",
    "db_list",
    "db_drop",
    "stats",
    "metrics",
    "shutdown",
];

/// The wire verb of a parsed request (a [`VERBS`] entry).
fn verb_of(request: &Request) -> &'static str {
    match request {
        Request::Prepare { .. } => "prepare",
        Request::Solve { .. } => "solve",
        Request::SolveBatch { .. } => "solve_batch",
        Request::DbPut { .. } => "db_put",
        Request::DbPatch { .. } => "db_patch",
        Request::DbSnapshot { .. } => "db_snapshot",
        Request::DbSolve { .. } => "db_solve",
        Request::DbList => "db_list",
        Request::DbDrop { .. } => "db_drop",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// The [`VERBS`] index of a verb name. `verb_of` only produces [`VERBS`]
/// entries (the wire-protocol lint keeps the table in sync with the parser),
/// but an unknown verb degrades to an out-of-range slot — callers index with
/// `get`, so the counter bump is skipped rather than panicking.
fn verb_slot(verb: &str) -> usize {
    VERBS.iter().position(|v| *v == verb).unwrap_or(VERBS.len())
}

/// The Prometheus label list of one latency-histogram key.
fn latency_labels(key: &rpq_obs::MetricsKey) -> String {
    let [verb, family, tier, backend] = key;
    format!("verb=\"{verb}\",family=\"{family}\",tier=\"{tier}\",backend=\"{backend}\"")
}

/// Appends the always-on `elapsed_us` field to a response object (error
/// paths of the solve-family verbs; success paths go through
/// `ServerState::finish_solve`).
fn with_elapsed(mut json: Json, started: Instant) -> Json {
    if let Json::Object(fields) = &mut json {
        fields.push(("elapsed_us".to_string(), Json::Int(started.elapsed().as_micros() as i128)));
    }
    json
}

fn parse_db(db_text: &str) -> Result<GraphDb, String> {
    text::parse(db_text).map_err(|e| format!("cannot parse database: {e}"))
}

/// Maps a wire snapshot reference onto the store's (`None` = head).
fn snapshot_ref(sel: Option<&SnapshotSel>) -> SnapshotRef {
    match sel {
        None => SnapshotRef::Head,
        Some(SnapshotSel::Offset(offset)) => SnapshotRef::Offset(*offset),
        Some(SnapshotSel::Named(name)) => SnapshotRef::Named(name.clone()),
    }
}

/// A store failure as a typed error response (`code` from
/// [`StoreError::code`]).
fn store_error(e: &StoreError) -> Json {
    coded_error_response(e.to_string(), e.code())
}

/// One accepted TCP connection: the (non-blocking while parked) stream, the
/// bytes read so far, and its request counter. Dropping a `Connection`
/// closes the socket and maintains the `open` gauge.
struct Connection {
    stream: TcpStream,
    buffer: Vec<u8>,
    requests: u64,
    state: Arc<ServerState>,
}

impl Connection {
    /// Adopts a freshly accepted stream: no-delay (one short line per
    /// response — Nagle + delayed ACKs would add ~40 ms per round trip),
    /// non-blocking (the poller multiplexes reads), counters bumped.
    fn adopt(state: &Arc<ServerState>, stream: TcpStream) -> io::Result<Connection> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        state.connections.accepted.fetch_add(1, Ordering::Relaxed);
        state.connections.open.fetch_add(1, Ordering::Relaxed);
        Ok(Connection { stream, buffer: Vec::new(), requests: 0, state: Arc::clone(state) })
    }

    /// Records one served request on this connection (keep-alive metrics).
    fn note_request(&mut self) {
        self.requests += 1;
        let state = &self.state.connections;
        state.requests.fetch_add(1, Ordering::Relaxed);
        state.max_requests.fetch_max(self.requests, Ordering::Relaxed);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.state.connections.open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One complete request line extracted from a connection, queued for the
/// worker pool. The connection travels with its request, so per-connection
/// response ordering is trivially preserved: only one worker ever holds a
/// given connection.
struct ReadyRequest {
    conn: Connection,
    line: Vec<u8>,
    /// The peer half-closed after this line (no trailing newline at EOF):
    /// answer it, then close instead of re-parking.
    eof: bool,
}

/// What one poller pass observed on a parked connection.
enum Polled {
    /// A complete request line (plus whether the connection hit EOF).
    Request { line: Vec<u8>, eof: bool },
    /// No complete line yet; keep the connection parked.
    Idle,
    /// Peer closed (or the connection errored) with nothing left to serve.
    Closed,
}

/// Extracts the next request line from a parked connection, reading
/// non-blockingly as needed. Whitespace-only lines are skipped (the protocol
/// ignores them). A non-empty buffer at EOF is served as a final request —
/// a trailing newline-less `{"op":"shutdown"}` must still be honored.
fn poll_connection(conn: &mut Connection) -> Polled {
    loop {
        if let Some(pos) = conn.buffer.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = conn.buffer.drain(..=pos).collect();
            line.pop(); // the newline
            if line.iter().all(u8::is_ascii_whitespace) {
                continue;
            }
            return Polled::Request { line, eof: false };
        }
        let mut chunk = [0u8; 4096];
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                let line = std::mem::take(&mut conn.buffer);
                if line.iter().all(u8::is_ascii_whitespace) {
                    return Polled::Closed;
                }
                return Polled::Request { line, eof: true };
            }
            // lint: allow(panic-freedom, read never returns more than the buffer length)
            Ok(n) => conn.buffer.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Polled::Idle,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Polled::Closed, // reset mid-line: drop the client
        }
    }
}

/// The poller's longest sleep between no-progress passes. Sleeps back off
/// exponentially from [`POLL_BACKOFF_START_MICROS`] up to this cap, so a
/// connection that just exchanged a request is re-polled at microsecond
/// cadence (ping-pong round trips stay in the tens of microseconds) while a
/// genuinely idle server settles at one wake-up per millisecond. Parked
/// connections are only *scanned* (one non-blocking `read` each), never
/// waited on, so no worker is ever pinned. A dedicated `epoll`/`kqueue`
/// readiness loop would remove the scan entirely; see ROADMAP.md.
const POLL_INTERVAL_MAX: std::time::Duration = std::time::Duration::from_millis(1);

/// First backoff sleep after a pass that made progress (doubles per idle
/// pass up to [`POLL_INTERVAL_MAX`]).
const POLL_BACKOFF_START_MICROS: u64 = 2;

/// The poller: parks connections, extracts complete request lines, feeds the
/// ready-queue. Exits when a shutdown is requested (dropping every parked
/// idle connection) or when both inbound channels close.
fn poller_loop(
    state: &Arc<ServerState>,
    from_accept: &mpsc::Receiver<Connection>,
    from_workers: &mpsc::Receiver<Connection>,
    ready: &mpsc::Sender<ReadyRequest>,
) {
    let mut parked: Vec<Connection> = Vec::new();
    let mut backoff = std::time::Duration::from_micros(POLL_BACKOFF_START_MICROS);
    loop {
        let mut progress = false;
        let mut inbound_open = false;
        for inbound in [from_accept, from_workers] {
            loop {
                match inbound.try_recv() {
                    Ok(conn) => {
                        parked.push(conn);
                        progress = true;
                    }
                    Err(TryRecvError::Empty) => {
                        inbound_open = true;
                        break;
                    }
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        }
        if state.is_shutting_down() {
            // Parked connections are idle by definition — drop them (clients
            // see EOF). In-flight requests finish in the workers.
            return;
        }
        let mut i = 0;
        while i < parked.len() {
            // lint: allow(panic-freedom, the loop condition bounds i by the vector length)
            match poll_connection(&mut parked[i]) {
                Polled::Request { line, eof } => {
                    let conn = parked.swap_remove(i);
                    state.connections.queue_depth.fetch_add(1, Ordering::Relaxed);
                    if ready.send(ReadyRequest { conn, line, eof }).is_err() {
                        // Workers gone: only happens on teardown.
                        state.connections.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        return;
                    }
                    progress = true;
                }
                Polled::Idle => i += 1,
                Polled::Closed => {
                    parked.swap_remove(i);
                    progress = true;
                }
            }
        }
        if !inbound_open && parked.is_empty() {
            return; // accept loop and workers both done
        }
        if progress {
            backoff = std::time::Duration::from_micros(POLL_BACKOFF_START_MICROS);
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(POLL_INTERVAL_MAX);
        }
    }
}

/// A worker: picks one ready request, serves it, re-parks the connection.
fn worker_loop(
    state: &Arc<ServerState>,
    ready: &Arc<Mutex<mpsc::Receiver<ReadyRequest>>>,
    park: &mpsc::Sender<Connection>,
) {
    loop {
        // Holding the lock while blocked in `recv` is the standard shared-
        // receiver pattern: exactly one idle worker waits on the channel.
        // lint: allow(lock-discipline, exactly one idle worker blocks in recv by design)
        let request = ready.lock().unwrap_or_else(PoisonError::into_inner).recv();
        let Ok(request) = request else { return }; // poller gone, queue drained
        state.connections.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if let Err(e) = serve_one(state, request, park) {
            // Connection-level I/O errors (resets, truncated lines) only
            // affect that client.
            eprintln!("rpq-server: connection error: {e}");
        }
    }
}

/// Serves one request end to end: decode, handle, respond, then either
/// re-park the connection (keep-alive), close it (EOF) or initiate shutdown.
fn serve_one(
    state: &Arc<ServerState>,
    request: ReadyRequest,
    park: &mpsc::Sender<Connection>,
) -> io::Result<()> {
    let ReadyRequest { mut conn, line, eof } = request;
    // Blocking for the response write: responses can exceed the socket
    // buffer (large batches), and a worker owns the connection anyway.
    conn.stream.set_nonblocking(false)?;
    // Counted before handling so a `stats` request sees itself, matching the
    // top-level `requests` counter's semantics.
    conn.note_request();
    let (response, shutdown) = state.handle_raw_line(&line);
    conn.stream.write_all(response.as_bytes())?;
    conn.stream.write_all(b"\n")?;
    conn.stream.flush()?;
    if shutdown {
        state.initiate_shutdown();
        return Ok(()); // connection drops: the client saw its response
    }
    if eof {
        return Ok(());
    }
    conn.stream.set_nonblocking(true)?;
    // A send error means the poller exited (shutdown raced us): the
    // connection just closes.
    let _ = park.send(conn);
    Ok(())
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a listener on `addr` (e.g. `127.0.0.1:0` for an OS-assigned
    /// port) with the given configuration.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState::new(config));
        *state.addr.lock().unwrap_or_else(PoisonError::into_inner) = Some(listener.local_addr()?);
        Ok(Server { listener, state })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (counters, cache).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Accepts and serves connections until a `shutdown` request arrives.
    /// Requests already extracted into the ready-queue are answered before
    /// the workers exit; parked idle connections are dropped.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, state } = self;
        let (to_poller, from_accept) = mpsc::channel::<Connection>();
        let (to_workers, ready_receiver) = mpsc::channel::<ReadyRequest>();
        let ready_receiver = Arc::new(Mutex::new(ready_receiver));
        let (park_sender, from_workers) = mpsc::channel::<Connection>();

        let poller: JoinHandle<()> = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                poller_loop(&state, &from_accept, &from_workers, &to_workers)
            })
        };
        let workers: Vec<JoinHandle<()>> = (0..state.threads)
            .map(|_| {
                let state = Arc::clone(&state);
                let ready = Arc::clone(&ready_receiver);
                let park = park_sender.clone();
                std::thread::spawn(move || worker_loop(&state, &ready, &park))
            })
            .collect();
        // Workers hold the only park senders: when they exit, the poller's
        // from_workers channel reports disconnected.
        drop(park_sender);

        for stream in listener.incoming() {
            if state.is_shutting_down() {
                break; // the stream waking us up is dropped unanswered
            }
            match stream {
                Ok(stream) => match Connection::adopt(&state, stream) {
                    Ok(conn) => {
                        let _ = to_poller.send(conn); // poller outlives accepts
                    }
                    Err(e) => eprintln!("rpq-server: cannot adopt connection: {e}"),
                },
                Err(e) => eprintln!("rpq-server: accept error: {e}"),
            }
        }
        drop(to_poller);
        let mut panicked = poller.join().is_err();
        // The poller dropped `to_workers`: workers drain the remaining ready
        // requests (answering them) and exit. Join every thread before
        // reporting so none is left detached.
        for worker in workers {
            panicked |= worker.join().is_err();
        }
        if panicked {
            return Err(io::Error::other("a server thread panicked"));
        }
        Ok(())
    }

    /// Runs the server on a background thread, returning its address and a
    /// join handle (convenience for tests and benchmarks).
    pub fn spawn(self) -> io::Result<SpawnedServer> {
        let addr = self.local_addr()?;
        let state = self.state();
        let handle = std::thread::spawn(move || self.run());
        Ok(SpawnedServer { addr, state, handle })
    }
}

/// A server running on a background thread (see [`Server::spawn`]).
pub struct SpawnedServer {
    /// The bound address.
    pub addr: SocketAddr,
    state: Arc<ServerState>,
    handle: JoinHandle<io::Result<()>>,
}

impl SpawnedServer {
    /// The shared state (counters, cache).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Waits for the server to exit (after a `shutdown` request).
    pub fn join(self) -> io::Result<()> {
        self.handle.join().map_err(|_| io::Error::other("server thread panicked"))?
    }
}

/// Serves the protocol over a reader/writer pair — `rpq-cli serve --pipe`
/// uses stdin/stdout. Returns at EOF or after a `shutdown` request. The pipe
/// front end is single-threaded but shares the same [`ServerState`] handler
/// (and cache semantics) as the TCP front end, including the strict UTF-8
/// decoding of [`ServerState::handle_raw_line`].
pub fn run_pipe(
    state: &ServerState,
    mut input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()> {
    let mut buffer: Vec<u8> = Vec::new();
    loop {
        buffer.clear();
        if input.read_until(b'\n', &mut buffer)? == 0 {
            break; // EOF
        }
        if buffer.ends_with(b"\n") {
            buffer.pop();
        }
        if buffer.iter().all(u8::is_ascii_whitespace) {
            continue;
        }
        let (response, shutdown) = state.handle_raw_line(&buffer);
        output.write_all(response.as_bytes())?;
        output.write_all(b"\n")?;
        output.flush()?;
        if shutdown {
            state.shutdown.store(true, Ordering::SeqCst);
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ServerState {
        ServerState::new(ServerConfig::default())
    }

    fn request(state: &ServerState, line: &str) -> Json {
        let (response, _) = state.handle_line(line);
        Json::parse(&response).expect("responses are valid JSON")
    }

    #[test]
    fn prepare_reports_plan_and_cache_status() {
        let state = state();
        let first = request(&state, r#"{"op":"prepare","query":"ax*b"}"#);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            first.get("plan").unwrap().get("algorithm").and_then(Json::as_str),
            Some("local")
        );
        // A differently spelled but equivalent regex hits the cache.
        let second = request(&state, r#"{"op":"prepare","query":"a(x)*b"}"#);
        assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(second.get("fingerprint"), first.get("fingerprint"));
    }

    #[test]
    fn solve_returns_values_and_cuts() {
        let state = state();
        let response =
            request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("value"), Some(&Json::Int(1)));
        assert_eq!(response.get("algorithm").and_then(Json::as_str), Some("local"));
        assert_eq!(response.get("exact"), Some(&Json::Bool(true)));
        assert_eq!(response.get("contingency_set").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn solve_responses_report_the_answering_tier() {
        let state = state();
        // No budget: the planned backend answers; tier/degraded/route are
        // reported all the same.
        let response =
            request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("tier").and_then(Json::as_str), Some("poly"));
        assert_eq!(response.get("degraded"), Some(&Json::Bool(false)));
        assert!(response.get("route").and_then(Json::as_str).is_some(), "{response}");
        // Batch entries carry the verdict too.
        let batch = request(
            &state,
            r#"{"op":"solve_batch","query":"ab","dbs":["u a v\nv b w\n","u a v\n"]}"#,
        );
        for entry in batch.get("results").unwrap().as_array().unwrap() {
            assert_eq!(entry.get("tier").and_then(Json::as_str), Some("poly"), "{entry}");
            assert_eq!(entry.get("degraded"), Some(&Json::Bool(false)), "{entry}");
        }
        let stats = request(&state, r#"{"op":"stats"}"#);
        let router = stats.get("router").unwrap();
        assert_eq!(router.get("poly"), Some(&Json::Int(3)), "{stats}");
        assert_eq!(router.get("degraded"), Some(&Json::Int(0)), "{stats}");
    }

    #[test]
    fn a_tiny_deadline_degrades_to_certified_bounds() {
        let state = state();
        // `deadline_ms: 0` can never fit any projected cost: the router must
        // still answer, with certified bounds and the tier that produced
        // them — never an uncertified guess, never a refusal.
        let response = request(
            &state,
            r#"{"op":"solve","query":"ax*b","deadline_ms":0,"db":"s a u\nu x v\nv b t\n"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        assert_eq!(response.get("tier").and_then(Json::as_str), Some("approx"));
        assert_eq!(response.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(response.get("exact"), Some(&Json::Bool(false)));
        let bounds = response.get("bounds").unwrap().as_array().unwrap();
        // The exact resilience of a x* b on the 3-fact path is 1.
        let lower = bounds[0].as_int().unwrap();
        let upper = bounds[1].as_int().unwrap();
        assert!(lower <= 1 && 1 <= upper, "{response}");
        // The same request without the deadline is bit-identical to the
        // pre-router behavior: exact value 1.
        let exact =
            request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        assert_eq!(exact.get("value"), Some(&Json::Int(1)));
        assert_eq!(exact.get("exact"), Some(&Json::Bool(true)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        let router = stats.get("router").unwrap();
        assert_eq!(router.get("degraded"), Some(&Json::Int(1)), "{stats}");
        assert_eq!(router.get("approx"), Some(&Json::Int(1)), "{stats}");
    }

    #[test]
    fn db_solve_reports_result_cache_hits() {
        let state = state();
        request(&state, r#"{"op":"db_put","name":"g","db":"s a u\nu x v\nv b t\n"}"#);
        let first = request(&state, r#"{"op":"db_solve","name":"g","query":"ax*b","snapshot":3}"#);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first}");
        assert_eq!(first.get("result_cached"), Some(&Json::Bool(false)));
        let second = request(&state, r#"{"op":"db_solve","name":"g","query":"ax*b","snapshot":3}"#);
        assert_eq!(second.get("result_cached"), Some(&Json::Bool(true)), "{second}");
        assert_eq!(second.get("value"), first.get("value"));
        assert_eq!(second.get("tier").and_then(Json::as_str), Some("poly"));
        let stats = request(&state, r#"{"op":"stats"}"#);
        let store = stats.get("store").unwrap();
        assert_eq!(store.get("result_hits"), Some(&Json::Int(1)), "{stats}");
        assert_eq!(store.get("result_misses"), Some(&Json::Int(1)), "{stats}");
        let metrics = request(&state, r#"{"op":"metrics"}"#);
        let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
        assert!(text.contains("rpq_store_result_cache_hits_total 1"), "{text}");
    }

    #[test]
    fn a_deep_ready_queue_sheds_load_through_the_router() {
        let state = state();
        // Simulate a backlog: the router's probe reads this gauge.
        state.connections.queue_depth.store(DEFAULT_SHED_QUEUE_DEPTH + 1, Ordering::Relaxed);
        assert!(state.router.is_overloaded());
        // A cheap solve still fits inside the shed budget and answers
        // exactly — shedding degrades *gracefully*, it does not refuse.
        let response = request(&state, r#"{"op":"solve","query":"ab","db":"u a v\nv b w\n"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(response.get("exact"), Some(&Json::Bool(true)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        let router = stats.get("router").unwrap();
        assert_eq!(router.get("overloaded"), Some(&Json::Bool(true)), "{stats}");
        assert_eq!(router.get("overload_sheds"), Some(&Json::Int(1)), "{stats}");
        // Backlog drained: budgets pass through untightened again.
        state.connections.queue_depth.store(0, Ordering::Relaxed);
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("router").unwrap().get("overloaded"), Some(&Json::Bool(false)));
        let metrics = request(&state, r#"{"op":"metrics"}"#);
        let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
        assert!(text.contains("rpq_overload_sheds_total 1"), "{text}");
        assert!(text.contains("rpq_routed_total{tier=\"poly\"} 1"), "{text}");
    }

    #[test]
    fn solve_batch_mixes_successes_and_per_database_errors() {
        let state = state();
        let response = request(
            &state,
            r#"{"op":"solve_batch","query":"ab","dbs":["u a v\nv b w\n","u ab v"]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let results = response.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("value"), Some(&Json::Int(1)));
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
        assert!(results[1].get("error").and_then(Json::as_str).unwrap().contains("parse"));
    }

    #[test]
    fn per_database_batch_failures_increment_the_errors_stat() {
        let state = state();
        // Two parse failures and one success inside an `"ok":true` batch.
        let response = request(
            &state,
            r#"{"op":"solve_batch","query":"ab","dbs":["u a v\nv b w\n","u ab v","!!"]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("errors"), Some(&Json::Int(2)), "{stats}");
        // A per-database *solve* failure counts too: forced enumeration with
        // a tiny limit fails on the larger database only.
        let response = request(
            &state,
            r#"{"op":"solve_batch","query":"aa","algorithm":"enumeration","enumeration_limit":2,"dbs":["1 a 2\n","1 a 2\n2 a 3\n3 a 4\n"]}"#,
        );
        let results = response.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("value"), Some(&Json::Int(0)));
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("errors"), Some(&Json::Int(3)), "{stats}");
    }

    #[test]
    fn batch_jobs_setting_reaches_the_parallel_path() {
        let state = state();
        // jobs > 1 exercises the scoped-thread batch; results stay in order.
        let response = request(
            &state,
            r#"{"op":"solve_batch","query":"ax*b","jobs":3,"dbs":["s a u\nu b t\n","s a u\n","s a u\nu x v\nv b t\n"]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let values: Vec<_> = response
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.get("value").unwrap().clone())
            .collect();
        assert_eq!(values, vec![Json::Int(1), Json::Int(0), Json::Int(1)]);
    }

    #[test]
    fn invalid_utf8_request_lines_get_an_explicit_error() {
        let state = state();
        let mut line = br#"{"op":"prepare","query":""#.to_vec();
        line.extend([0xFF, 0xFE]); // not UTF-8
        line.extend(br#""}"#);
        let (response, shutdown) = state.handle_raw_line(&line);
        assert!(!shutdown);
        let json = Json::parse(&response).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        let error = json.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains("invalid encoding"), "{error}");
        assert!(error.contains("UTF-8"), "{error}");
        // Counted as a request and an error.
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("requests"), Some(&Json::Int(2)));
        assert_eq!(stats.get("errors"), Some(&Json::Int(1)));
    }

    #[test]
    fn per_request_settings_reach_the_engine() {
        let state = state();
        // ε ∈ L: infinite resilience.
        let response = request(&state, r#"{"op":"solve","query":"a*","db":"u a v\n"}"#);
        assert_eq!(response.get("value").and_then(Json::as_str), Some("infinite"));
        // Bag semantics multiply the cut cost by the multiplicity.
        let set = request(&state, r#"{"op":"solve","query":"a","db":"u a v 5\n"}"#);
        assert_eq!(set.get("value"), Some(&Json::Int(1)));
        let bag = request(&state, r#"{"op":"solve","query":"a","bag":true,"db":"u a v 5\n"}"#);
        assert_eq!(bag.get("value"), Some(&Json::Int(5)));
        // Forced enumeration with a tiny limit yields a typed error.
        let response = request(
            &state,
            r#"{"op":"solve","query":"aa","algorithm":"enumeration","enumeration_limit":2,"db":"1 a 2\n2 a 3\n3 a 4\n"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert!(response.get("error").and_then(Json::as_str).unwrap().contains("limit"));
        // Approximation backends report bounds.
        let response = request(
            &state,
            r#"{"op":"solve","query":"aa","algorithm":"greedy","db":"1 a 2\n2 a 3\n3 a 4\n"}"#,
        );
        assert!(response.get("bounds").is_some());
    }

    #[test]
    fn want_cut_false_yields_value_only_responses_from_one_cache_entry() {
        let state = state();
        // One-dangling query: the backend now extracts witnesses by default.
        let db = "1 a 2\\n2 b 3\\n3 c 4\\n3 e 5\\n";
        let with_cut =
            request(&state, &format!(r#"{{"op":"solve","query":"abc|be","db":"{db}"}}"#));
        assert_eq!(with_cut.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(with_cut.get("algorithm").and_then(Json::as_str), Some("one-dangling"));
        assert_eq!(with_cut.get("contingency_set").unwrap().as_array().unwrap().len(), 1);
        // Opting out drops the witness but reuses the same cached plan.
        let value_only = request(
            &state,
            &format!(r#"{{"op":"solve","query":"abc|be","want_cut":false,"db":"{db}"}}"#),
        );
        assert_eq!(value_only.get("value"), with_cut.get("value"));
        assert!(value_only.get("contingency_set").is_none());
        assert_eq!(value_only.get("cached"), Some(&Json::Bool(true)));
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("cache").unwrap().get("entries"), Some(&Json::Int(1)));
        // Batches honor the flag too.
        let batch = request(
            &state,
            &format!(r#"{{"op":"solve_batch","query":"abc|be","want_cut":false,"dbs":["{db}"]}}"#),
        );
        let results = batch.get("results").unwrap().as_array().unwrap();
        assert!(results[0].get("contingency_set").is_none());
    }

    #[test]
    fn db_verbs_round_trip_with_incremental_solves() {
        let state = state();
        let put = request(&state, r#"{"op":"db_put","name":"g","db":"s a u\nu x v\nv b t\n"}"#);
        assert_eq!(put.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(put.get("snapshot"), Some(&Json::Int(3)));
        assert_eq!(put.get("facts"), Some(&Json::Int(3)));
        // First solve at the head: a full build, bound to snapshot 3.
        let first = request(&state, r#"{"op":"db_solve","name":"g","query":"ax*b"}"#);
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first}");
        assert_eq!(first.get("snapshot"), Some(&Json::Int(3)));
        assert_eq!(first.get("value"), Some(&Json::Int(1)));
        assert_eq!(first.get("incremental"), Some(&Json::Bool(false)));
        assert_eq!(first.get("contingency_set").unwrap().as_array().unwrap().len(), 1);
        // Patch out the only x-path; the follow-up solve rides the
        // incremental path and sees the new value.
        let patch = request(&state, r#"{"op":"db_patch","name":"g","patch":"- u x v\n"}"#);
        assert_eq!(patch.get("snapshot"), Some(&Json::Int(4)));
        assert_eq!(patch.get("applied"), Some(&Json::Int(1)));
        let second = request(&state, r#"{"op":"db_solve","name":"g","query":"ax*b"}"#);
        assert_eq!(second.get("snapshot"), Some(&Json::Int(4)));
        assert_eq!(second.get("value"), Some(&Json::Int(0)));
        assert_eq!(second.get("incremental"), Some(&Json::Bool(true)));
        // Name the pre-patch snapshot and solve both in one request.
        let named =
            request(&state, r#"{"op":"db_snapshot","name":"g","snapshot_name":"before","at":3}"#);
        assert_eq!(named.get("snapshot"), Some(&Json::Int(3)));
        let both = request(
            &state,
            r#"{"op":"db_solve","name":"g","query":"ax*b","snapshots":["before",4]}"#,
        );
        assert_eq!(both.get("ok"), Some(&Json::Bool(true)));
        let results = both.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("snapshot"), Some(&Json::Int(3)));
        assert_eq!(results[0].get("value"), Some(&Json::Int(1)));
        assert_eq!(results[1].get("snapshot"), Some(&Json::Int(4)));
        assert_eq!(results[1].get("value"), Some(&Json::Int(0)));
        // The listing shows the log, the pin and the head snapshot.
        let list = request(&state, r#"{"op":"db_list"}"#);
        let dbs = list.get("databases").unwrap().as_array().unwrap();
        assert_eq!(dbs.len(), 1);
        assert_eq!(dbs[0].get("name").and_then(Json::as_str), Some("g"));
        assert_eq!(dbs[0].get("snapshot"), Some(&Json::Int(4)));
        assert_eq!(dbs[0].get("named").unwrap().get("before"), Some(&Json::Int(3)));
        // Stats expose the store metrics, including the solve-mode split.
        let stats = request(&state, r#"{"op":"stats"}"#);
        let store = stats.get("store").unwrap();
        assert_eq!(store.get("databases"), Some(&Json::Int(1)));
        assert_eq!(store.get("log_entries"), Some(&Json::Int(4)));
        assert!(store.get("incremental_solves").unwrap().as_int().unwrap() >= 1);
        assert!(store.get("full_solves").unwrap().as_int().unwrap() >= 1);
        // Dropping is idempotent and reported.
        let drop = request(&state, r#"{"op":"db_drop","name":"g"}"#);
        assert_eq!(drop.get("dropped"), Some(&Json::Bool(true)));
        let drop = request(&state, r#"{"op":"db_drop","name":"g"}"#);
        assert_eq!(drop.get("dropped"), Some(&Json::Bool(false)));
    }

    #[test]
    fn db_solve_batches_carry_per_snapshot_errors_without_failing_the_request() {
        let state = state();
        request(&state, r#"{"op":"db_put","name":"g","db":"1 a 2\n2 a 3\n3 a 4\n"}"#);
        // Forced enumeration with a tiny limit fails per snapshot — but a
        // shorter historical snapshot still answers, and each failure entry
        // names its resolved snapshot id.
        let response = request(
            &state,
            r#"{"op":"db_solve","name":"g","query":"aa","algorithm":"enumeration","enumeration_limit":2,"snapshots":[1,3,"ghost"]}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        let results = response.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("value"), Some(&Json::Int(0)));
        assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(results[1].get("snapshot"), Some(&Json::Int(3)), "{response}");
        assert!(results[1].get("error").and_then(Json::as_str).unwrap().contains("limit"));
        assert_eq!(results[2].get("code").and_then(Json::as_str), Some("unknown_snapshot"));
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("errors"), Some(&Json::Int(2)), "{stats}");
        // The inline form reports the same failures as a plain error (typed
        // for store problems, snapshot-stamped for engine ones).
        let missing = request(&state, r#"{"op":"db_solve","name":"nope","query":"aa"}"#);
        assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(missing.get("code").and_then(Json::as_str), Some("unknown_database"));
        let failed = request(
            &state,
            r#"{"op":"db_solve","name":"g","query":"aa","algorithm":"enumeration","enumeration_limit":2}"#,
        );
        assert_eq!(failed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(failed.get("snapshot"), Some(&Json::Int(3)));
    }

    #[test]
    fn oversized_db_bodies_are_rejected_with_a_typed_error() {
        let config = ServerConfig {
            store: rpq_store::StoreConfig { capacity: 64, max_body_bytes: 24 },
            ..ServerConfig::default()
        };
        let state = ServerState::new(config);
        let response = request(
            &state,
            r#"{"op":"db_put","name":"g","db":"s a u\nu x v\nv b t\nmore facts beyond the cap\n"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(response.get("code").and_then(Json::as_str), Some("body_too_large"));
        assert!(response.get("error").and_then(Json::as_str).unwrap().contains("24-byte limit"));
    }

    #[test]
    fn stats_and_errors_are_counted() {
        let state = state();
        request(&state, r#"{"op":"prepare","query":"a|b"}"#);
        request(&state, r#"{"op":"prepare","query":"b|a"}"#);
        request(&state, "garbage");
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("requests"), Some(&Json::Int(4)));
        assert_eq!(stats.get("errors"), Some(&Json::Int(1)));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits"), Some(&Json::Int(1)));
        assert_eq!(cache.get("misses"), Some(&Json::Int(1)));
        assert_eq!(cache.get("entries"), Some(&Json::Int(1)));
        assert!(cache.get("shards").unwrap().as_int().unwrap() >= 1);
        // The pipe/handler path opens no TCP connections: all gauges zero.
        let connections = stats.get("connections").unwrap();
        assert_eq!(connections.get("open"), Some(&Json::Int(0)));
        assert_eq!(connections.get("accepted"), Some(&Json::Int(0)));
        assert_eq!(connections.get("queue_depth"), Some(&Json::Int(0)));
    }

    #[test]
    fn solve_responses_always_carry_elapsed_us() {
        let state = state();
        let ok = request(&state, r#"{"op":"solve","query":"ab","db":"u a v\nv b w\n"}"#);
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));
        assert!(ok.get("elapsed_us").unwrap().as_int().is_some(), "{ok}");
        // No tracing was requested: no timings object rides along.
        assert!(ok.get("timings").is_none());
        // Error responses carry the stopwatch too.
        let err = request(&state, r#"{"op":"solve","query":"ab","db":"!!"}"#);
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert!(err.get("elapsed_us").unwrap().as_int().is_some(), "{err}");
        // Batches and hosted solves as well.
        let batch = request(&state, r#"{"op":"solve_batch","query":"ab","dbs":["u a v\n"]}"#);
        assert!(batch.get("elapsed_us").unwrap().as_int().is_some(), "{batch}");
        request(&state, r#"{"op":"db_put","name":"g","db":"u a v\nv b w\n"}"#);
        let hosted = request(&state, r#"{"op":"db_solve","name":"g","query":"ab"}"#);
        assert!(hosted.get("elapsed_us").unwrap().as_int().is_some(), "{hosted}");
    }

    #[test]
    fn traced_solves_return_phase_timings_consistent_with_elapsed() {
        let state = state();
        let response = request(
            &state,
            r#"{"op":"solve","query":"ax*b","trace":true,"db":"s a u\nu x v\nv b t\n"}"#,
        );
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let elapsed = response.get("elapsed_us").unwrap().as_int().unwrap();
        let Json::Object(timings) = response.get("timings").unwrap() else {
            panic!("timings must be an object: {response}");
        };
        let phases: Vec<&str> = timings.iter().map(|(phase, _)| phase.as_str()).collect();
        for expected in ["cache_lookup", "plan", "parse_db", "product_build", "other"] {
            assert!(phases.contains(&expected), "missing {expected} in {phases:?}");
        }
        // The sealed spans cover the request end to end: their sum (which
        // includes the `other` remainder) reaches at least 95% of the
        // whole-request stopwatch.
        let sum: i128 = timings.iter().map(|(_, us)| us.as_int().unwrap()).sum();
        assert!(sum <= elapsed, "span sum {sum} exceeds elapsed {elapsed}");
        assert!(sum * 100 >= elapsed * 95, "span sum {sum} covers <95% of elapsed {elapsed}");
        // A repeat solve hits the cache and still traces.
        let hit = request(
            &state,
            r#"{"op":"solve","query":"ax*b","trace":true,"db":"s a u\nu x v\nv b t\n"}"#,
        );
        assert_eq!(hit.get("cached"), Some(&Json::Bool(true)));
        assert!(hit.get("timings").is_some());
    }

    #[test]
    fn slow_query_log_threshold_enables_tracing_without_wire_timings() {
        // A zero threshold logs every solve; the response stays untraced
        // (timings are opt-in per request) but still carries `elapsed_us`.
        let config = ServerConfig { slow_query_log_us: Some(0), ..ServerConfig::default() };
        let state = ServerState::new(config);
        let response = request(&state, r#"{"op":"solve","query":"ab","db":"u a v\nv b w\n"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        assert!(response.get("elapsed_us").is_some());
        assert!(response.get("timings").is_none());
    }

    #[test]
    fn stats_report_uptime_and_per_verb_request_counts() {
        let state = state();
        request(&state, r#"{"op":"prepare","query":"ab"}"#);
        request(&state, r#"{"op":"solve","query":"ab","db":"u a v\n"}"#);
        request(&state, r#"{"op":"solve","query":"ab","db":"u a v\n"}"#);
        request(&state, "garbage"); // parse failures count under no verb
        let stats = request(&state, r#"{"op":"stats"}"#);
        assert!(stats.get("uptime_secs").unwrap().as_int().is_some());
        let by_verb = stats.get("requests_by_verb").unwrap();
        assert_eq!(by_verb.get("prepare"), Some(&Json::Int(1)));
        assert_eq!(by_verb.get("solve"), Some(&Json::Int(2)));
        assert_eq!(by_verb.get("stats"), Some(&Json::Int(1)));
        assert_eq!(by_verb.get("shutdown"), Some(&Json::Int(0)));
        // Every verb is present, so dashboards can rely on the full set.
        if let Json::Object(fields) = by_verb {
            assert_eq!(fields.len(), VERBS.len());
        } else {
            panic!("requests_by_verb must be an object");
        }
        // The verb totals sum to the parsed-request count (requests minus
        // the one parse failure).
        let total: i128 = VERBS.iter().map(|v| by_verb.get(v).unwrap().as_int().unwrap()).sum();
        assert_eq!(total, stats.get("requests").unwrap().as_int().unwrap() - 1);
    }

    #[test]
    fn metrics_verb_exports_prometheus_text() {
        let state = state();
        request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        request(&state, r#"{"op":"solve","query":"ax*b","db":"s a u\nu x v\nv b t\n"}"#);
        request(&state, r#"{"op":"solve_batch","query":"ab","dbs":["u a v\nv b w\n"]}"#);
        let response = request(&state, r#"{"op":"metrics"}"#);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        let text = response.get("metrics").and_then(Json::as_str).unwrap();
        assert!(text.contains("# TYPE rpq_requests_total counter"), "{text}");
        assert!(text.contains("rpq_requests_total 4"), "{text}");
        assert!(text.contains("rpq_requests_by_verb_total{verb=\"solve\"} 2"), "{text}");
        assert!(text.contains("# TYPE rpq_solve_latency_us histogram"), "{text}");
        let solve_key = "verb=\"solve\",family=\"local\",tier=\"poly\",backend=\"dinic\"";
        assert!(text.contains(&format!("rpq_solve_latency_us_count{{{solve_key}}} 2")), "{text}");
        let batch_key = "verb=\"solve_batch\",family=\"local\",tier=\"poly\",backend=\"dinic\"";
        assert!(text.contains(&format!("rpq_solve_latency_us_count{{{batch_key}}} 1")), "{text}");
        assert!(text.contains(&format!("rpq_solve_latency_us_p99{{{solve_key}}}")), "{text}");
        assert!(text.contains("rpq_cache_misses_total 2"), "{text}");
        assert!(text.contains("le=\"+Inf\""), "{text}");
        // Per-request flow overrides split the backend label.
        request(
            &state,
            r#"{"op":"solve","query":"ax*b","flow":"push-relabel","db":"s a u\nu x v\nv b t\n"}"#,
        );
        let response = request(&state, r#"{"op":"metrics"}"#);
        let text = response.get("metrics").and_then(Json::as_str).unwrap();
        assert!(text.contains("backend=\"push-relabel\""), "{text}");
    }

    #[test]
    fn pipe_mode_serves_the_same_protocol() {
        let state = state();
        let input = "{\"op\":\"prepare\",\"query\":\"ab|cd\"}\n\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"stats\"}\n";
        let mut output = Vec::new();
        run_pipe(&state, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().trim().lines().collect();
        // The trailing request after `shutdown` is not served.
        assert_eq!(lines.len(), 3);
        assert!(Json::parse(lines[0]).unwrap().get("plan").is_some());
        assert_eq!(
            Json::parse(lines[2]).unwrap().get("ok"),
            Some(&Json::Bool(true)) // the shutdown acknowledgement
        );
        assert!(state.is_shutting_down());
    }

    #[test]
    fn pipe_mode_reports_invalid_utf8_and_keeps_serving() {
        let state = state();
        let mut input: Vec<u8> = Vec::new();
        input.extend(b"{\"op\":\"prepare\",\"query\":\"a");
        input.extend([0xC3]); // truncated UTF-8 sequence
        input.extend(b"\"}\n{\"op\":\"stats\"}\n");
        let mut output = Vec::new();
        run_pipe(&state, &input[..], &mut output).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&output).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 2, "the pipe keeps serving after the bad line");
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(false)));
        assert!(first.get("error").and_then(Json::as_str).unwrap().contains("invalid encoding"));
        let second = Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(second.get("errors"), Some(&Json::Int(1)));
    }
}
