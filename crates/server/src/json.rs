//! A minimal, dependency-free JSON value type with a parser and writer.
//!
//! The build environment is offline (no `serde`), and the wire protocol of
//! [`crate::server`] only needs flat request/response objects, so this module
//! implements exactly the JSON subset the protocol uses: the six standard
//! value kinds, `\uXXXX` escapes (including surrogate pairs), and integer
//! numbers kept exact in an `i128` (floats fall back to `f64`). Object keys
//! preserve insertion order, which keeps responses byte-stable for tests.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, kept exact.
    Int(i128),
    /// A fractional number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Object(Vec<(String, Json)>),
    /// Pre-rendered JSON emitted verbatim by the writer. Used to embed
    /// fragments serialized elsewhere (e.g.
    /// `rpq_resilience::engine::PlanReport::to_json`); the caller must
    /// guarantee well-formedness.
    Raw(String),
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Builds an object from key/value pairs (convenience for responses).
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer number.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as a `usize`, if representable.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|i| usize::try_from(i).ok())
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    f.write_str("null") // JSON has no NaN / ±∞.
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
            Json::Raw(s) => f.write_str(s),
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes.get(self.pos..).is_some_and(|tail| tail.starts_with(literal.as_bytes())) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{literal}`")))
        }
    }

    /// Parses a number following the exact JSON grammar:
    /// `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`. Leading zeros
    /// (`01`), digit-less mantissas (`1.`, `.5`) and digit-less exponents
    /// (`1e`, `1e+`) are grammar errors — they must not slip through to the
    /// more permissive `i128` / `f64` string parsers.
    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("leading zeros are not allowed in numbers"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit in number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|digits| std::str::from_utf8(digits).ok())
            .ok_or_else(|| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number `{text}`") })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: expect a `\uXXXX` low half.
                                if self
                                    .bytes
                                    .get(self.pos..)
                                    .is_some_and(|tail| tail.starts_with(b"\\u"))
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(high)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 character. Only the
                    // character's own bytes are validated — `Json::parse`
                    // takes a `&str`, so this always succeeds, but
                    // re-validating the whole remaining input per character
                    // (as an earlier version did) made parsing quadratic:
                    // 288 ms for a 150 kB request line.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let c = self
                        .bytes
                        .get(self.pos..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        // lint: allow(panic-freedom, the range is length-checked just above)
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_preserves_key_order() {
        let v = Json::parse(r#"{"b":[1,2,{"x":null}],"a":"y"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("y"));
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[2].get("x"), Some(&Json::Null));
        assert_eq!(v.to_string(), r#"{"b":[1,2,{"x":null}],"a":"y"}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" back\\ nl\n tab\t unicode ε∞ control\u{1}";
        let rendered = Json::Str(original.to_string()).to_string();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(original));
        // Explicit \u escapes, including a surrogate pair (U+1F389).
        assert_eq!(Json::parse(r#""A🎉""#).unwrap().as_str(), Some("A\u{1F389}"));
        assert_eq!(Json::parse("\"\\ud83c\\udf89\"").unwrap().as_str(), Some("\u{1F389}"));
        assert!(Json::parse(r#""\ud83c""#).is_err()); // lone high surrogate
        assert!(Json::parse(r#""\udf89""#).is_err()); // lone low surrogate
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{'a':1}", "[1,]"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn number_grammar_is_strict() {
        // Leading zeros, digit-less mantissas and digit-less exponents are
        // rejected at the grammar level, not forwarded to `i128`/`f64`.
        for bad in [
            "01",
            "-01",
            "007",
            "00",
            "1.",
            "-2.",
            "1.e3",
            "1e",
            "1e+",
            "1E-",
            "-",
            "0x1",
            "01.5",
            "[01]",
            "{\"n\":01}",
            "1.2e",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // The valid edge cases still parse.
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("10").unwrap(), Json::Int(10));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("-0.5").unwrap(), Json::Float(-0.5));
        assert_eq!(Json::parse("0e0").unwrap(), Json::Float(0.0));
        assert_eq!(Json::parse("2E+2").unwrap(), Json::Float(200.0));
        assert_eq!(Json::parse("123e-2").unwrap(), Json::Float(1.23));
        let err = Json::parse("01").unwrap_err();
        assert!(err.to_string().contains("leading zero"), "{err}");
    }

    #[test]
    fn raw_fragments_are_emitted_verbatim() {
        let v = Json::object([("plan", Json::Raw("{\"algorithm\":\"local\"}".into()))]);
        assert_eq!(v.to_string(), "{\"plan\":{\"algorithm\":\"local\"}}");
        assert!(Json::parse(&v.to_string()).is_ok());
    }

    #[test]
    fn big_integers_stay_exact() {
        let big = i128::MAX.to_string();
        assert_eq!(Json::parse(&big).unwrap(), Json::Int(i128::MAX));
        assert_eq!(Json::Int(i128::MAX).to_string(), big);
    }
}
