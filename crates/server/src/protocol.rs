//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; the server answers with one
//! JSON object on one line. The `op` field selects the verb:
//!
//! | `op`          | extra fields                                   |
//! |---------------|------------------------------------------------|
//! | `prepare`     | `query`, and optional query settings (below)   |
//! | `solve`       | `query`, `db` (graph text format), settings    |
//! | `solve_batch` | `query`, `dbs` (array of graph texts), settings|
//! | `stats`       | —                                              |
//! | `shutdown`    | —                                              |
//!
//! Query settings (all optional): `bag` (bool, bag semantics), `flow`
//! (MinCut backend name, see [`FlowAlgorithm`]), `enumeration_limit` (facts
//! cap of the subset-enumeration oracle), `algorithm` (force a backend by its
//! [`Algorithm`] name instead of automatic dispatch), `want_cut` (bool,
//! default `true`: extract an optimal contingency set alongside the value;
//! set `false` for value-only responses), `jobs` (int, worker threads for
//! the per-database half of a `solve_batch`; defaults to the server's
//! `--jobs` setting). All settings except `want_cut` and `jobs` participate
//! in the prepared-query cache key — cut extraction and batch parallelism
//! are solve-time choices, so their variants share one cached plan.
//!
//! Successful responses carry `"ok": true`; failures carry `"ok": false` and
//! an `error` string. Databases travel in the line-based text format of
//! `rpq_graphdb::text` (escaped into a JSON string). See the top-level
//! README for one example request/response per verb.

use crate::json::Json;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::GraphDb;
use rpq_resilience::algorithms::{Algorithm, ResilienceOutcome};
use rpq_resilience::rpq::ResilienceValue;

/// The query half of a request: the regex plus the per-request settings that
/// participate in the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuerySpec {
    /// The regular expression defining the query language.
    pub pattern: String,
    /// Bag semantics (fact removals cost their multiplicity).
    pub bag: bool,
    /// Override of the server's default MinCut backend.
    pub flow: Option<FlowAlgorithm>,
    /// Override of the subset-enumeration fact limit.
    pub enumeration_limit: Option<usize>,
    /// Force a specific algorithm instead of automatic dispatch.
    pub algorithm: Option<Algorithm>,
    /// Whether to extract a contingency set alongside the value (`None`
    /// defers to the server default, which is `true`). Not part of the cache
    /// key: the flag is applied per solve call.
    pub want_cut: Option<bool>,
    /// Worker threads for the per-database half of a `solve_batch` (`None`
    /// defers to the server default). Like `want_cut`, a solve-time setting:
    /// never part of the cache key.
    pub jobs: Option<usize>,
}

impl QuerySpec {
    /// A spec with default settings for `pattern`.
    pub fn new(pattern: impl Into<String>) -> QuerySpec {
        QuerySpec { pattern: pattern.into(), ..QuerySpec::default() }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify the query and cache its plan.
    Prepare {
        /// The query to prepare.
        query: QuerySpec,
    },
    /// Compute the resilience on one database.
    Solve {
        /// The query to solve.
        query: QuerySpec,
        /// The database, in the graph text format.
        db: String,
    },
    /// Compute the resilience on several databases with one cached plan.
    SolveBatch {
        /// The query to solve.
        query: QuerySpec,
        /// The databases, each in the graph text format.
        dbs: Vec<String>,
    },
    /// Report server and cache counters.
    Stats,
    /// Stop accepting connections and exit once open connections drain.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request must be an object with a string `op` field")?;
        match op {
            "prepare" => Ok(Request::Prepare { query: parse_query_spec(&json)? }),
            "solve" => {
                let db = json
                    .get("db")
                    .and_then(Json::as_str)
                    .ok_or("`solve` requires a string `db` field (graph text format)")?
                    .to_string();
                Ok(Request::Solve { query: parse_query_spec(&json)?, db })
            }
            "solve_batch" => {
                let dbs = json
                    .get("dbs")
                    .and_then(Json::as_array)
                    .ok_or("`solve_batch` requires an array `dbs` field")?
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or("`dbs` entries must be strings (graph text format)".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::SolveBatch { query: parse_query_spec(&json)?, dbs })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected prepare, solve, solve_batch, stats or shutdown)"
            )),
        }
    }

    /// Renders the request as its wire JSON (used by clients).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Prepare { query } => query_spec_json("prepare", query, Vec::new()),
            Request::Solve { query, db } => {
                query_spec_json("solve", query, vec![("db", Json::Str(db.clone()))])
            }
            Request::SolveBatch { query, dbs } => {
                let dbs = dbs.iter().map(|d| Json::Str(d.clone())).collect();
                query_spec_json("solve_batch", query, vec![("dbs", Json::Array(dbs))])
            }
            Request::Stats => Json::object([("op", Json::Str("stats".into()))]),
            Request::Shutdown => Json::object([("op", Json::Str("shutdown".into()))]),
        }
    }
}

fn parse_query_spec(json: &Json) -> Result<QuerySpec, String> {
    let pattern = json
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string `query` field (a regular expression)")?
        .to_string();
    let bag = match json.get("bag") {
        None => false,
        Some(v) => v.as_bool().ok_or("`bag` must be a boolean")?,
    };
    let flow = match json.get("flow") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("`flow` must be a string")?.parse::<FlowAlgorithm>()?),
    };
    let enumeration_limit = match json.get("enumeration_limit") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`enumeration_limit` must be a non-negative integer")?),
    };
    let algorithm = match json.get("algorithm") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("`algorithm` must be a string")?.parse::<Algorithm>()?),
    };
    let want_cut = match json.get("want_cut") {
        None => None,
        Some(v) => Some(v.as_bool().ok_or("`want_cut` must be a boolean")?),
    };
    let jobs = match json.get("jobs") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`jobs` must be a non-negative integer")?),
    };
    Ok(QuerySpec { pattern, bag, flow, enumeration_limit, algorithm, want_cut, jobs })
}

fn query_spec_json(op: &'static str, query: &QuerySpec, extra: Vec<(&'static str, Json)>) -> Json {
    let mut pairs =
        vec![("op", Json::Str(op.to_string())), ("query", Json::Str(query.pattern.clone()))];
    if query.bag {
        pairs.push(("bag", Json::Bool(true)));
    }
    if let Some(flow) = query.flow {
        pairs.push(("flow", Json::Str(flow.name().to_string())));
    }
    if let Some(limit) = query.enumeration_limit {
        pairs.push(("enumeration_limit", Json::Int(limit as i128)));
    }
    if let Some(algorithm) = query.algorithm {
        pairs.push(("algorithm", Json::Str(algorithm.name().to_string())));
    }
    if let Some(want_cut) = query.want_cut {
        pairs.push(("want_cut", Json::Bool(want_cut)));
    }
    if let Some(jobs) = query.jobs {
        pairs.push(("jobs", Json::Int(jobs as i128)));
    }
    pairs.extend(extra);
    Json::object(pairs)
}

/// The uniform failure response: `{"ok":false,"error":"…"}`.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::object([("ok", Json::Bool(false)), ("error", Json::Str(message.into()))])
}

/// Renders a resilience value: a JSON integer, or the string `"infinite"`.
pub fn value_json(value: ResilienceValue) -> Json {
    match value {
        ResilienceValue::Infinite => Json::Str("infinite".into()),
        ResilienceValue::Finite(v) => match i128::try_from(v) {
            Ok(i) => Json::Int(i),
            // u128 values beyond i128 cannot be a JSON int in this
            // implementation; fall back to a decimal string.
            Err(_) => Json::Str(v.to_string()),
        },
    }
}

/// Renders one solve outcome (without the `ok` marker, so it can serve both
/// as a full `solve` response body and as a `solve_batch` results entry).
pub fn outcome_json(outcome: &ResilienceOutcome, db: &GraphDb) -> Json {
    let mut pairs = vec![
        ("value", value_json(outcome.value)),
        ("algorithm", Json::Str(outcome.algorithm.name().to_string())),
        ("exact", Json::Bool(outcome.is_exact())),
    ];
    if let Some((lower, upper)) = outcome.bounds {
        pairs.push((
            "bounds",
            Json::Array(vec![
                value_json(ResilienceValue::Finite(lower)),
                value_json(ResilienceValue::Finite(upper)),
            ]),
        ));
    }
    if let Some(cut) = &outcome.contingency_set {
        let facts = cut.iter().map(|&f| Json::Str(db.display_fact(f))).collect();
        pairs.push(("contingency_set", Json::Array(facts)));
    }
    Json::object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::Prepare { query: QuerySpec::new("ax*b") },
            Request::Prepare {
                query: QuerySpec {
                    pattern: "a|b".into(),
                    bag: true,
                    flow: Some(FlowAlgorithm::PushRelabel),
                    enumeration_limit: Some(12),
                    algorithm: Some(Algorithm::ExactEnumeration),
                    want_cut: Some(false),
                    jobs: Some(2),
                },
            },
            // `auto` is a selectable backend: per-request overrides can ask
            // for the measured per-instance choice.
            Request::Prepare {
                query: QuerySpec { flow: Some(FlowAlgorithm::Auto), ..QuerySpec::new("ax*b") },
            },
            Request::Solve { query: QuerySpec::new("ab"), db: "u a v\nv b w\n".into() },
            Request::SolveBatch {
                query: QuerySpec::new("ab"),
                dbs: vec!["u a v\n".into(), "u b v\n".into()],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, fragment) in [
            ("nonsense", "invalid JSON"),
            ("{}", "`op`"),
            (r#"{"op":"fly"}"#, "unknown op `fly`"),
            (r#"{"op":"prepare"}"#, "missing string `query`"),
            (r#"{"op":"solve","query":"ab"}"#, "`db`"),
            (r#"{"op":"solve_batch","query":"ab"}"#, "`dbs`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[1]}"#, "must be strings"),
            (r#"{"op":"prepare","query":"ab","flow":"bogus"}"#, "unknown flow algorithm"),
            (r#"{"op":"prepare","query":"ab","algorithm":"bogus"}"#, "unknown algorithm"),
            (r#"{"op":"prepare","query":"ab","enumeration_limit":-3}"#, "non-negative"),
            (r#"{"op":"prepare","query":"ab","bag":"yes"}"#, "boolean"),
            (r#"{"op":"solve","query":"ab","db":"u a v\n","want_cut":1}"#, "`want_cut`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[],"jobs":-2}"#, "`jobs`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[],"jobs":true}"#, "`jobs`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(fragment), "{line}: {err}");
        }
    }

    #[test]
    fn value_rendering() {
        assert_eq!(value_json(ResilienceValue::Finite(3)).to_string(), "3");
        assert_eq!(value_json(ResilienceValue::Infinite).to_string(), "\"infinite\"");
        assert_eq!(
            value_json(ResilienceValue::Finite(u128::MAX)).to_string(),
            format!("\"{}\"", u128::MAX)
        );
    }
}
