//! The newline-delimited JSON wire protocol.
//!
//! Every request is one JSON object on one line; the server answers with one
//! JSON object on one line. The `op` field selects the verb:
//!
//! | `op`          | extra fields                                   |
//! |---------------|------------------------------------------------|
//! | `prepare`     | `query`, and optional query settings (below)   |
//! | `solve`       | `query`, `db` (graph text format), settings    |
//! | `solve_batch` | `query`, `dbs` (array of graph texts), settings|
//! | `db_put`      | `name`, `db` (graph text format)               |
//! | `db_patch`    | `name`, `patch` (patch text format)            |
//! | `db_snapshot` | `name`, `snapshot_name`, optional `at`         |
//! | `db_solve`    | `name`, `query`, settings, optional `snapshot` *or* `snapshots` |
//! | `db_list`     | —                                              |
//! | `db_drop`     | `name`                                         |
//! | `stats`       | —                                              |
//! | `metrics`     | —                                              |
//! | `shutdown`    | —                                              |
//!
//! The `db_*` verbs operate on **server-hosted databases** (see `rpq-store`):
//! `db_put` uploads a database under a name, `db_patch` appends a delta in
//! the patch text format (`+ u a v [mult] [!]` / `- u a v`), and every
//! append returns the new snapshot id (the fact-log offset). A snapshot
//! reference is either an integer offset or a string naming a pinned
//! snapshot created with `db_snapshot`; `db_solve` binds its answer to
//! `(name, snapshot)` — omitting the reference solves the current head. The
//! single-`snapshot` form answers inline, the array `snapshots` form
//! returns a `results` array with one entry per reference (per-snapshot
//! failures carry their resolved `snapshot` id instead of failing the whole
//! request). Store failures carry a machine-readable `code` next to the
//! human-readable `error`.
//!
//! Query settings (all optional): `bag` (bool, bag semantics), `flow`
//! (MinCut backend name, see [`FlowAlgorithm`]), `enumeration_limit` (facts
//! cap of the subset-enumeration oracle), `algorithm` (force a backend by its
//! [`Algorithm`] name instead of automatic dispatch), `want_cut` (bool,
//! default `true`: extract an optimal contingency set alongside the value;
//! set `false` for value-only responses), `jobs` (int, worker threads for
//! the per-database half of a `solve_batch`; defaults to the server's
//! `--jobs` setting), `trace` (bool, default `false`: time the solve phases
//! and attach a `timings` object to the response), `deadline_ms` (wall-clock
//! deadline in milliseconds: the router answers exactly when the projected
//! cost fits, else falls back to certified `[lower, upper]` bounds),
//! `cost_budget_us` (structural cost budget in estimated microseconds; the
//! tighter of the two knobs wins). All settings except `want_cut`, `jobs`,
//! `trace`, `deadline_ms` and `cost_budget_us` participate in the
//! prepared-query cache key — cut extraction, batch parallelism, tracing and
//! budget routing are solve-time choices, so their variants share one cached
//! plan.
//!
//! Every `solve`, `solve_batch` and `db_solve` outcome reports which tier
//! answered and why: `tier` (`poly`, `exact` or `approx`), `degraded` (the
//! budget forced a certified fallback below the planned backend) and `route`
//! (the router's reason). Degraded answers are never uncertified: they carry
//! `exact: false` with a `bounds` array such that
//! `lower ≤ resilience ≤ upper`.
//!
//! Every `solve`, `solve_batch` and `db_solve` response carries an
//! `elapsed_us` field (whole-request wall-clock in microseconds, always on).
//! The `metrics` verb returns the server's latency histograms and counters
//! as a Prometheus text-exposition string in the `metrics` field.
//!
//! Successful responses carry `"ok": true`; failures carry `"ok": false` and
//! an `error` string. Databases travel in the line-based text format of
//! `rpq_graphdb::text` (escaped into a JSON string). See the top-level
//! README for one example request/response per verb.

use crate::json::Json;
use rpq_flow::FlowAlgorithm;
use rpq_graphdb::GraphDb;
use rpq_resilience::algorithms::{Algorithm, ResilienceOutcome};
use rpq_resilience::router::TieredOutcome;
use rpq_resilience::rpq::ResilienceValue;

/// The query half of a request: the regex plus the per-request settings that
/// participate in the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuerySpec {
    /// The regular expression defining the query language.
    pub pattern: String,
    /// Bag semantics (fact removals cost their multiplicity).
    pub bag: bool,
    /// Override of the server's default MinCut backend.
    pub flow: Option<FlowAlgorithm>,
    /// Override of the subset-enumeration fact limit.
    pub enumeration_limit: Option<usize>,
    /// Force a specific algorithm instead of automatic dispatch.
    pub algorithm: Option<Algorithm>,
    /// Whether to extract a contingency set alongside the value (`None`
    /// defers to the server default, which is `true`). Not part of the cache
    /// key: the flag is applied per solve call.
    pub want_cut: Option<bool>,
    /// Worker threads for the per-database half of a `solve_batch` (`None`
    /// defers to the server default). Like `want_cut`, a solve-time setting:
    /// never part of the cache key.
    pub jobs: Option<usize>,
    /// Whether to record per-phase timings and return them in a `timings`
    /// object on the response (`None`/`false` skips the instrumentation
    /// entirely). A solve-time setting: never part of the cache key.
    pub trace: Option<bool>,
    /// Wall-clock deadline for the solve in milliseconds: the router answers
    /// exactly when the projected cost fits, and degrades to certified
    /// `[lower, upper]` bounds otherwise. A solve-time routing knob: never
    /// part of the cache key.
    pub deadline_ms: Option<u64>,
    /// Structural cost budget in estimated microseconds of solver work (the
    /// finer-grained sibling of `deadline_ms`; the tighter of the two wins).
    /// A solve-time routing knob: never part of the cache key.
    pub cost_budget_us: Option<u64>,
}

impl QuerySpec {
    /// A spec with default settings for `pattern`.
    pub fn new(pattern: impl Into<String>) -> QuerySpec {
        QuerySpec { pattern: pattern.into(), ..QuerySpec::default() }
    }
}

/// A reference to a snapshot of a hosted database: an integer fact-log
/// offset, or the name of a pinned snapshot (`db_snapshot`). The head of a
/// database is referenced by omitting the field, so there is no `Head`
/// variant on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotSel {
    /// A fact-log offset (a snapshot id as returned by `db_put`/`db_patch`).
    Offset(usize),
    /// A named snapshot pinned with `db_snapshot`.
    Named(String),
}

impl SnapshotSel {
    fn parse(value: &Json, field: &str) -> Result<SnapshotSel, String> {
        if let Some(offset) = value.as_usize() {
            return Ok(SnapshotSel::Offset(offset));
        }
        if let Some(name) = value.as_str() {
            return Ok(SnapshotSel::Named(name.to_string()));
        }
        Err(format!("`{field}` entries must be integer offsets or snapshot-name strings"))
    }

    fn to_json(&self) -> Json {
        match self {
            SnapshotSel::Offset(offset) => Json::Int(*offset as i128),
            SnapshotSel::Named(name) => Json::Str(name.clone()),
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify the query and cache its plan.
    Prepare {
        /// The query to prepare.
        query: QuerySpec,
    },
    /// Compute the resilience on one database.
    Solve {
        /// The query to solve.
        query: QuerySpec,
        /// The database, in the graph text format.
        db: String,
    },
    /// Compute the resilience on several databases with one cached plan.
    SolveBatch {
        /// The query to solve.
        query: QuerySpec,
        /// The databases, each in the graph text format.
        dbs: Vec<String>,
    },
    /// Upload (or replace) a hosted database under a name.
    DbPut {
        /// The database name.
        name: String,
        /// The database, in the graph text format.
        db: String,
    },
    /// Append a delta to a hosted database's fact log.
    DbPatch {
        /// The database name.
        name: String,
        /// The delta, in the patch text format.
        patch: String,
    },
    /// Pin a snapshot of a hosted database under a name.
    DbSnapshot {
        /// The database name.
        name: String,
        /// The name to pin the snapshot under.
        snapshot_name: String,
        /// The snapshot to pin (`None` pins the current head).
        at: Option<SnapshotSel>,
    },
    /// Compute the resilience on one or more snapshots of a hosted database.
    DbSolve {
        /// The query to solve.
        query: QuerySpec,
        /// The database name.
        name: String,
        /// One snapshot reference, answered inline (`None` together with an
        /// empty `snapshots` means the current head).
        snapshot: Option<SnapshotSel>,
        /// Several snapshot references, answered as a `results` array.
        /// Mutually exclusive with `snapshot`.
        snapshots: Option<Vec<SnapshotSel>>,
    },
    /// List the hosted databases with their snapshot state.
    DbList,
    /// Drop a hosted database (idempotent).
    DbDrop {
        /// The database name.
        name: String,
    },
    /// Report server and cache counters.
    Stats,
    /// Export latency histograms and counters as Prometheus text exposition.
    Metrics,
    /// Stop accepting connections and exit once open connections drain.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line).map_err(|e| e.to_string())?;
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request must be an object with a string `op` field")?;
        match op {
            "prepare" => Ok(Request::Prepare { query: parse_query_spec(&json)? }),
            "solve" => {
                let db = json
                    .get("db")
                    .and_then(Json::as_str)
                    .ok_or("`solve` requires a string `db` field (graph text format)")?
                    .to_string();
                Ok(Request::Solve { query: parse_query_spec(&json)?, db })
            }
            "solve_batch" => {
                let dbs = json
                    .get("dbs")
                    .and_then(Json::as_array)
                    .ok_or("`solve_batch` requires an array `dbs` field")?
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or("`dbs` entries must be strings (graph text format)".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::SolveBatch { query: parse_query_spec(&json)?, dbs })
            }
            "db_put" => {
                let db = json
                    .get("db")
                    .and_then(Json::as_str)
                    .ok_or("`db_put` requires a string `db` field (graph text format)")?
                    .to_string();
                Ok(Request::DbPut { name: parse_name(&json, "db_put")?, db })
            }
            "db_patch" => {
                let patch = json
                    .get("patch")
                    .and_then(Json::as_str)
                    .ok_or("`db_patch` requires a string `patch` field (patch text format)")?
                    .to_string();
                Ok(Request::DbPatch { name: parse_name(&json, "db_patch")?, patch })
            }
            "db_snapshot" => {
                let snapshot_name = json
                    .get("snapshot_name")
                    .and_then(Json::as_str)
                    .ok_or("`db_snapshot` requires a string `snapshot_name` field")?
                    .to_string();
                let at = match json.get("at") {
                    None => None,
                    Some(v) => Some(SnapshotSel::parse(v, "at")?),
                };
                Ok(Request::DbSnapshot {
                    name: parse_name(&json, "db_snapshot")?,
                    snapshot_name,
                    at,
                })
            }
            "db_solve" => {
                let snapshot = match json.get("snapshot") {
                    None => None,
                    Some(v) => Some(SnapshotSel::parse(v, "snapshot")?),
                };
                let snapshots = match json.get("snapshots") {
                    None => None,
                    Some(v) => Some(
                        v.as_array()
                            .ok_or("`snapshots` must be an array of snapshot references")?
                            .iter()
                            .map(|item| SnapshotSel::parse(item, "snapshots"))
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                };
                if snapshot.is_some() && snapshots.is_some() {
                    return Err(
                        "`db_solve` takes either `snapshot` or `snapshots`, not both".to_string()
                    );
                }
                Ok(Request::DbSolve {
                    query: parse_query_spec(&json)?,
                    name: parse_name(&json, "db_solve")?,
                    snapshot,
                    snapshots,
                })
            }
            "db_list" => Ok(Request::DbList),
            "db_drop" => Ok(Request::DbDrop { name: parse_name(&json, "db_drop")? }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!(
                "unknown op `{other}` (expected prepare, solve, solve_batch, db_put, db_patch, \
                 db_snapshot, db_solve, db_list, db_drop, stats, metrics or shutdown)"
            )),
        }
    }

    /// Renders the request as its wire JSON (used by clients).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Prepare { query } => query_spec_json("prepare", query, Vec::new()),
            Request::Solve { query, db } => {
                query_spec_json("solve", query, vec![("db", Json::Str(db.clone()))])
            }
            Request::SolveBatch { query, dbs } => {
                let dbs = dbs.iter().map(|d| Json::Str(d.clone())).collect();
                query_spec_json("solve_batch", query, vec![("dbs", Json::Array(dbs))])
            }
            Request::DbPut { name, db } => Json::object([
                ("op", Json::Str("db_put".into())),
                ("name", Json::Str(name.clone())),
                ("db", Json::Str(db.clone())),
            ]),
            Request::DbPatch { name, patch } => Json::object([
                ("op", Json::Str("db_patch".into())),
                ("name", Json::Str(name.clone())),
                ("patch", Json::Str(patch.clone())),
            ]),
            Request::DbSnapshot { name, snapshot_name, at } => {
                let mut pairs = vec![
                    ("op", Json::Str("db_snapshot".into())),
                    ("name", Json::Str(name.clone())),
                    ("snapshot_name", Json::Str(snapshot_name.clone())),
                ];
                if let Some(at) = at {
                    pairs.push(("at", at.to_json()));
                }
                Json::object(pairs)
            }
            Request::DbSolve { query, name, snapshot, snapshots } => {
                let mut extra = vec![("name", Json::Str(name.clone()))];
                if let Some(snapshot) = snapshot {
                    extra.push(("snapshot", snapshot.to_json()));
                }
                if let Some(snapshots) = snapshots {
                    extra.push((
                        "snapshots",
                        Json::Array(snapshots.iter().map(SnapshotSel::to_json).collect()),
                    ));
                }
                query_spec_json("db_solve", query, extra)
            }
            Request::DbList => Json::object([("op", Json::Str("db_list".into()))]),
            Request::DbDrop { name } => Json::object([
                ("op", Json::Str("db_drop".into())),
                ("name", Json::Str(name.clone())),
            ]),
            Request::Stats => Json::object([("op", Json::Str("stats".into()))]),
            Request::Metrics => Json::object([("op", Json::Str("metrics".into()))]),
            Request::Shutdown => Json::object([("op", Json::Str("shutdown".into()))]),
        }
    }
}

/// Parses the mandatory `name` field of a `db_*` request.
fn parse_name(json: &Json, op: &str) -> Result<String, String> {
    json.get("name")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("`{op}` requires a string `name` field (the database name)"))
}

fn parse_query_spec(json: &Json) -> Result<QuerySpec, String> {
    let pattern = json
        .get("query")
        .and_then(Json::as_str)
        .ok_or("missing string `query` field (a regular expression)")?
        .to_string();
    let bag = match json.get("bag") {
        None => false,
        Some(v) => v.as_bool().ok_or("`bag` must be a boolean")?,
    };
    let flow = match json.get("flow") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("`flow` must be a string")?.parse::<FlowAlgorithm>()?),
    };
    let enumeration_limit = match json.get("enumeration_limit") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`enumeration_limit` must be a non-negative integer")?),
    };
    let algorithm = match json.get("algorithm") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("`algorithm` must be a string")?.parse::<Algorithm>()?),
    };
    let want_cut = match json.get("want_cut") {
        None => None,
        Some(v) => Some(v.as_bool().ok_or("`want_cut` must be a boolean")?),
    };
    let jobs = match json.get("jobs") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`jobs` must be a non-negative integer")?),
    };
    let trace = match json.get("trace") {
        None => None,
        Some(v) => Some(v.as_bool().ok_or("`trace` must be a boolean")?),
    };
    let deadline_ms = match json.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`deadline_ms` must be a non-negative integer")? as u64),
    };
    let cost_budget_us = match json.get("cost_budget_us") {
        None => None,
        Some(v) => {
            Some(v.as_usize().ok_or("`cost_budget_us` must be a non-negative integer")? as u64)
        }
    };
    Ok(QuerySpec {
        pattern,
        bag,
        flow,
        enumeration_limit,
        algorithm,
        want_cut,
        jobs,
        trace,
        deadline_ms,
        cost_budget_us,
    })
}

fn query_spec_json(op: &'static str, query: &QuerySpec, extra: Vec<(&'static str, Json)>) -> Json {
    let mut pairs =
        vec![("op", Json::Str(op.to_string())), ("query", Json::Str(query.pattern.clone()))];
    if query.bag {
        pairs.push(("bag", Json::Bool(true)));
    }
    if let Some(flow) = query.flow {
        pairs.push(("flow", Json::Str(flow.name().to_string())));
    }
    if let Some(limit) = query.enumeration_limit {
        pairs.push(("enumeration_limit", Json::Int(limit as i128)));
    }
    if let Some(algorithm) = query.algorithm {
        pairs.push(("algorithm", Json::Str(algorithm.name().to_string())));
    }
    if let Some(want_cut) = query.want_cut {
        pairs.push(("want_cut", Json::Bool(want_cut)));
    }
    if let Some(jobs) = query.jobs {
        pairs.push(("jobs", Json::Int(jobs as i128)));
    }
    if let Some(trace) = query.trace {
        pairs.push(("trace", Json::Bool(trace)));
    }
    if let Some(deadline_ms) = query.deadline_ms {
        pairs.push(("deadline_ms", Json::Int(deadline_ms as i128)));
    }
    if let Some(cost_budget_us) = query.cost_budget_us {
        pairs.push(("cost_budget_us", Json::Int(cost_budget_us as i128)));
    }
    pairs.extend(extra);
    Json::object(pairs)
}

/// The uniform failure response: `{"ok":false,"error":"…"}`.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::object([("ok", Json::Bool(false)), ("error", Json::Str(message.into()))])
}

/// A failure response with a machine-readable `code` field (store errors:
/// `store_full`, `body_too_large`, `unknown_database`, `unknown_snapshot`,
/// `parse`).
pub fn coded_error_response(message: impl Into<String>, code: &'static str) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
        ("code", Json::Str(code.into())),
    ])
}

/// Renders a resilience value: a JSON integer, or the string `"infinite"`.
pub fn value_json(value: ResilienceValue) -> Json {
    match value {
        ResilienceValue::Infinite => Json::Str("infinite".into()),
        ResilienceValue::Finite(v) => match i128::try_from(v) {
            Ok(i) => Json::Int(i),
            // u128 values beyond i128 cannot be a JSON int in this
            // implementation; fall back to a decimal string.
            Err(_) => Json::Str(v.to_string()),
        },
    }
}

/// Renders one solve outcome (without the `ok` marker, so it can serve both
/// as a full `solve` response body and as a `solve_batch` results entry).
pub fn outcome_json(outcome: &ResilienceOutcome, db: &GraphDb) -> Json {
    let mut pairs = vec![
        ("value", value_json(outcome.value)),
        ("algorithm", Json::Str(outcome.algorithm.name().to_string())),
        ("exact", Json::Bool(outcome.is_exact())),
    ];
    if let Some((lower, upper)) = outcome.bounds {
        pairs.push((
            "bounds",
            Json::Array(vec![
                value_json(ResilienceValue::Finite(lower)),
                value_json(ResilienceValue::Finite(upper)),
            ]),
        ));
    }
    if let Some(cut) = &outcome.contingency_set {
        let facts = cut.iter().map(|&f| Json::Str(db.display_fact(f))).collect();
        pairs.push(("contingency_set", Json::Array(facts)));
    }
    Json::object(pairs)
}

/// Renders one routed solve outcome: the [`outcome_json`] fields plus the
/// routing verdict — `tier` (the complexity tier that answered: `poly`,
/// `exact` or `approx`), `degraded` (`true` when the budget forced a
/// certified fallback below the planned backend) and `route` (the
/// human-readable reason the router picked this tier).
pub fn tiered_outcome_json(tiered: &TieredOutcome, db: &GraphDb) -> Json {
    let mut pairs = match outcome_json(&tiered.outcome, db) {
        Json::Object(pairs) => pairs,
        other => return other,
    };
    pairs.push(("tier".to_string(), Json::Str(tiered.tier.to_string())));
    pairs.push(("degraded".to_string(), Json::Bool(tiered.degraded)));
    pairs.push(("route".to_string(), Json::Str(tiered.reason.clone())));
    Json::Object(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::Prepare { query: QuerySpec::new("ax*b") },
            Request::Prepare {
                query: QuerySpec {
                    pattern: "a|b".into(),
                    bag: true,
                    flow: Some(FlowAlgorithm::PushRelabel),
                    enumeration_limit: Some(12),
                    algorithm: Some(Algorithm::ExactEnumeration),
                    want_cut: Some(false),
                    jobs: Some(2),
                    trace: Some(true),
                    deadline_ms: Some(250),
                    cost_budget_us: Some(4_000),
                },
            },
            // `auto` is a selectable backend: per-request overrides can ask
            // for the measured per-instance choice.
            Request::Prepare {
                query: QuerySpec { flow: Some(FlowAlgorithm::Auto), ..QuerySpec::new("ax*b") },
            },
            Request::Solve { query: QuerySpec::new("ab"), db: "u a v\nv b w\n".into() },
            Request::SolveBatch {
                query: QuerySpec::new("ab"),
                dbs: vec!["u a v\n".into(), "u b v\n".into()],
            },
            Request::DbPut { name: "corpus".into(), db: "u a v\nv b w\n".into() },
            Request::DbPatch { name: "corpus".into(), patch: "+ v b x 3 !\n- u a v\n".into() },
            Request::DbSnapshot {
                name: "corpus".into(),
                snapshot_name: "release".into(),
                at: None,
            },
            Request::DbSnapshot {
                name: "corpus".into(),
                snapshot_name: "v2".into(),
                at: Some(SnapshotSel::Offset(4)),
            },
            Request::DbSolve {
                query: QuerySpec::new("ab"),
                name: "corpus".into(),
                snapshot: None,
                snapshots: None,
            },
            Request::DbSolve {
                query: QuerySpec::new("ab"),
                name: "corpus".into(),
                snapshot: Some(SnapshotSel::Named("release".into())),
                snapshots: None,
            },
            Request::DbSolve {
                query: QuerySpec { bag: true, ..QuerySpec::new("ax*b") },
                name: "corpus".into(),
                snapshot: None,
                snapshots: Some(vec![SnapshotSel::Offset(2), SnapshotSel::Named("release".into())]),
            },
            Request::DbList,
            Request::DbDrop { name: "corpus".into() },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, fragment) in [
            ("nonsense", "invalid JSON"),
            ("{}", "`op`"),
            (r#"{"op":"fly"}"#, "unknown op `fly`"),
            (r#"{"op":"prepare"}"#, "missing string `query`"),
            (r#"{"op":"solve","query":"ab"}"#, "`db`"),
            (r#"{"op":"solve_batch","query":"ab"}"#, "`dbs`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[1]}"#, "must be strings"),
            (r#"{"op":"prepare","query":"ab","flow":"bogus"}"#, "unknown flow algorithm"),
            (r#"{"op":"prepare","query":"ab","algorithm":"bogus"}"#, "unknown algorithm"),
            (r#"{"op":"prepare","query":"ab","enumeration_limit":-3}"#, "non-negative"),
            (r#"{"op":"prepare","query":"ab","bag":"yes"}"#, "boolean"),
            (r#"{"op":"solve","query":"ab","db":"u a v\n","want_cut":1}"#, "`want_cut`"),
            (r#"{"op":"solve","query":"ab","db":"u a v\n","trace":"yes"}"#, "`trace`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[],"jobs":-2}"#, "`jobs`"),
            (r#"{"op":"solve_batch","query":"ab","dbs":[],"jobs":true}"#, "`jobs`"),
            (r#"{"op":"solve","query":"ab","db":"u a v\n","deadline_ms":-1}"#, "`deadline_ms`"),
            (r#"{"op":"solve","query":"ab","db":"u a v\n","deadline_ms":"1s"}"#, "`deadline_ms`"),
            (
                r#"{"op":"solve","query":"ab","db":"u a v\n","cost_budget_us":false}"#,
                "`cost_budget_us`",
            ),
            (r#"{"op":"db_put","db":"u a v\n"}"#, "`db_put` requires a string `name`"),
            (r#"{"op":"db_put","name":"g"}"#, "`db_put` requires a string `db`"),
            (r#"{"op":"db_patch","name":"g"}"#, "`db_patch` requires a string `patch`"),
            (r#"{"op":"db_snapshot","name":"g"}"#, "`snapshot_name`"),
            (r#"{"op":"db_snapshot","name":"g","snapshot_name":"s","at":true}"#, "`at`"),
            (r#"{"op":"db_solve","name":"g"}"#, "missing string `query`"),
            (r#"{"op":"db_solve","query":"ab"}"#, "`db_solve` requires a string `name`"),
            (r#"{"op":"db_solve","query":"ab","name":"g","snapshot":1.5}"#, "`snapshot`"),
            (r#"{"op":"db_solve","query":"ab","name":"g","snapshots":3}"#, "array"),
            (
                r#"{"op":"db_solve","query":"ab","name":"g","snapshot":1,"snapshots":[2]}"#,
                "not both",
            ),
            (r#"{"op":"db_drop"}"#, "`db_drop` requires a string `name`"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(fragment), "{line}: {err}");
        }
    }

    #[test]
    fn value_rendering() {
        assert_eq!(value_json(ResilienceValue::Finite(3)).to_string(), "3");
        assert_eq!(value_json(ResilienceValue::Infinite).to_string(), "\"infinite\"");
        assert_eq!(
            value_json(ResilienceValue::Finite(u128::MAX)).to_string(),
            format!("\"{}\"", u128::MAX)
        );
    }
}
