//! A minimal blocking client for the NDJSON protocol.
//!
//! One [`Client`] wraps one TCP connection; requests and responses alternate
//! line by line. Used by `rpq-cli client`, the integration tests and the
//! `server_throughput` benchmark.

use crate::json::Json;
use crate::protocol::Request;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Requests and responses are single short lines; Nagle's algorithm
        // interacting with delayed ACKs would add ~40 ms per round trip on a
        // persistent connection.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Bounds how long [`Client::request`] waits for a response line
    /// (`None` blocks forever). Tests use this to turn a hung server into a
    /// failing assertion instead of a stuck test run.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one raw request line and returns the raw response line.
    pub fn request_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let read = self.reader.read_line(&mut response)?;
        if read == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Sends a typed request and parses the JSON response.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        let line = self.request_line(&request.to_json().to_string())?;
        Json::parse(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response line: {e}"))
        })
    }
}
