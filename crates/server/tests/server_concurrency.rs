//! Concurrency tests for the multiplexed connection scheduler.
//!
//! The original server pinned one worker thread per connection for the
//! connection's whole lifetime, so `threads` idle persistent connections
//! starved every later client indefinitely. The scheduler now parks idle
//! connections in a poller and hands workers *one request at a time*; these
//! tests pin down the three properties that redesign bought:
//!
//! 1. **No starvation**: a client connecting after `threads + 4` idle
//!    persistent connections is still served (the regression test for the
//!    original bug).
//! 2. **Fair pipelining**: many requests buffered on one connection are
//!    answered in order without monopolizing the pool.
//! 3. **Correctness under load**: many clients × persistent connections ×
//!    concurrent `solve_batch` agree with the direct engine, while the
//!    sharded cache's stats stay monotone and bounded.

use rpq_automata::Word;
use rpq_graphdb::generate::word_path;
use rpq_graphdb::text;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use rpq_server::{Client, Json, QuerySpec, Request, Server, ServerConfig};
use std::time::Duration;

/// Generous bound on any single round trip: the server answers idle-free
/// requests in microseconds, so a timeout only fires when the scheduler is
/// actually starved (which is exactly what the regression test detects).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(20);

fn connect(addr: std::net::SocketAddr) -> Client {
    let client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(RESPONSE_TIMEOUT)).expect("set timeout");
    client
}

#[test]
fn idle_persistent_connections_do_not_starve_new_clients() {
    let threads = 2;
    let server =
        Server::bind("127.0.0.1:0", ServerConfig { threads, ..ServerConfig::default() }).unwrap();
    let running = server.spawn().unwrap();
    let addr = running.addr;

    // `threads + 4` persistent connections, each warmed with one request so
    // the server has demonstrably adopted them — then left idle and open.
    let mut idle: Vec<Client> = (0..threads + 4)
        .map(|_| {
            let mut client = connect(addr);
            let response = client.request(&Request::Stats).expect("warm-up request");
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
            client
        })
        .collect();

    // The regression: with one-connection-per-worker scheduling, both workers
    // are now pinned to idle connections and this request never gets served.
    let mut fresh = connect(addr);
    let response = fresh
        .request(&Request::Solve {
            query: QuerySpec::new("ax*b"),
            db: "s a u\nu x v\nv b t\n".to_string(),
        })
        .expect("a new client must be served despite threads+4 idle connections");
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("value"), Some(&Json::Int(1)));

    // The idle connections are still alive — parking did not drop them.
    for (i, client) in idle.iter_mut().enumerate() {
        let response = client.request(&Request::Stats).expect("idle connection still serviceable");
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "idle connection {i}");
    }

    // Keep-alive metrics: all connections are open, each served ≥ 1 request.
    let stats = fresh.request(&Request::Stats).unwrap();
    let connections = stats.get("connections").unwrap();
    let open = connections.get("open").unwrap().as_int().unwrap();
    assert!(open >= (threads + 5) as i128, "{stats}");
    assert!(
        connections.get("accepted").unwrap().as_int().unwrap() >= open,
        "accepted is a monotone total: {stats}"
    );
    assert!(
        connections.get("requests").unwrap().as_int().unwrap() >= (2 * (threads + 4) + 2) as i128,
        "{stats}"
    );
    assert!(connections.get("max_requests").unwrap().as_int().unwrap() >= 2, "{stats}");

    fresh.request(&Request::Shutdown).unwrap();
    running.join().unwrap();
}

#[test]
fn pipelined_requests_on_one_connection_are_answered_in_order() {
    use std::io::{BufRead, BufReader, Write};
    let server =
        Server::bind("127.0.0.1:0", ServerConfig { threads: 3, ..ServerConfig::default() })
            .unwrap();
    let running = server.spawn().unwrap();

    let mut stream = std::net::TcpStream::connect(running.addr).unwrap();
    stream.set_read_timeout(Some(RESPONSE_TIMEOUT)).unwrap();
    // 16 requests written back to back before reading anything: the poller
    // must slice the buffer into lines and re-queue the connection after
    // each response, preserving order.
    let words = ["ab", "axb", "axxb", "ba"];
    let mut pipelined = String::new();
    for i in 0..16 {
        let db = text::serialize(&word_path(&Word::from_str_word(words[i % words.len()])));
        pipelined
            .push_str(&Request::Solve { query: QuerySpec::new("ax*b"), db }.to_json().to_string());
        pipelined.push('\n');
    }
    stream.write_all(pipelined.as_bytes()).unwrap();

    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..16 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("pipelined response");
        let response = Json::parse(line.trim()).unwrap();
        let db = word_path(&Word::from_str_word(words[i % words.len()]));
        let expected = prepared.solve(&db).unwrap().value.finite().unwrap() as i128;
        assert_eq!(response.get("value"), Some(&Json::Int(expected)), "response {i}");
    }

    let mut closer = connect(running.addr);
    // One connection issued 16 requests: the keep-alive maximum saw it.
    let stats = closer.request(&Request::Stats).unwrap();
    let max = stats.get("connections").unwrap().get("max_requests").unwrap();
    assert!(max.as_int().unwrap() >= 16, "{stats}");
    closer.request(&Request::Shutdown).unwrap();
    running.join().unwrap();
}

/// The stress corpus: word paths for `ax*b` with known resilience values.
fn corpus() -> Vec<String> {
    let mut dbs = Vec::new();
    for k in 0..12 {
        dbs.push(text::serialize(&word_path(&Word::from_str_word(&format!(
            "a{}b",
            "x".repeat(k)
        )))));
    }
    for word in ["ba", "ax", "xb", "axxa"] {
        dbs.push(text::serialize(&word_path(&Word::from_str_word(word))));
    }
    dbs
}

#[test]
fn stress_many_clients_with_batches_agree_with_the_engine_and_stats_stay_monotone() {
    let dbs = corpus();
    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let expected: Vec<Json> = dbs
        .iter()
        .map(|t| {
            let db = text::parse(t).unwrap();
            Json::Int(prepared.solve(&db).unwrap().value.finite().unwrap() as i128)
        })
        .collect();

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { threads: 3, cache_capacity: 64, ..ServerConfig::default() },
    )
    .unwrap();
    let running = server.spawn().unwrap();
    let addr = running.addr;

    // 8 clients × 4 rounds of parallel `solve_batch` over one persistent
    // connection each, under several equivalent spellings (all one cache
    // entry) plus a second genuine language (a second stripe).
    let spellings = ["ax*b", "a(x)*b", "(a)x*b", "ax*b|axx*b"];
    let workers: Vec<_> = (0..8)
        .map(|c| {
            let dbs = dbs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = connect(addr);
                for round in 0..4 {
                    let pattern = spellings[(c + round) % spellings.len()];
                    let response = client
                        .request(&Request::SolveBatch {
                            query: QuerySpec { jobs: Some(2), ..QuerySpec::new(pattern) },
                            dbs: dbs.clone(),
                        })
                        .expect("batch response");
                    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
                    let values: Vec<Json> = response
                        .get("results")
                        .unwrap()
                        .as_array()
                        .unwrap()
                        .iter()
                        .map(|r| r.get("value").unwrap().clone())
                        .collect();
                    assert_eq!(values, expected, "client {c} round {round} ({pattern})");
                    // Interleave a second language so several stripes are hot.
                    let response = client
                        .request(&Request::Prepare { query: QuerySpec::new("ab|bc") })
                        .expect("prepare response");
                    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
                }
            })
        })
        .collect();

    // While the fleet hammers the server, watch the cache stats over a
    // separate persistent connection: hits+misses never decreases, entries
    // never exceed the capacity, and the error counter stays at zero.
    let mut observer = connect(addr);
    let mut last_lookups: i128 = -1;
    let mut last_by_verb: i128 = -1;
    while workers.iter().any(|w| !w.is_finished()) {
        let stats = observer.request(&Request::Stats).expect("stats under load");
        assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(stats.get("errors"), Some(&Json::Int(0)), "{stats}");
        let cache = stats.get("cache").unwrap();
        let lookups = cache.get("hits").unwrap().as_int().unwrap()
            + cache.get("misses").unwrap().as_int().unwrap();
        assert!(lookups >= last_lookups, "cache lookups must be monotone: {stats}");
        last_lookups = lookups;
        let entries = cache.get("entries").unwrap().as_int().unwrap();
        let capacity = cache.get("capacity").unwrap().as_int().unwrap();
        assert!(entries <= capacity, "{stats}");
        // Per-verb counters never decrease and never exceed the total, even
        // while 8 clients hammer the counters from worker threads.
        let by_verb = stats.get("requests_by_verb").unwrap();
        let batches = by_verb.get("solve_batch").unwrap().as_int().unwrap();
        let prepares = by_verb.get("prepare").unwrap().as_int().unwrap();
        assert!(batches >= last_by_verb, "per-verb counts must be monotone: {stats}");
        last_by_verb = batches;
        assert!(
            batches + prepares <= stats.get("requests").unwrap().as_int().unwrap(),
            "verb totals cannot exceed the request total: {stats}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    for worker in workers {
        worker.join().expect("client thread");
    }

    // Final agreement on the cache shape: the four spellings canonicalize to
    // one language; `ab|bc` is the second entry. Clients racing on a cold
    // language may each record a miss (the first insert wins), but every
    // post-warm-up lookup hits: 64 lookups total, at most 16 cold ones.
    let stats = observer.request(&Request::Stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("entries"), Some(&Json::Int(2)), "{stats}");
    let misses = cache.get("misses").unwrap().as_int().unwrap();
    let hits = cache.get("hits").unwrap().as_int().unwrap();
    assert!((2..=16).contains(&misses), "{stats}");
    assert_eq!(hits + misses, 64, "8 clients × 4 rounds × 2 lookups: {stats}");
    assert!(cache.get("shards").unwrap().as_int().unwrap() > 1, "{stats}");
    assert_eq!(stats.get("errors"), Some(&Json::Int(0)), "{stats}");
    // Exactly 8 clients × 4 rounds of `solve_batch` (and as many prepares)
    // were served, and the per-verb counters saw every one — no torn or
    // lost increments under the concurrent load.
    let by_verb = stats.get("requests_by_verb").unwrap();
    assert_eq!(by_verb.get("solve_batch"), Some(&Json::Int(32)), "{stats}");
    assert_eq!(by_verb.get("prepare"), Some(&Json::Int(32)), "{stats}");

    // The latency histograms agree: the `solve_batch` histogram recorded
    // exactly one observation per batch served, and the whole exposition
    // parses as Prometheus text (headers + `name[{labels}] value` samples).
    let metrics = observer.request(&Request::Metrics).expect("metrics response");
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    let text = metrics.get("metrics").and_then(Json::as_str).unwrap();
    let mut batch_count: Option<u64> = None;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            assert!(
                comment.starts_with("HELP ") || comment.starts_with("TYPE "),
                "unexpected comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample lines carry a value");
        assert!(value.parse::<u64>().is_ok(), "non-numeric sample value: {line}");
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !name.starts_with(|c: char| c.is_ascii_digit()),
            "invalid metric name: {line}"
        );
        if name_end < series.len() {
            assert!(series.ends_with('}'), "unterminated label list: {line}");
        }
        if series.starts_with("rpq_solve_latency_us_count{verb=\"solve_batch\"") {
            batch_count = Some(value.parse().unwrap());
        }
    }
    assert_eq!(batch_count, Some(32), "histogram count must equal batches served");

    observer.request(&Request::Shutdown).unwrap();
    running.join().unwrap();
}
