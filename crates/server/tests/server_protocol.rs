//! End-to-end protocol test: a real TCP server on a loopback port, several
//! concurrent client threads, and agreement with direct `Engine` results.
//!
//! This is the acceptance scenario of the server subsystem: a 4-thread
//! `solve_batch` run over 32 databases must return exactly the values the
//! engine computes sequentially, and preparing the same language under
//! different regex spellings must be answered from the cache.

use rpq_automata::Word;
use rpq_graphdb::generate::word_path;
use rpq_graphdb::text;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use rpq_server::{Client, Json, QuerySpec, Request, Server, ServerConfig};

/// 32 small databases exercising the `ax*b` local-language plan: paths
/// labeled `a x^k b` (resilience 1), plus some negatives (no match,
/// resilience 0) and a branching database with two disjoint matches.
fn corpus() -> Vec<String> {
    let mut dbs = Vec::new();
    for k in 0..20 {
        let word = format!("a{}b", "x".repeat(k));
        dbs.push(text::serialize(&word_path(&Word::from_str_word(&word))));
    }
    for word in ["ba", "ax", "xb", "aa", "bb", "axxa"] {
        dbs.push(text::serialize(&word_path(&Word::from_str_word(word))));
    }
    for k in 0..6 {
        // Two node-disjoint matches (the original path plus a renamed copy):
        // resilience 2.
        let left =
            text::serialize(&word_path(&Word::from_str_word(&format!("a{}b", "x".repeat(k)))));
        let mut combined = left.clone();
        for line in left.lines() {
            let mut parts: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            parts[0] = format!("c_{}", parts[0]);
            parts[2] = format!("c_{}", parts[2]);
            combined.push_str(&parts.join(" "));
            combined.push('\n');
        }
        dbs.push(combined);
    }
    assert_eq!(dbs.len(), 32);
    dbs
}

fn expected_values(pattern: &str, dbs: &[String]) -> Vec<Json> {
    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
    dbs.iter()
        .map(|db_text| {
            let db = text::parse(db_text).unwrap();
            let outcome = prepared.solve(&db).unwrap();
            match outcome.value.finite() {
                Some(v) => Json::Int(v as i128),
                None => Json::Str("infinite".into()),
            }
        })
        .collect()
}

#[test]
fn concurrent_solve_batch_agrees_with_the_direct_engine() {
    let dbs = corpus();
    let expected = expected_values("ax*b", &dbs);
    // Sanity: the corpus is not all-zeros.
    assert!(expected.contains(&Json::Int(0)));
    assert!(expected.contains(&Json::Int(1)));
    assert!(expected.contains(&Json::Int(2)));

    let server =
        Server::bind("127.0.0.1:0", ServerConfig { threads: 4, ..ServerConfig::default() })
            .unwrap();
    let running = server.spawn().unwrap();
    let addr = running.addr;

    // Warm the cache once so every spelling below is a guaranteed hit.
    let mut warmup = Client::connect(addr).unwrap();
    let response = warmup.request(&Request::Prepare { query: QuerySpec::new("ax*b") }).unwrap();
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("cached"), Some(&Json::Bool(false)));
    let fingerprint = response.get("fingerprint").unwrap().clone();

    // Four client threads, each using a different spelling of the same
    // language, each solving the whole 32-database batch.
    let spellings = ["ax*b", "a(x)*b", "(a)x*b", "ax*b|axx*b"];
    let handles: Vec<_> = spellings
        .iter()
        .map(|&pattern| {
            let dbs = dbs.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let response = client
                    .request(&Request::SolveBatch {
                        query: QuerySpec::new(pattern),
                        dbs: dbs.clone(),
                    })
                    .unwrap();
                assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{pattern}");
                assert_eq!(
                    response.get("cached"),
                    Some(&Json::Bool(true)),
                    "equivalent spelling `{pattern}` must hit the cache"
                );
                response
                    .get("results")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|r| r.get("value").unwrap().clone())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap(), expected);
    }

    // Different spellings share the fingerprint too.
    let response = warmup.request(&Request::Prepare { query: QuerySpec::new("a(x)*b") }).unwrap();
    assert_eq!(response.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(response.get("fingerprint"), Some(&fingerprint));

    // Stats: one miss (the warm-up), at least 5 hits (4 batches + reprepare),
    // and every request counted.
    let stats = warmup.request(&Request::Stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses"), Some(&Json::Int(1)));
    assert!(cache.get("hits").unwrap().as_int().unwrap() >= 5, "{stats}");
    assert_eq!(cache.get("entries"), Some(&Json::Int(1)));
    assert!(stats.get("requests").unwrap().as_int().unwrap() >= 7);

    // Clean shutdown: acknowledged, then the server thread exits.
    let bye = warmup.request(&Request::Shutdown).unwrap();
    assert_eq!(bye.get("ok"), Some(&Json::Bool(true)));
    running.join().unwrap();
}

#[test]
fn want_cut_variants_share_one_cache_entry_and_differ_only_in_the_witness() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let running = server.spawn().unwrap();
    let mut client = Client::connect(running.addr).unwrap();

    // A one-dangling query (witnesses come from the Proposition 7.9 cut
    // mapping) over a database where the optimal cut is the shared b-fact.
    let db = "1 a 2\n2 b 3\n3 c 4\n3 e 5\n".to_string();
    let with_cut = client
        .request(&Request::Solve { query: QuerySpec::new("abc|be"), db: db.clone() })
        .unwrap();
    assert_eq!(with_cut.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(with_cut.get("algorithm").and_then(Json::as_str), Some("one-dangling"));
    assert_eq!(
        with_cut.get("contingency_set").unwrap().as_array().unwrap(),
        &vec![Json::Str("2 -b-> 3".into())]
    );

    // The value-only variant of the same language: no witness, same value,
    // answered from the same cache entry (want_cut is not part of the key).
    let value_only = client
        .request(&Request::Solve {
            query: QuerySpec { want_cut: Some(false), ..QuerySpec::new("abc|be") },
            db,
        })
        .unwrap();
    assert_eq!(value_only.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(value_only.get("value"), with_cut.get("value"));
    assert!(value_only.get("contingency_set").is_none());
    assert_eq!(value_only.get("cached"), Some(&Json::Bool(true)));

    let stats = client.request(&Request::Stats).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("entries"), Some(&Json::Int(1)), "one entry for both variants");
    assert_eq!(cache.get("misses"), Some(&Json::Int(1)));

    client.request(&Request::Shutdown).unwrap();
    running.join().unwrap();
}

#[test]
fn newline_less_shutdown_at_eof_stops_the_server() {
    use std::io::{Read, Write};
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let running = server.spawn().unwrap();
    let mut stream = std::net::TcpStream::connect(running.addr).unwrap();
    // No trailing newline; the write half-close makes the request visible
    // only at EOF. The shutdown must still be honored.
    stream.write_all(b"{\"op\":\"shutdown\"}").unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.contains("\"ok\":true"), "{response}");
    running.join().unwrap();
}

#[test]
fn solve_over_tcp_matches_solve_via_pipe_mode() {
    let dbs = corpus();
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let running = server.spawn().unwrap();

    let mut client = Client::connect(running.addr).unwrap();
    let mut tcp_values = Vec::new();
    for db in &dbs {
        let response = client
            .request(&Request::Solve { query: QuerySpec::new("ax*b"), db: db.clone() })
            .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        tcp_values.push(response.get("value").unwrap().clone());
    }

    // The same workload through the stdio pipe front end.
    let state = rpq_server::ServerState::new(ServerConfig::default());
    let mut input = String::new();
    for db in &dbs {
        input.push_str(
            &Request::Solve { query: QuerySpec::new("ax*b"), db: db.clone() }.to_json().to_string(),
        );
        input.push('\n');
    }
    let mut output = Vec::new();
    rpq_server::run_pipe(&state, input.as_bytes(), &mut output).unwrap();
    let pipe_values: Vec<Json> = std::str::from_utf8(&output)
        .unwrap()
        .trim()
        .lines()
        .map(|line| Json::parse(line).unwrap().get("value").unwrap().clone())
        .collect();
    assert_eq!(tcp_values, pipe_values);

    client.request(&Request::Shutdown).unwrap();
    running.join().unwrap();
}
