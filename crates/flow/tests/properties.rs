//! Property-based tests for the flow substrate: on random small networks, the
//! computed minimum cut matches an exhaustive search, the extracted cut
//! disconnects the network, and its cost equals the max-flow value.

use proptest::prelude::*;
use rpq_flow::{min_cut, Capacity, EdgeId, FlowNetwork, VertexId};
use std::collections::BTreeSet;

/// Strategy for a small random network: up to 6 vertices and 10 edges, with a
/// mix of finite and infinite capacities.
fn small_network() -> impl Strategy<Value = FlowNetwork> {
    let edge = (0u32..6, 0u32..6, prop_oneof![(1u64..8).prop_map(Some), Just(None)]);
    proptest::collection::vec(edge, 0..10).prop_map(|edges| {
        let mut n = FlowNetwork::new();
        n.add_vertices(6);
        n.set_source(VertexId(0));
        n.set_target(VertexId(5));
        for (from, to, cap) in edges {
            if from == to {
                continue;
            }
            let capacity = match cap {
                Some(c) => Capacity::Finite(c as u128),
                None => Capacity::Infinite,
            };
            n.add_edge(VertexId(from), VertexId(to), capacity);
        }
        n
    })
}

fn brute_force_min_cut(network: &FlowNetwork) -> Capacity {
    let m = network.num_edges();
    assert!(m <= 16);
    let mut best = Capacity::Infinite;
    for mask in 0u32..(1 << m) {
        let set: BTreeSet<EdgeId> =
            (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
        if network.is_cut(&set) {
            let cost = network.cost(&set);
            if cost < best {
                best = cost;
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn min_cut_matches_brute_force(network in small_network()) {
        let computed = min_cut(&network);
        let brute = brute_force_min_cut(&network);
        // Note: when no finite cut exists the brute force also reports +∞
        // (taking all edges still costs +∞ because an infinite edge must be cut).
        prop_assert_eq!(computed.value, brute);
    }

    #[test]
    fn extracted_cut_is_valid_and_optimal(network in small_network()) {
        let computed = min_cut(&network);
        if let Capacity::Finite(value) = computed.value {
            let set: BTreeSet<EdgeId> = computed.cut_edges.iter().copied().collect();
            prop_assert!(network.is_cut(&set), "the returned edges must disconnect the network");
            prop_assert_eq!(network.cost(&set), Capacity::Finite(value));
        } else {
            prop_assert!(computed.cut_edges.is_empty());
        }
    }

    #[test]
    fn source_side_contains_source_and_not_target_when_cut_is_finite(network in small_network()) {
        let computed = min_cut(&network);
        prop_assert!(computed.source_side.contains(&0));
        if computed.value != Capacity::Infinite {
            prop_assert!(!computed.source_side.contains(&5));
        }
    }
}
