//! Property tests: the three max-flow implementations (Dinic, Edmonds–Karp,
//! push–relabel) agree on the cut value, and every extracted cut is a genuine
//! minimum-cost separator.

use proptest::prelude::*;
use rpq_flow::{min_cut_with, Capacity, EdgeId, FlowAlgorithm, FlowNetwork, VertexId};
use std::collections::BTreeSet;

/// A random small network description: vertex count and edges (from, to, capacity,
/// is_infinite).
fn network_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u64, bool)>)> {
    (2usize..8).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0u64..20, proptest::bool::weighted(0.15));
        (Just(n), proptest::collection::vec(edge, 0..20))
    })
}

fn build(n: usize, edges: &[(usize, usize, u64, bool)]) -> FlowNetwork {
    let mut net = FlowNetwork::new();
    net.add_vertices(n);
    net.set_source(VertexId(0));
    net.set_target(VertexId(n as u32 - 1));
    for &(a, b, c, infinite) in edges {
        if a == b {
            continue; // self-loops are irrelevant for cuts
        }
        let capacity = if infinite { Capacity::Infinite } else { Capacity::Finite(c as u128) };
        net.add_edge(VertexId(a as u32), VertexId(b as u32), capacity);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_solvers_agree_on_the_cut_value((n, edges) in network_strategy()) {
        let net = build(n, &edges);
        let reference = min_cut_with(&net, FlowAlgorithm::Dinic);
        for algorithm in FlowAlgorithm::ALL {
            let cut = min_cut_with(&net, algorithm);
            prop_assert_eq!(cut.value, reference.value, "{:?}", algorithm);
        }
    }

    #[test]
    fn extracted_cuts_are_valid_separators_of_the_right_cost((n, edges) in network_strategy()) {
        let net = build(n, &edges);
        for algorithm in FlowAlgorithm::ALL {
            let cut = min_cut_with(&net, algorithm);
            if cut.value.is_infinite() {
                prop_assert!(cut.cut_edges.is_empty());
                continue;
            }
            let set: BTreeSet<EdgeId> = cut.cut_edges.iter().copied().collect();
            prop_assert!(net.is_cut(&set), "{:?}: returned edges must disconnect", algorithm);
            prop_assert_eq!(net.cost(&set), cut.value, "{:?}", algorithm);
            // The source side always contains the source and never the target
            // (unless the value is infinite, excluded above).
            prop_assert!(cut.source_side.contains(&net.source().index()));
            prop_assert!(!cut.source_side.contains(&net.target().index()));
        }
    }

    #[test]
    fn cut_value_is_minimal_by_brute_force((n, edges) in (2usize..5).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 0u64..6, proptest::bool::weighted(0.1));
        (Just(n), proptest::collection::vec(edge, 0..8))
    })) {
        let net = build(n, &edges);
        let m = net.num_edges();
        let mut best = Capacity::Infinite;
        for mask in 0u32..(1 << m) {
            let set: BTreeSet<EdgeId> =
                (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
            if net.is_cut(&set) {
                best = best.min(net.cost(&set));
            }
        }
        for algorithm in FlowAlgorithm::ALL {
            prop_assert_eq!(min_cut_with(&net, algorithm).value, best, "{:?}", algorithm);
        }
    }
}
