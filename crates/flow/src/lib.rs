//! # `rpq-flow`: flow networks and minimum cuts
//!
//! The tractable resilience algorithms of the paper (Theorem 3.13,
//! Proposition 7.6, Proposition 7.9) all reduce resilience to the **MinCut**
//! problem on a flow network with finite and infinite capacities. This crate
//! provides the substrate:
//!
//! * [`network::FlowNetwork`] — directed networks with a single source and
//!   target and [`network::Capacity`] values that are either finite (`u64`) or
//!   `+∞` (a dedicated variant, so saturation bugs are impossible);
//! * [`dinic`] — Dinic's max-flow algorithm;
//! * [`mincut`] — min-cut values and cut-edge extraction via residual
//!   reachability, with certification that the returned cut is finite and
//!   actually disconnects the network;
//! * [`csr`] + [`scratch`] — the hot-path representation: networks frozen
//!   into contiguous CSR arrays inside a reusable arena, solved over
//!   [`scratch::FlowScratch`] buffers that are reset, never reallocated,
//!   across solves (this is what the resilience engine's batch path uses);
//! * [`auto`] — measured size/density thresholds backing
//!   [`mincut::FlowAlgorithm::Auto`], which picks the winning backend per
//!   instance (Dinic on small networks, push–relabel on large ones).

#![forbid(unsafe_code)]
pub mod auto;
pub mod csr;
pub mod dinic;
pub mod edmonds_karp;
pub mod mincut;
pub mod network;
pub mod push_relabel;
pub mod scratch;

pub use csr::{CsrCut, CsrFlow, CutTimings};
pub use mincut::{min_cut, min_cut_with, FlowAlgorithm, MinCut};
pub use network::{Capacity, EdgeId, FlowNetwork, VertexId};
pub use scratch::FlowScratch;
