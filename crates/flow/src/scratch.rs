//! Reusable solver scratch: every buffer a max-flow computation needs.
//!
//! The per-database half of the resilience reductions solves one min-cut per
//! database, thousands of times over the same prepared query. Allocating the
//! solver state (levels, queues, current-arc pointers, excess/height tables,
//! residual capacities) anew for every solve dominates the constant factor at
//! the sizes the benches exercise. [`FlowScratch`] owns all of it in flat
//! `Vec`s that are **reset, never reallocated**, across solves: each
//! [`crate::csr::CsrFlow::min_cut`] call resizes the buffers up to the
//! instance size (amortized — `Vec::resize` keeps capacity) and reuses the
//! allocations of every previous solve.
//!
//! The scratch is backend-agnostic: Dinic uses `level`/`queue`/`current_arc`/
//! `path`, Edmonds–Karp uses `level`/`queue`/`pred`, push–relabel uses
//! `excess`/`height`/`height_count`/`active`/`in_queue`, and the residual
//! array plus the cut-extraction buffers are shared. One scratch therefore
//! serves [`crate::FlowAlgorithm::Auto`], which may pick a different backend
//! per instance.

use crate::network::EdgeId;
use std::collections::VecDeque;

/// Arc-index sentinel: "no arc" (used by predecessor arrays).
pub(crate) const NO_ARC: u32 = u32::MAX;
/// Level sentinel: "unvisited".
pub(crate) const UNVISITED: u32 = u32::MAX;

/// Reusable buffers for max-flow / min-cut computations over a
/// [`crate::csr::CsrFlow`]. See the module docs for the reuse contract.
#[derive(Debug, Clone, Default)]
pub struct FlowScratch {
    /// Per-arc residual capacity (working copy of the frozen capacities).
    pub(crate) residual: Vec<u128>,
    /// Per-vertex BFS level ([`UNVISITED`] = not reached).
    pub(crate) level: Vec<u32>,
    /// Flat BFS queue (head index kept locally by the solvers).
    pub(crate) queue: Vec<u32>,
    /// Per-vertex current-arc pointer (absolute arc index) for Dinic.
    pub(crate) current_arc: Vec<u32>,
    /// DFS path of arc indices for Dinic's blocking flow.
    pub(crate) path: Vec<u32>,
    /// Per-vertex excess for push–relabel.
    pub(crate) excess: Vec<u128>,
    /// Per-vertex height for push–relabel.
    pub(crate) height: Vec<u32>,
    /// Number of vertices at each height (gap heuristic).
    pub(crate) height_count: Vec<u32>,
    /// Whether a vertex is in the active queue (push–relabel).
    pub(crate) in_queue: Vec<bool>,
    /// FIFO queue of active vertices (push–relabel).
    pub(crate) active: VecDeque<u32>,
    /// Per-vertex predecessor arc for Edmonds–Karp ([`NO_ARC`] = none).
    pub(crate) pred: Vec<u32>,
    /// Source-side reachability in the residual graph (cut extraction).
    pub(crate) reachable: Vec<bool>,
    /// The extracted cut edges (valid until the next solve).
    pub(crate) cut_edges: Vec<EdgeId>,
}

impl FlowScratch {
    /// A fresh scratch with no capacity reserved; the first solve sizes it.
    pub fn new() -> FlowScratch {
        FlowScratch::default()
    }

    /// Prepares the backend-agnostic buffers for an instance with `vertices`
    /// vertices. Buffers that every backend fully re-initializes before use
    /// (`level`, `current_arc`, `pred`) are only grown, not rewritten — the
    /// solvers reset exactly the first `vertices` entries themselves — so a
    /// Dinic solve never pays for push–relabel's state (see
    /// [`FlowScratch::prepare_push_relabel`]) and vice versa. Capacity only
    /// grows. The residual array is loaded separately by the caller
    /// (`clear()` + `extend_from_slice` from the frozen capacities).
    pub(crate) fn prepare(&mut self, vertices: usize) {
        if self.level.len() < vertices {
            self.level.resize(vertices, UNVISITED);
        }
        if self.current_arc.len() < vertices {
            self.current_arc.resize(vertices, 0);
        }
        if self.pred.len() < vertices {
            self.pred.resize(vertices, NO_ARC);
        }
        self.queue.clear();
        self.queue.reserve(vertices);
        self.path.clear();
        // Cut extraction relies on a clean reachability map.
        self.reachable.clear();
        self.reachable.resize(vertices, false);
        self.cut_edges.clear();
    }

    /// Resets the push–relabel-specific per-vertex state (excess, heights,
    /// the gap-heuristic histogram, the FIFO queue). Split out of
    /// [`FlowScratch::prepare`] so only push–relabel solves pay for it.
    pub(crate) fn prepare_push_relabel(&mut self, vertices: usize) {
        self.excess.clear();
        self.excess.resize(vertices, 0);
        self.height.clear();
        self.height.resize(vertices, 0);
        self.height_count.clear();
        self.height_count.resize(2 * vertices + 2, 0);
        self.in_queue.clear();
        self.in_queue.resize(vertices, false);
        self.active.clear();
    }

    /// The cut edges extracted by the most recent
    /// [`crate::csr::CsrFlow::min_cut`] call (empty when the cut is infinite
    /// or the target was already unreachable).
    pub fn cut_edges(&self) -> &[EdgeId] {
        &self.cut_edges
    }

    /// The capacities of every internal buffer, in a fixed order. Two equal
    /// signatures mean no buffer was reallocated in between — the
    /// zero-post-warmup-reallocation contract of scratch reuse is asserted
    /// with exactly this (see the engine's batch tests).
    pub fn capacity_signature(&self) -> [usize; 13] {
        [
            self.residual.capacity(),
            self.level.capacity(),
            self.queue.capacity(),
            self.current_arc.capacity(),
            self.path.capacity(),
            self.excess.capacity(),
            self.height.capacity(),
            self.height_count.capacity(),
            self.in_queue.capacity(),
            self.active.capacity(),
            self.pred.capacity(),
            self.reachable.capacity(),
            self.cut_edges.capacity(),
        ]
    }
}
