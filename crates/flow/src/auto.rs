//! Measured backend auto-selection (`FlowAlgorithm::Auto`).
//!
//! The `flow_ablation` bench (committed as `BENCH_flow_ablation.json`, see
//! EXPERIMENTS.md) measures all three max-flow backends over the CSR path on
//! two network families — sparse layered networks and dense random networks —
//! at several sizes. The measurements show a stable crossover: **Dinic wins
//! on small instances, push–relabel wins on large ones**, and Edmonds–Karp
//! wins nowhere (its `O(VE²)` bound bites early), so `Auto` never selects it.
//!
//! [`select`] encodes that crossover as two thresholds on the instance size
//! `|N| = |V| + |E|` (the size measure used throughout the paper): a sparse
//! threshold, and a lower one for dense instances (average degree ≥
//! [`DENSE_AVG_DEGREE`]) where push–relabel's locality pays off earlier. The
//! thresholds are re-derived whenever `BENCH_flow_ablation.json` is
//! re-recorded; the quick mode of the bench (`FLOW_ABLATION_QUICK=1`, run in
//! CI) asserts that `Auto` still picks the measured winner on both sides of
//! the crossover.

use crate::mincut::FlowAlgorithm;

/// One measured point of the Dinic / push–relabel crossover: median ns per
/// min-cut on the `flow_ablation` families (see `BENCH_flow_ablation.json`).
#[derive(Debug, Clone, Copy)]
pub struct CrossoverPoint {
    /// Network family of the measurement (`"layered"` is sparse, 3 out-arcs
    /// per vertex; `"dense"` has average degree ≥ [`DENSE_AVG_DEGREE`]).
    pub family: &'static str,
    /// Instance size `|N| = |V| + |E|`.
    pub size: usize,
    /// Median ns per min-cut with Dinic over the CSR path.
    pub dinic_ns: u64,
    /// Median ns per min-cut with push–relabel over the CSR path.
    pub push_relabel_ns: u64,
}

/// The measured crossover table backing the thresholds below. Recorded on
/// the hardware documented in EXPERIMENTS.md; values are medians from
/// `BENCH_flow_ablation.json`.
pub const MEASURED_CROSSOVER: &[CrossoverPoint] = &[
    CrossoverPoint { family: "layered", size: 498, dinic_ns: 14_125, push_relabel_ns: 26_692 },
    CrossoverPoint { family: "layered", size: 2_018, dinic_ns: 217_594, push_relabel_ns: 493_195 },
    CrossoverPoint {
        family: "layered",
        size: 8_130,
        dinic_ns: 3_863_387,
        push_relabel_ns: 3_086_753,
    },
    CrossoverPoint { family: "dense", size: 715, dinic_ns: 24_924, push_relabel_ns: 23_500 },
    CrossoverPoint { family: "dense", size: 2_875, dinic_ns: 286_808, push_relabel_ns: 270_082 },
    CrossoverPoint {
        family: "dense",
        size: 11_513,
        dinic_ns: 1_289_625,
        push_relabel_ns: 1_098_802,
    },
];

/// Size `|N| = |V| + |E|` at which `Auto` switches from Dinic to push–relabel
/// on sparse instances. The measured layered family has Dinic ahead at
/// `|N| = 2018` and push–relabel ahead at `|N| = 8130`; the threshold sits
/// between the two measured points.
pub const SPARSE_PUSH_RELABEL_MIN_SIZE: usize = 4096;

/// Average degree (`|E| / |V|`) from which an instance counts as dense.
pub const DENSE_AVG_DEGREE: usize = 8;

/// Size threshold for dense instances: push–relabel already wins at the
/// smallest measured dense point (`|N| = 715`), so the threshold sits below
/// it — dense instances switch to push–relabel much earlier than sparse ones.
pub const DENSE_PUSH_RELABEL_MIN_SIZE: usize = 512;

/// Picks the measured-winner backend for an instance with `num_vertices`
/// vertices and `num_edges` edges. Always returns a concrete backend (never
/// [`FlowAlgorithm::Auto`], never [`FlowAlgorithm::EdmondsKarp`]).
pub fn select(num_vertices: usize, num_edges: usize) -> FlowAlgorithm {
    let size = num_vertices + num_edges;
    let dense = num_edges >= DENSE_AVG_DEGREE * num_vertices.max(1);
    let threshold = if dense { DENSE_PUSH_RELABEL_MIN_SIZE } else { SPARSE_PUSH_RELABEL_MIN_SIZE };
    if size >= threshold {
        FlowAlgorithm::PushRelabel
    } else {
        FlowAlgorithm::Dinic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_concrete_and_matches_the_measured_table() {
        // Every measured point picks the measured winner. The layered family
        // has |E| ≈ 3|V| (below the dense cutoff); the dense family has
        // |E| ≈ 10|V| (above it).
        for point in MEASURED_CROSSOVER {
            let num_vertices =
                if point.family == "layered" { point.size / 4 } else { point.size / 11 };
            let num_edges = point.size - num_vertices;
            let picked = select(num_vertices, num_edges);
            let winner = if point.dinic_ns <= point.push_relabel_ns {
                FlowAlgorithm::Dinic
            } else {
                FlowAlgorithm::PushRelabel
            };
            assert_eq!(picked, winner, "{}, size {}", point.family, point.size);
        }
        for (v, e) in [(0, 0), (10, 30), (1000, 3000), (1000, 20000), (100, 5000)] {
            let picked = select(v, e);
            assert_ne!(picked, FlowAlgorithm::Auto);
            assert_ne!(picked, FlowAlgorithm::EdmondsKarp);
        }
    }

    #[test]
    fn dense_instances_switch_earlier() {
        // Same size, different density: the dense instance can flip to
        // push-relabel while the sparse one stays on Dinic.
        assert_eq!(select(1500, 500), FlowAlgorithm::Dinic); // sparse, |N|=2000
        assert_eq!(select(200, 1800), FlowAlgorithm::PushRelabel); // dense, |N|=2000
    }
}
