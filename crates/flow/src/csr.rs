//! Cache-friendly CSR flow networks solved over reusable scratch buffers.
//!
//! [`crate::network::FlowNetwork`] is the construction-friendly API: an edge
//! list with `Option` source/target, solved by building a fresh residual
//! graph (`Vec<Vec<usize>>` adjacency — one heap allocation per vertex) on
//! every call. That is fine for one-off solves, but the resilience engine
//! solves the *same shape* of network once per database, thousands of times
//! per prepared query, and the per-solve allocation and pointer-chasing cost
//! dominates at the sizes the benches exercise.
//!
//! [`CsrFlow`] is the hot-path representation:
//!
//! * edges are appended into a flat **arena** (`edge_from`/`edge_to`/
//!   `edge_cap` arrays of `u32`/`u128`) that is `clear()`ed — never freed —
//!   between databases;
//! * [`CsrFlow::freeze`] compiles the arena into **CSR** (compressed sparse
//!   row) adjacency by counting sort: `adj_start[v]..adj_start[v+1]` indexes
//!   the contiguous arc slice of vertex `v`, with forward and reverse
//!   residual arcs interleaved in the same arrays and paired through an
//!   explicit `arc_twin` index (the `ai ^ 1` twin trick of the edge-list
//!   solvers does not survive the CSR permutation);
//! * [`CsrFlow::min_cut`] runs Dinic, Edmonds–Karp, or push–relabel over a
//!   caller-provided [`FlowScratch`], whose buffers are reset — never
//!   reallocated — across solves (see [`crate::scratch`]).
//!
//! Infinite capacities use the same certification scheme as the edge-list
//! solvers: they are capped internally at `total_finite_capacity + 1`, so a
//! flow reaching the cap proves that every cut uses an infinite edge.
//! Passing [`FlowAlgorithm::Auto`] selects the backend per instance from the
//! measured size thresholds in [`crate::auto`].

use crate::mincut::FlowAlgorithm;
use crate::network::{Capacity, EdgeId, FlowNetwork, VertexId};
use crate::scratch::{FlowScratch, NO_ARC, UNVISITED};

/// Capacity sentinel inside the arena: `+∞` (finite capacities must be
/// strictly below; the reductions only produce `u64`-sized costs).
const INFINITE: u128 = u128::MAX;
/// `arc_edge` sentinel for reverse (residual-only) arcs.
const NO_EDGE: u32 = u32::MAX;

/// A flow network frozen into contiguous CSR arrays, built once per database
/// inside a reusable arena and solved over a [`FlowScratch`].
///
/// Lifecycle: [`clear`](CsrFlow::clear) → [`add_vertices`](CsrFlow::add_vertices)
/// / [`add_edge`](CsrFlow::add_edge) / [`set_source`](CsrFlow::set_source) /
/// [`set_target`](CsrFlow::set_target) → [`freeze`](CsrFlow::freeze) →
/// [`min_cut`](CsrFlow::min_cut) (any number of times). All buffers keep
/// their allocations across `clear`.
#[derive(Debug, Clone, Default)]
pub struct CsrFlow {
    num_vertices: usize,
    source: u32,
    target: u32,
    // Edge arena (original edge ids are indexes into these).
    edge_from: Vec<u32>,
    edge_to: Vec<u32>,
    edge_cap: Vec<u128>,
    // Frozen CSR residual graph.
    adj_start: Vec<u32>,
    cursor: Vec<u32>,
    arc_head: Vec<u32>,
    arc_twin: Vec<u32>,
    arc_edge: Vec<u32>,
    arc_cap: Vec<u128>,
    /// Edge → forward-arc index of the current freeze ([`NO_ARC`] for
    /// zero-capacity edges, which produce no arcs). Lets the incremental
    /// solver map persistent per-edge flows onto the residual arrays.
    edge_arc: Vec<u32>,
    infinite_cap: u128,
    frozen: bool,
}

/// Per-phase wall-clock timings of a [`CsrFlow::min_cut_timed`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutTimings {
    /// The concrete backend that ran ([`FlowAlgorithm::Auto`] resolved).
    pub backend: FlowAlgorithm,
    /// Residual load + max-flow solve, in µs.
    pub solve_us: u64,
    /// Residual-reachability pass + cut-edge scan, in µs.
    pub extract_us: u64,
}

/// A minimum cut computed by [`CsrFlow::min_cut`]. The cut edges borrow the
/// scratch buffer and stay valid until its next solve.
#[derive(Debug)]
pub struct CsrCut<'a> {
    /// The cost of the cut (`Infinite` when no finite cut exists).
    pub value: Capacity,
    /// A concrete set of edges achieving the cut (arena [`EdgeId`]s). Empty
    /// when the value is infinite.
    pub cut_edges: &'a [EdgeId],
}

impl CsrFlow {
    /// An empty network with no capacity reserved.
    pub fn new() -> CsrFlow {
        CsrFlow { source: NO_ARC, target: NO_ARC, ..CsrFlow::default() }
    }

    /// Resets the network for a new build, keeping every allocation.
    pub fn clear(&mut self) {
        self.num_vertices = 0;
        self.source = NO_ARC;
        self.target = NO_ARC;
        self.edge_from.clear();
        self.edge_to.clear();
        self.edge_cap.clear();
        self.frozen = false;
    }

    /// Adds `n` vertices, returning the identifier of the first one. Adding
    /// vertices to a frozen network unfreezes it (a new
    /// [`freeze`](CsrFlow::freeze) is required before the next solve).
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = VertexId(self.num_vertices as u32);
        self.num_vertices += n;
        self.frozen = false;
        first
    }

    /// Adds one vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        self.add_vertices(1)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arena edges.
    pub fn num_edges(&self) -> usize {
        self.edge_from.len()
    }

    /// Whether the CSR adjacency is current (no mutation since the last
    /// [`freeze`](CsrFlow::freeze)). Incremental callers use this to decide
    /// between a warm resume and a full residual reload.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The size `|N| = |V| + |E|` (the measure used by the auto-selection
    /// thresholds and the `flow_ablation` bench).
    pub fn size(&self) -> usize {
        self.num_vertices + self.edge_from.len()
    }

    /// Declares the source vertex.
    pub fn set_source(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.source = v.0;
    }

    /// Declares the target vertex.
    pub fn set_target(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.target = v.0;
    }

    /// Appends a directed edge to the arena and returns its identifier.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, capacity: Capacity) -> EdgeId {
        assert!(from.index() < self.num_vertices && to.index() < self.num_vertices);
        let cap = match capacity {
            Capacity::Finite(c) => {
                assert!(c < INFINITE, "finite capacity too large");
                c
            }
            Capacity::Infinite => INFINITE,
        };
        let id = EdgeId(self.edge_from.len() as u32);
        self.edge_from.push(from.0);
        self.edge_to.push(to.0);
        self.edge_cap.push(cap);
        self.frozen = false;
        id
    }

    /// Overwrites the capacity of an existing arena edge (the incremental
    /// solver's delete = capacity 0, re-insert = capacity restored). The
    /// network unfreezes: call [`freeze`](CsrFlow::freeze) again before the
    /// next solve — and [`cancel_flow`](CsrFlow::cancel_flow) **before** this
    /// when lowering a capacity below the edge's retained flow, since
    /// cancellation walks the still-frozen adjacency.
    pub fn set_edge_capacity(&mut self, edge: EdgeId, capacity: Capacity) {
        let cap = match capacity {
            Capacity::Finite(c) => {
                assert!(c < INFINITE, "finite capacity too large");
                c
            }
            Capacity::Infinite => INFINITE,
        };
        self.edge_cap[edge.index()] = cap;
        self.frozen = false;
    }

    /// The capacities of every internal buffer, for asserting that reuse
    /// never reallocates (see [`FlowScratch::capacity_signature`]).
    pub fn capacity_signature(&self) -> [usize; 10] {
        [
            self.edge_from.capacity(),
            self.edge_to.capacity(),
            self.edge_cap.capacity(),
            self.adj_start.capacity(),
            self.cursor.capacity(),
            self.arc_head.capacity(),
            self.arc_twin.capacity(),
            self.arc_edge.capacity(),
            self.arc_cap.capacity(),
            self.edge_arc.capacity(),
        ]
    }

    /// The capacity of an arena edge.
    pub fn edge_capacity(&self, id: EdgeId) -> Capacity {
        match self.edge_cap[id.index()] {
            INFINITE => Capacity::Infinite,
            c => Capacity::Finite(c),
        }
    }

    /// Overwrites the capacity of an existing arena edge **without
    /// unfreezing** when the current freeze gave the edge residual arcs: the
    /// forward arc's capacity is rewritten in place and the internal infinity
    /// bound adjusted, so the next solve needs no re-freeze. Lowering a
    /// capacity to zero leaves a zero-capacity arc behind — harmless to the
    /// solvers (no residual) and consistent with the cut contract, which
    /// already includes zero-cost separator edges. The call degrades to
    /// [`set_edge_capacity`](CsrFlow::set_edge_capacity) (unfreeze) when the
    /// edge has no arcs (it was zero-capacity at freeze time) or either
    /// capacity is infinite.
    pub fn patch_edge_capacity(&mut self, edge: EdgeId, capacity: Capacity) {
        let cap = match capacity {
            Capacity::Finite(c) => {
                assert!(c < INFINITE, "finite capacity too large");
                c
            }
            Capacity::Infinite => INFINITE,
        };
        let e = edge.index();
        let old = self.edge_cap[e];
        if old == cap {
            return;
        }
        if self.frozen && cap != INFINITE && old != INFINITE {
            let a = self.edge_arc[e];
            if a != NO_ARC {
                self.edge_cap[e] = cap;
                self.arc_cap[a as usize] = cap;
                self.infinite_cap = self.infinite_cap.saturating_sub(old).saturating_add(cap);
                return;
            }
        }
        self.edge_cap[e] = cap;
        self.frozen = false;
    }

    /// Compiles the arena into CSR residual adjacency (counting sort by arc
    /// tail). Must be called after construction and before
    /// [`min_cut`](CsrFlow::min_cut); adding more edges requires a new
    /// `freeze`. Zero-capacity edges stay in the arena (they participate in
    /// cut extraction) but produce no residual arcs. A no-op on an already
    /// frozen network (every mutation clears the frozen bit).
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        assert!(self.source != NO_ARC, "source vertex not set");
        assert!(self.target != NO_ARC, "target vertex not set");
        assert_ne!(self.source, self.target, "source and target must differ");
        let n = self.num_vertices;

        let mut total_finite: u128 = 0;
        for &c in &self.edge_cap {
            if c != INFINITE {
                total_finite = total_finite.saturating_add(c);
            }
        }
        self.infinite_cap = total_finite.saturating_add(1);

        self.adj_start.clear();
        self.adj_start.resize(n + 1, 0);
        let mut num_arcs = 0usize;
        for i in 0..self.edge_from.len() {
            if self.edge_cap[i] == 0 {
                continue;
            }
            self.adj_start[self.edge_from[i] as usize + 1] += 1;
            self.adj_start[self.edge_to[i] as usize + 1] += 1;
            num_arcs += 2;
        }
        for v in 0..n {
            self.adj_start[v + 1] += self.adj_start[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.adj_start[..n]);
        self.arc_head.clear();
        self.arc_head.resize(num_arcs, 0);
        self.arc_twin.clear();
        self.arc_twin.resize(num_arcs, 0);
        self.arc_edge.clear();
        self.arc_edge.resize(num_arcs, NO_EDGE);
        self.arc_cap.clear();
        self.arc_cap.resize(num_arcs, 0);
        self.edge_arc.clear();
        self.edge_arc.resize(self.edge_from.len(), NO_ARC);

        for i in 0..self.edge_from.len() {
            let cap = self.edge_cap[i];
            if cap == 0 {
                continue;
            }
            let from = self.edge_from[i] as usize;
            let to = self.edge_to[i] as usize;
            let forward = self.cursor[from] as usize;
            self.cursor[from] += 1;
            let reverse = self.cursor[to] as usize;
            self.cursor[to] += 1;
            self.arc_head[forward] = to as u32;
            self.arc_cap[forward] = if cap == INFINITE { self.infinite_cap } else { cap };
            self.arc_edge[forward] = i as u32;
            self.arc_twin[forward] = reverse as u32;
            self.arc_head[reverse] = from as u32;
            self.arc_cap[reverse] = 0;
            self.arc_edge[reverse] = NO_EDGE;
            self.arc_twin[reverse] = forward as u32;
            self.edge_arc[i] = forward as u32;
        }
        self.frozen = true;
    }

    /// Copies a [`FlowNetwork`] into a fresh, frozen `CsrFlow` (convenience
    /// for cross-checking and benches; the engine builds arenas directly).
    pub fn from_network(network: &FlowNetwork) -> CsrFlow {
        let mut csr = CsrFlow::new();
        csr.add_vertices(network.num_vertices());
        csr.set_source(network.source());
        csr.set_target(network.target());
        for (_, e) in network.edges() {
            csr.add_edge(e.from, e.to, e.capacity);
        }
        csr.freeze();
        csr
    }

    /// The contiguous arc-index range of vertex `v`.
    #[inline]
    fn arc_range(&self, v: usize) -> std::ops::Range<usize> {
        self.adj_start[v] as usize..self.adj_start[v + 1] as usize
    }

    /// Computes a minimum source–target cut with the requested backend
    /// ([`FlowAlgorithm::Auto`] resolves per instance from the measured
    /// thresholds in [`crate::auto`]). All solver state lives in `scratch`,
    /// which is resized (growing only) and reused across calls.
    pub fn min_cut<'s>(
        &self,
        algorithm: FlowAlgorithm,
        scratch: &'s mut FlowScratch,
    ) -> CsrCut<'s> {
        assert!(self.frozen, "CsrFlow::min_cut requires freeze()");
        let algorithm = algorithm.resolve(self.num_vertices, self.num_edges());
        scratch.prepare(self.num_vertices);
        scratch.residual.clear();
        scratch.residual.extend_from_slice(&self.arc_cap);

        let flow = match algorithm {
            FlowAlgorithm::Dinic => dinic(self, scratch, None),
            FlowAlgorithm::EdmondsKarp => edmonds_karp(self, scratch, None),
            FlowAlgorithm::PushRelabel => {
                scratch.prepare_push_relabel(self.num_vertices);
                push_relabel(self, scratch)
            }
            // lint: allow(panic-freedom, resolve never returns Auto)
            FlowAlgorithm::Auto => unreachable!("Auto resolves to a concrete backend"),
        };
        self.extract_cut(scratch, flow, self.infinite_cap)
    }

    /// [`CsrFlow::min_cut`] with per-phase wall-clock timings: the resolved
    /// concrete backend, the µs spent in the max-flow solve (including the
    /// residual load), and the µs spent extracting the cut. A separate entry
    /// point — rather than an always-on measurement inside `min_cut` — so
    /// untraced solves pay no clock reads at all.
    pub fn min_cut_timed<'s>(
        &self,
        algorithm: FlowAlgorithm,
        scratch: &'s mut FlowScratch,
    ) -> (CsrCut<'s>, CutTimings) {
        assert!(self.frozen, "CsrFlow::min_cut_timed requires freeze()");
        let backend = algorithm.resolve(self.num_vertices, self.num_edges());
        let solve_start = std::time::Instant::now();
        scratch.prepare(self.num_vertices);
        scratch.residual.clear();
        scratch.residual.extend_from_slice(&self.arc_cap);
        let flow = match backend {
            FlowAlgorithm::Dinic => dinic(self, scratch, None),
            FlowAlgorithm::EdmondsKarp => edmonds_karp(self, scratch, None),
            FlowAlgorithm::PushRelabel => {
                scratch.prepare_push_relabel(self.num_vertices);
                push_relabel(self, scratch)
            }
            // lint: allow(panic-freedom, resolve never returns Auto)
            FlowAlgorithm::Auto => unreachable!("Auto resolves to a concrete backend"),
        };
        let solve_us = solve_start.elapsed().as_micros() as u64;
        let extract_start = std::time::Instant::now();
        let cut = self.extract_cut(scratch, flow, self.infinite_cap);
        let extract_us = extract_start.elapsed().as_micros() as u64;
        (cut, CutTimings { backend, solve_us, extract_us })
    }

    /// Verifies that a persistent flow assignment (as maintained by
    /// [`min_cut_resume`](CsrFlow::min_cut_resume) callers) is a feasible
    /// flow of value `total_flow` on the frozen network: every edge carries
    /// at most its capacity (`Infinite` maps to the freeze's finite proxy),
    /// tombstoned zero-capacity edges carry nothing, interior vertices
    /// conserve flow, and the source's net outflow — which must equal the
    /// target's net inflow — is exactly `total_flow`.
    ///
    /// Returns a description of the first violated invariant. The walk is
    /// `O(V + E)`; it is meant for `debug_assert!` hooks and churn tests,
    /// not hot paths.
    pub fn check_flow_consistency(
        &self,
        edge_flows: &[u128],
        total_flow: u128,
    ) -> Result<(), String> {
        if !self.frozen {
            return Err("network is not frozen".to_string());
        }
        if edge_flows.len() != self.edge_from.len() {
            return Err(format!(
                "{} retained flows for {} arena edges",
                edge_flows.len(),
                self.edge_from.len()
            ));
        }
        let mut inflow = vec![0u128; self.num_vertices];
        let mut outflow = vec![0u128; self.num_vertices];
        for (e, &flow) in edge_flows.iter().enumerate() {
            if self.edge_arc[e] == NO_ARC {
                if flow != 0 {
                    return Err(format!("zero-capacity edge {e} carries flow {flow}"));
                }
                continue;
            }
            let cap =
                if self.edge_cap[e] == INFINITE { self.infinite_cap } else { self.edge_cap[e] };
            if flow > cap {
                return Err(format!("edge {e} carries flow {flow} above its capacity {cap}"));
            }
            let (from, to) = (self.edge_from[e] as usize, self.edge_to[e] as usize);
            outflow[from] = outflow[from].saturating_add(flow);
            inflow[to] = inflow[to].saturating_add(flow);
        }
        let (source, target) = (self.source as usize, self.target as usize);
        for v in 0..self.num_vertices {
            if v == source || v == target {
                continue;
            }
            if inflow[v] != outflow[v] {
                return Err(format!("vertex {v} receives {} but sends {}", inflow[v], outflow[v]));
            }
        }
        let source_net = outflow[source].checked_sub(inflow[source]);
        let target_net = inflow[target].checked_sub(outflow[target]);
        match (source_net, target_net) {
            (Some(s), Some(t)) if s == total_flow && t == total_flow => Ok(()),
            _ => Err(format!(
                "net source outflow {:?} / target inflow {:?} do not match the \
                 recorded total flow {total_flow}",
                source_net, target_net
            )),
        }
    }

    /// Computes a minimum cut **warm-started** from a retained feasible flow:
    /// `edge_flows[e]` is the flow the previous solve left on arena edge `e`
    /// (0 for freshly added edges) and `total_flow` its value. The residuals
    /// are loaded as `capacity − flow` instead of from zero, the solver only
    /// augments the *difference* to the new maximum, and both outputs are
    /// updated in place for the next resume.
    ///
    /// Infinite-capacity certification is the caller's: the value is reported
    /// `Infinite` when the total flow reaches `infinite_threshold` (the
    /// internal `total_finite + 1` cap recomputed by each freeze cannot serve
    /// here, since it may shrink below a retained flow after deletions — the
    /// incremental solver instead encodes structural edges as a fixed huge
    /// finite capacity and passes that).
    ///
    /// Preflow-push cannot start from a feasible flow, so `PushRelabel` (and
    /// `Auto` resolutions picking it) run Dinic instead.
    ///
    /// When `want_cut` is `false` the residual-reachability pass and cut-edge
    /// scan are skipped — the returned `cut_edges` slice is empty and only
    /// the value (the max flow, `Infinite` past the threshold) is meaningful.
    ///
    /// `dirty` selects how the residual arrays are (re)loaded:
    ///
    /// * `None` — full reload from `edge_flows`, `O(E)`. Always correct.
    /// * `Some(edges)` — **warm resume**: `scratch.residual` is assumed to
    ///   still hold the state this method left on its previous return (same
    ///   scratch, same freeze, untouched by other solves), and only the
    ///   listed edges are repaired from `edge_flows`. The caller must list
    ///   every edge whose capacity was patched since the last resume;
    ///   [`cancel_flow`](CsrFlow::cancel_flow) keeps the residuals of the
    ///   paths it drains consistent on its own.
    #[allow(clippy::too_many_arguments)]
    pub fn min_cut_resume<'s>(
        &self,
        algorithm: FlowAlgorithm,
        scratch: &'s mut FlowScratch,
        edge_flows: &mut [u128],
        total_flow: &mut u128,
        infinite_threshold: u128,
        want_cut: bool,
        dirty: Option<&[EdgeId]>,
    ) -> CsrCut<'s> {
        assert!(self.frozen, "CsrFlow::min_cut_resume requires freeze()");
        assert_eq!(edge_flows.len(), self.num_edges(), "one retained flow per arena edge");
        let algorithm = match algorithm.resolve(self.num_vertices, self.num_edges()) {
            FlowAlgorithm::PushRelabel => FlowAlgorithm::Dinic,
            resolved => resolved,
        };
        scratch.prepare(self.num_vertices);
        match dirty {
            None => {
                scratch.residual.clear();
                scratch.residual.resize(self.arc_head.len(), 0);
                for (e, &flow) in edge_flows.iter().enumerate() {
                    let a = self.edge_arc[e];
                    if a == NO_ARC {
                        debug_assert_eq!(flow, 0, "zero-capacity edge retaining flow");
                        continue;
                    }
                    let a = a as usize;
                    let cap = self.arc_cap[a];
                    debug_assert!(flow <= cap, "retained flow exceeds edge capacity");
                    scratch.residual[a] = cap - flow;
                    scratch.residual[self.arc_twin[a] as usize] = flow;
                }
            }
            Some(dirty) => {
                assert_eq!(
                    scratch.residual.len(),
                    self.arc_head.len(),
                    "warm resume requires the previous resume's residual"
                );
                for &edge in dirty {
                    let e = edge.index();
                    let a = self.edge_arc[e];
                    if a == NO_ARC {
                        debug_assert_eq!(edge_flows[e], 0, "zero-capacity edge retaining flow");
                        continue;
                    }
                    let a = a as usize;
                    let flow = edge_flows[e];
                    debug_assert!(flow <= self.arc_cap[a], "retained flow exceeds edge capacity");
                    scratch.residual[a] = self.arc_cap[a] - flow;
                    scratch.residual[self.arc_twin[a] as usize] = flow;
                }
                #[cfg(debug_assertions)]
                for (e, &flow) in edge_flows.iter().enumerate() {
                    let a = self.edge_arc[e];
                    if a != NO_ARC {
                        let a = a as usize;
                        debug_assert_eq!(
                            scratch.residual[a],
                            self.arc_cap[a] - flow,
                            "stale residual on edge {e} in a warm resume"
                        );
                        debug_assert_eq!(scratch.residual[self.arc_twin[a] as usize], flow);
                    }
                }
            }
        }
        let added = match algorithm {
            FlowAlgorithm::Dinic => dinic(self, scratch, Some(edge_flows)),
            FlowAlgorithm::EdmondsKarp => edmonds_karp(self, scratch, Some(edge_flows)),
            // lint: allow(panic-freedom, resume_policy only returns augmenting-path backends)
            _ => unreachable!("resume runs an augmenting-path backend"),
        };
        *total_flow += added;
        if !want_cut {
            scratch.cut_edges.clear();
            let value = if *total_flow >= infinite_threshold {
                Capacity::Infinite
            } else {
                Capacity::Finite(*total_flow)
            };
            return CsrCut { value, cut_edges: &scratch.cut_edges };
        }
        self.extract_cut(scratch, *total_flow, infinite_threshold)
    }

    /// Cancels flow on `edge` down to `keep` units, rerouting the excess so
    /// the remaining assignment is again a feasible flow (of possibly smaller
    /// value, tracked in `total_flow`). This is the incremental delete path:
    /// lower a capacity below the retained flow, cancel the difference, then
    /// [`set_edge_capacity`](CsrFlow::set_edge_capacity) + re-freeze + resume.
    ///
    /// The surplus at the edge's tail is drained backward along
    /// flow-carrying arcs to the source (a genuine value decrease) or to the
    /// edge's head (a cycle cancellation); any remaining deficit at the head
    /// is then drained forward to the target. Each drained path zeroes at
    /// least one arc's flow, so the walk terminates in `O(E)` path searches.
    ///
    /// Returns `false` when the retained flow bookkeeping turns out
    /// inconsistent (no drain path found) — callers should fall back to a
    /// full rebuild; the flow arrays are not usable for a resume afterwards.
    #[must_use]
    pub fn cancel_flow(
        &self,
        edge: EdgeId,
        keep: u128,
        scratch: &mut FlowScratch,
        edge_flows: &mut [u128],
        total_flow: &mut u128,
    ) -> bool {
        assert!(self.frozen, "CsrFlow::cancel_flow requires freeze()");
        let e = edge.index();
        let flow = edge_flows[e];
        if flow <= keep {
            return true;
        }
        let drain = flow - keep;
        edge_flows[e] = keep;
        let u = self.edge_from[e] as usize;
        let v = self.edge_to[e] as usize;
        let source = self.source as usize;
        let target = self.target as usize;
        scratch.prepare(self.num_vertices);

        let mut surplus = drain; // unmatched outflow at u
        let mut deficit = drain; // unmatched inflow at v
        let mut to_source: u128 = 0; // units drained all the way back: value decrease
        if u == source {
            to_source = drain;
            surplus = 0;
        }
        // Safety net: each successful drain zeroes an arc or finishes, so
        // 2·arcs + 2 searches always suffice; exceeding this means a bug.
        let mut guard = 2 * self.arc_head.len() + 2;
        while surplus > 0 {
            guard = guard.saturating_sub(1);
            if guard == 0 {
                return false;
            }
            match self.drain_path(u, true, source, v, surplus, scratch, edge_flows) {
                Some((stop, amount)) => {
                    surplus -= amount;
                    if stop == v {
                        deficit -= amount; // cycle through the canceled edge
                    } else {
                        to_source += amount;
                    }
                }
                None => return false,
            }
        }
        if v == target {
            deficit = 0; // absorbed directly by the flow value
        }
        while deficit > 0 {
            guard = guard.saturating_sub(1);
            if guard == 0 {
                return false;
            }
            match self.drain_path(v, false, target, target, deficit, scratch, edge_flows) {
                Some((_, amount)) => deficit -= amount,
                None => return false,
            }
        }
        debug_assert!(*total_flow >= to_source, "cancellation exceeds the flow value");
        *total_flow = total_flow.saturating_sub(to_source);
        true
    }

    /// One cancellation path search for [`cancel_flow`](CsrFlow::cancel_flow):
    /// BFS from `start` over flow-carrying arcs — against their direction
    /// when `backward` — until `stop_a` or `stop_b` is reached, then cancels
    /// the path's bottleneck (capped at `limit`) and returns the stop vertex
    /// and the amount. `None` when no stop vertex is reachable.
    #[allow(clippy::too_many_arguments)]
    fn drain_path(
        &self,
        start: usize,
        backward: bool,
        stop_a: usize,
        stop_b: usize,
        limit: u128,
        scratch: &mut FlowScratch,
        edge_flows: &mut [u128],
    ) -> Option<(usize, u128)> {
        let n = self.num_vertices;
        for l in scratch.level[..n].iter_mut() {
            *l = UNVISITED;
        }
        scratch.queue.clear();
        scratch.level[start] = 0;
        scratch.queue.push(start as u32);
        let mut head = 0;
        let mut found: Option<usize> = None;
        'bfs: while head < scratch.queue.len() {
            let w = scratch.queue[head] as usize;
            head += 1;
            for b in self.arc_range(w) {
                // Walking backward, the twin of each arc out of `w` is an arc
                // *into* `w`; either way only forward arcs with positive
                // retained flow qualify.
                let via = if backward { self.arc_twin[b] as usize } else { b };
                let ex = self.arc_edge[via];
                if ex == NO_EDGE || edge_flows[ex as usize] == 0 {
                    continue;
                }
                let next = self.arc_head[b] as usize;
                if scratch.level[next] != UNVISITED {
                    continue;
                }
                scratch.level[next] = 0;
                scratch.pred[next] = via as u32;
                if next == stop_a || next == stop_b {
                    found = Some(next);
                    break 'bfs;
                }
                scratch.queue.push(next as u32);
            }
        }
        let stop = found?;
        // Walk the predecessor chain back to `start`, collecting path arcs.
        scratch.path.clear();
        let mut bottleneck = limit;
        let mut w = stop;
        while w != start {
            let via = scratch.pred[w] as usize;
            let ex = self.arc_edge[via] as usize;
            bottleneck = bottleneck.min(edge_flows[ex]);
            scratch.path.push(via as u32);
            // `via` runs w→pred-side when backward (tail is w itself), and
            // pred-side→w when forward; either way the other endpoint is the
            // next vertex toward `start`.
            w = if backward {
                self.arc_head[via] as usize
            } else {
                self.arc_head[self.arc_twin[via] as usize] as usize
            };
        }
        debug_assert!(bottleneck > 0);
        // Keep `scratch.residual` in sync for warm resumes whenever it still
        // belongs to this freeze (saturating: a stale buffer of the right
        // size gets garbage either way and is fully reloaded next resume).
        let FlowScratch { path, residual, .. } = &mut *scratch;
        let track = residual.len() == self.arc_head.len();
        for &via in path.iter() {
            let via = via as usize;
            let ex = self.arc_edge[via] as usize;
            edge_flows[ex] -= bottleneck;
            if track {
                residual[via] = residual[via].saturating_add(bottleneck);
                let twin = self.arc_twin[via] as usize;
                residual[twin] = residual[twin].saturating_sub(bottleneck);
            }
        }
        Some((stop, bottleneck))
    }

    /// Residual-reachability BFS plus cut extraction, shared by
    /// [`min_cut`](CsrFlow::min_cut) and
    /// [`min_cut_resume`](CsrFlow::min_cut_resume).
    fn extract_cut<'s>(
        &self,
        scratch: &'s mut FlowScratch,
        flow: u128,
        infinite_threshold: u128,
    ) -> CsrCut<'s> {
        // Vertices reachable from the source in the residual graph.
        scratch.queue.clear();
        scratch.reachable[self.source as usize] = true;
        scratch.queue.push(self.source);
        let mut head = 0;
        while head < scratch.queue.len() {
            let v = scratch.queue[head] as usize;
            head += 1;
            for ai in self.arc_range(v) {
                if scratch.residual[ai] > 0 {
                    let to = self.arc_head[ai] as usize;
                    if !scratch.reachable[to] {
                        scratch.reachable[to] = true;
                        scratch.queue.push(to as u32);
                    }
                }
            }
        }

        if flow >= infinite_threshold {
            scratch.cut_edges.clear();
            return CsrCut { value: Capacity::Infinite, cut_edges: &scratch.cut_edges };
        }

        // Original edges crossing reachable → unreachable form a minimum cut.
        // Zero-capacity edges crossing it are included so the returned set is
        // a genuine separator (they cost nothing) — same contract as
        // `crate::mincut::min_cut_with`.
        scratch.cut_edges.clear();
        for i in 0..self.edge_from.len() {
            if scratch.reachable[self.edge_from[i] as usize]
                && !scratch.reachable[self.edge_to[i] as usize]
            {
                scratch.cut_edges.push(EdgeId(i as u32));
            }
        }
        CsrCut { value: Capacity::Finite(flow), cut_edges: &scratch.cut_edges }
    }
}

/// Dinic's algorithm over the frozen CSR arrays: BFS level graph, then an
/// iterative blocking-flow DFS driven by an explicit arc-path stack and the
/// per-vertex current-arc pointers.
fn dinic(csr: &CsrFlow, s: &mut FlowScratch, mut edge_flows: Option<&mut [u128]>) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;
    let mut total: u128 = 0;
    loop {
        // BFS to build the level graph (`level` may be longer than `n` after
        // a bigger instance; only this instance's prefix is live).
        for l in s.level[..n].iter_mut() {
            *l = UNVISITED;
        }
        s.level[source] = 0;
        s.queue.clear();
        s.queue.push(source as u32);
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            let next_level = s.level[v] + 1;
            for ai in csr.arc_range(v) {
                if s.residual[ai] > 0 {
                    let to = csr.arc_head[ai] as usize;
                    if s.level[to] == UNVISITED {
                        s.level[to] = next_level;
                        s.queue.push(to as u32);
                    }
                }
            }
        }
        if s.level[target] == UNVISITED {
            break;
        }
        s.current_arc[..n].copy_from_slice(&csr.adj_start[..n]);

        // Blocking flow: advance along admissible arcs, augment at the
        // target, retreat (pruning the vertex from this phase) on dead ends.
        s.path.clear();
        let mut v = source;
        loop {
            if v == target {
                let mut bottleneck = u128::MAX;
                for &ai in &s.path {
                    bottleneck = bottleneck.min(s.residual[ai as usize]);
                }
                for &ai in &s.path {
                    let ai = ai as usize;
                    s.residual[ai] -= bottleneck;
                    s.residual[csr.arc_twin[ai] as usize] += bottleneck;
                }
                if let Some(flows) = edge_flows.as_deref_mut() {
                    apply_augment(csr, &s.path, bottleneck, flows);
                }
                total += bottleneck;
                // Restart from the tail of the first saturated arc.
                let mut keep = 0;
                while keep < s.path.len() && s.residual[s.path[keep] as usize] > 0 {
                    keep += 1;
                }
                s.path.truncate(keep);
                v = match s.path.last() {
                    Some(&ai) => csr.arc_head[ai as usize] as usize,
                    None => source,
                };
                continue;
            }
            let end = csr.adj_start[v + 1];
            let mut advanced = false;
            while s.current_arc[v] < end {
                let ai = s.current_arc[v] as usize;
                let to = csr.arc_head[ai] as usize;
                if s.residual[ai] > 0 && s.level[to] == s.level[v] + 1 {
                    s.path.push(ai as u32);
                    v = to;
                    advanced = true;
                    break;
                }
                s.current_arc[v] += 1;
            }
            if !advanced {
                if v == source {
                    break; // blocking flow complete for this phase
                }
                s.level[v] = UNVISITED; // dead end: prune for this phase
                s.path.pop();
                v = match s.path.last() {
                    Some(&ai) => csr.arc_head[ai as usize] as usize,
                    None => source,
                };
            }
        }
    }
    total
}

/// Edmonds–Karp over the frozen CSR arrays: repeated BFS augmenting paths,
/// with `pred` holding the arc used to reach each vertex.
fn edmonds_karp(csr: &CsrFlow, s: &mut FlowScratch, mut edge_flows: Option<&mut [u128]>) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;
    let mut total: u128 = 0;
    loop {
        for p in s.pred[..n].iter_mut() {
            *p = NO_ARC;
        }
        for l in s.level[..n].iter_mut() {
            *l = UNVISITED; // `level` doubles as the visited marker here
        }
        s.level[source] = 0;
        s.queue.clear();
        s.queue.push(source as u32);
        let mut head = 0;
        let mut found = false;
        'bfs: while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            for ai in csr.arc_range(v) {
                if s.residual[ai] > 0 {
                    let to = csr.arc_head[ai] as usize;
                    if s.level[to] == UNVISITED {
                        s.level[to] = 0;
                        s.pred[to] = ai as u32;
                        if to == target {
                            found = true;
                            break 'bfs;
                        }
                        s.queue.push(to as u32);
                    }
                }
            }
        }
        if !found {
            break;
        }
        let mut bottleneck = u128::MAX;
        let mut v = target;
        while v != source {
            let ai = s.pred[v] as usize;
            bottleneck = bottleneck.min(s.residual[ai]);
            v = csr.arc_head[csr.arc_twin[ai] as usize] as usize;
        }
        let mut v = target;
        while v != source {
            let ai = s.pred[v] as usize;
            s.residual[ai] -= bottleneck;
            s.residual[csr.arc_twin[ai] as usize] += bottleneck;
            if let Some(flows) = edge_flows.as_deref_mut() {
                apply_augment(csr, &[ai as u32], bottleneck, flows);
            }
            v = csr.arc_head[csr.arc_twin[ai] as usize] as usize;
        }
        total += bottleneck;
    }
    total
}

/// Folds one augmenting path's `bottleneck` units into the per-edge flow
/// array (the retained state a resumable solve keeps): a forward arc carries
/// its arena edge directly, a reverse arc cancels flow on its twin's edge.
fn apply_augment(csr: &CsrFlow, path_arcs: &[u32], bottleneck: u128, flows: &mut [u128]) {
    for &ai in path_arcs {
        let ai = ai as usize;
        let ex = csr.arc_edge[ai];
        if ex != NO_EDGE {
            flows[ex as usize] += bottleneck;
        } else {
            let ex = csr.arc_edge[csr.arc_twin[ai] as usize] as usize;
            flows[ex] -= bottleneck;
        }
    }
}

/// Push–relabel (FIFO selection, gap heuristic) over the frozen CSR arrays —
/// the same algorithm as `crate::push_relabel`, with heights/excess/queues
/// living in the scratch.
fn push_relabel(csr: &CsrFlow, s: &mut FlowScratch) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;

    s.height[source] = n as u32;
    s.height_count[0] = n.saturating_sub(1) as u32;
    s.height_count[n] += 1;

    // Saturate all source arcs (reverse arcs start with zero residual, so
    // only genuine forward arcs push).
    for ai in csr.arc_range(source) {
        let d = s.residual[ai];
        if d > 0 {
            let to = csr.arc_head[ai] as usize;
            s.residual[ai] -= d;
            s.residual[csr.arc_twin[ai] as usize] += d;
            s.excess[to] += d;
            if to != target && to != source && !s.in_queue[to] {
                s.active.push_back(to as u32);
                s.in_queue[to] = true;
            }
        }
    }

    while let Some(v) = s.active.pop_front() {
        let v = v as usize;
        s.in_queue[v] = false;
        if v == source || v == target {
            continue;
        }
        let begin = csr.adj_start[v] as usize;
        let end = csr.adj_start[v + 1] as usize;
        let mut ai = begin;
        while s.excess[v] > 0 {
            if ai == end {
                // Relabel: 1 + the minimum height over residual arcs.
                let old_height = s.height[v] as usize;
                let mut min_height = usize::MAX;
                for a in begin..end {
                    if s.residual[a] > 0 {
                        min_height = min_height.min(s.height[csr.arc_head[a] as usize] as usize);
                    }
                }
                if min_height == usize::MAX {
                    break; // no residual arc: the remaining excess is stuck (cannot happen)
                }
                let new_height = (min_height + 1).min(2 * n);
                s.height_count[old_height] -= 1;
                // Gap heuristic: if no vertex remains at `old_height`, every
                // vertex strictly above it (up to `n`) can no longer reach
                // the target and is lifted past `n` in one go.
                if s.height_count[old_height] == 0 && old_height < n {
                    for u in 0..n {
                        if u == source || u == target {
                            continue;
                        }
                        let h = s.height[u] as usize;
                        if h > old_height && h <= n {
                            s.height_count[h] -= 1;
                            s.height[u] = (n + 1) as u32;
                            s.height_count[n + 1] += 1;
                        }
                    }
                }
                s.height[v] = new_height as u32;
                s.height_count[new_height] += 1;
                ai = begin;
                continue;
            }
            let to = csr.arc_head[ai] as usize;
            if s.residual[ai] > 0 && s.height[v] == s.height[to] + 1 {
                let d = s.excess[v].min(s.residual[ai]);
                s.residual[ai] -= d;
                s.residual[csr.arc_twin[ai] as usize] += d;
                s.excess[v] -= d;
                s.excess[to] += d;
                if to != source && to != target && !s.in_queue[to] {
                    s.active.push_back(to as u32);
                    s.in_queue[to] = true;
                }
            } else {
                ai += 1;
            }
        }
    }

    s.excess[target]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincut::min_cut_with;
    use std::collections::BTreeSet;

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    fn instances() -> Vec<FlowNetwork> {
        let mut nets = vec![
            simple_network(&[(0, 1, 5)], 2, 0, 1),
            simple_network(&[], 2, 0, 1),
            simple_network(&[(1, 0, 4)], 2, 0, 1),
            simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 4, 0, 3),
            simple_network(&[(0, 1, 0), (0, 1, 3)], 2, 0, 1),
            simple_network(&[(0, 1, 2), (0, 1, 3)], 2, 0, 1),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 1), (1, 2, 1)], 4, 0, 3),
            simple_network(&[(0, 1, u64::MAX), (1, 2, u64::MAX), (0, 2, u64::MAX)], 3, 0, 2),
            simple_network(
                &[
                    (0, 1, 16),
                    (0, 2, 13),
                    (1, 2, 10),
                    (2, 1, 4),
                    (1, 3, 12),
                    (3, 2, 9),
                    (2, 4, 14),
                    (4, 3, 7),
                    (3, 5, 20),
                    (4, 5, 4),
                ],
                6,
                0,
                5,
            ),
        ];
        // Infinite routes, bottlenecked and not.
        let mut inf = FlowNetwork::new();
        let s = inf.add_vertex();
        let m = inf.add_vertex();
        let t = inf.add_vertex();
        inf.set_source(s);
        inf.set_target(t);
        inf.add_edge(s, m, Capacity::Infinite);
        inf.add_edge(m, t, Capacity::Infinite);
        nets.push(inf);
        let mut capped = FlowNetwork::new();
        let s = capped.add_vertex();
        let m = capped.add_vertex();
        let t = capped.add_vertex();
        capped.set_source(s);
        capped.set_target(t);
        capped.add_edge(s, m, Capacity::Infinite);
        capped.add_edge(m, t, Capacity::Finite(4));
        nets.push(capped);
        nets
    }

    #[test]
    fn csr_backends_match_legacy_solvers_on_value_and_cut_validity() {
        let mut scratch = FlowScratch::new();
        for net in instances() {
            let csr = CsrFlow::from_network(&net);
            for algorithm in FlowAlgorithm::ALL {
                let legacy = min_cut_with(&net, algorithm);
                let cut = csr.min_cut(algorithm, &mut scratch);
                assert_eq!(cut.value, legacy.value, "{algorithm} value");
                if let Capacity::Finite(_) = cut.value {
                    let set: BTreeSet<EdgeId> = cut.cut_edges.iter().copied().collect();
                    assert!(net.is_cut(&set), "{algorithm}: CSR cut must disconnect");
                    assert_eq!(net.cost(&set), cut.value, "{algorithm}: CSR cut cost");
                } else {
                    assert!(cut.cut_edges.is_empty());
                }
            }
        }
    }

    #[test]
    fn auto_matches_concrete_backends_everywhere() {
        let mut scratch = FlowScratch::new();
        for net in instances() {
            let csr = CsrFlow::from_network(&net);
            let auto_value = csr.min_cut(FlowAlgorithm::Auto, &mut scratch).value;
            let dinic_value = csr.min_cut(FlowAlgorithm::Dinic, &mut scratch).value;
            assert_eq!(auto_value, dinic_value);
        }
    }

    #[test]
    fn exhaustive_cross_check_on_small_networks() {
        // Brute force all edge subsets and compare against every CSR backend.
        let nets = vec![
            simple_network(&[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 1), (1, 2, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 3), (1, 2, 2), (0, 2, 1), (2, 3, 3), (1, 3, 1)], 4, 0, 3),
        ];
        let mut scratch = FlowScratch::new();
        for net in nets {
            let m = net.num_edges();
            let mut best = Capacity::Infinite;
            for mask in 0..(1u32 << m) {
                let set: BTreeSet<EdgeId> =
                    (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
                if net.is_cut(&set) {
                    best = best.min(net.cost(&set));
                }
            }
            let csr = CsrFlow::from_network(&net);
            for algorithm in FlowAlgorithm::ALL {
                assert_eq!(csr.min_cut(algorithm, &mut scratch).value, best, "{algorithm}");
            }
        }
    }

    #[test]
    fn arena_reuse_after_clear_keeps_results_correct() {
        let mut csr = CsrFlow::new();
        let mut scratch = FlowScratch::new();
        for net in instances() {
            csr.clear();
            csr.add_vertices(net.num_vertices());
            csr.set_source(net.source());
            csr.set_target(net.target());
            for (_, e) in net.edges() {
                csr.add_edge(e.from, e.to, e.capacity);
            }
            csr.freeze();
            let expected = min_cut_with(&net, FlowAlgorithm::Dinic).value;
            assert_eq!(csr.min_cut(FlowAlgorithm::Dinic, &mut scratch).value, expected);
        }
    }

    #[test]
    fn resume_from_zero_flow_matches_cold_solve() {
        let mut scratch = FlowScratch::new();
        for net in instances() {
            let csr = CsrFlow::from_network(&net);
            let cold = csr.min_cut(FlowAlgorithm::Dinic, &mut scratch).value;
            let mut flows = vec![0u128; csr.num_edges()];
            let mut total = 0u128;
            let warm = csr
                .min_cut_resume(
                    FlowAlgorithm::Auto,
                    &mut scratch,
                    &mut flows,
                    &mut total,
                    csr.infinite_cap,
                    true,
                    None,
                )
                .value;
            assert_eq!(warm, cold);
            if let Capacity::Finite(f) = cold {
                assert_eq!(total, f);
            }
        }
    }

    #[test]
    fn incremental_capacity_churn_matches_cold_solves() {
        // Deterministic xorshift so the churn is reproducible.
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut scratch = FlowScratch::new();
        // Cold cross-checks use their own scratch so the resume scratch keeps
        // its residual state and the warm path is genuinely exercised.
        let mut cold_scratch = FlowScratch::new();
        for round in 0..40 {
            // A layered random network with only finite capacities.
            let layers = 3 + (next() % 3) as usize;
            let width = 2 + (next() % 3) as usize;
            let mut csr = CsrFlow::new();
            let n = layers * width + 2;
            csr.add_vertices(n);
            let source = VertexId((n - 2) as u32);
            let target = VertexId((n - 1) as u32);
            csr.set_source(source);
            csr.set_target(target);
            let mut edges = Vec::new();
            for w in 0..width {
                edges.push(csr.add_edge(
                    source,
                    VertexId(w as u32),
                    Capacity::Finite((1 + next() % 8) as u128),
                ));
                let last = ((layers - 1) * width + w) as u32;
                edges.push(csr.add_edge(
                    VertexId(last),
                    target,
                    Capacity::Finite((1 + next() % 8) as u128),
                ));
            }
            for l in 0..layers - 1 {
                for a in 0..width {
                    for b in 0..width {
                        if next() % 3 == 0 {
                            let from = VertexId((l * width + a) as u32);
                            let to = VertexId(((l + 1) * width + b) as u32);
                            edges.push(csr.add_edge(
                                from,
                                to,
                                Capacity::Finite((1 + next() % 8) as u128),
                            ));
                        }
                    }
                }
            }
            csr.freeze();
            let mut flows = vec![0u128; csr.num_edges()];
            let mut total = 0u128;
            csr.min_cut_resume(
                FlowAlgorithm::Dinic,
                &mut scratch,
                &mut flows,
                &mut total,
                u128::MAX,
                true,
                None,
            );

            // Churn: raise, lower, zero, and restore capacities; occasionally
            // append a brand-new edge. Cross-check each warm resume against a
            // cold solve of the same (post-edit) network.
            for step in 0..12 {
                let mut dirty: Vec<EdgeId> = Vec::new();
                let edit = next() % 4;
                if edit == 3 {
                    let from = VertexId((next() % n as u64) as u32);
                    let to = VertexId((next() % n as u64) as u32);
                    if from != to && to.0 != source.0 && from.0 != target.0 {
                        edges.push(csr.add_edge(
                            from,
                            to,
                            Capacity::Finite((1 + next() % 8) as u128),
                        ));
                        flows.push(0);
                    }
                } else {
                    let e = edges[(next() % edges.len() as u64) as usize];
                    let new_cap = if edit == 0 { 0u128 } else { (next() % 9) as u128 };
                    if new_cap < flows[e.index()] {
                        assert!(
                            csr.cancel_flow(e, new_cap, &mut scratch, &mut flows, &mut total),
                            "round {round} step {step}: cancellation must succeed"
                        );
                    }
                    // Alternate between the unfreezing write and the in-place
                    // frozen patch so both paths face the cold cross-check.
                    if next() % 2 == 0 {
                        csr.set_edge_capacity(e, Capacity::Finite(new_cap));
                    } else {
                        csr.patch_edge_capacity(e, Capacity::Finite(new_cap));
                    }
                    dirty.push(e);
                }
                // A patch that kept the freeze intact allows a warm resume
                // repairing only the dirty edges; any unfreeze (new edge, or
                // `set_edge_capacity`) forces the full residual reload.
                let warm_ok = csr.is_frozen();
                csr.freeze();
                let warm = csr
                    .min_cut_resume(
                        FlowAlgorithm::Auto,
                        &mut scratch,
                        &mut flows,
                        &mut total,
                        u128::MAX,
                        step % 2 == 0, // both resume paths: with and without cut extraction
                        if warm_ok { Some(&dirty) } else { None },
                    )
                    .value;
                // The retained flows must stay feasible and sum to `total`.
                let cold = csr.min_cut(FlowAlgorithm::Dinic, &mut cold_scratch).value;
                assert_eq!(warm, cold, "round {round} step {step}");
                assert_eq!(warm, Capacity::Finite(total), "round {round} step {step}");
            }
        }
    }

    #[test]
    fn cancel_flow_handles_source_and_target_adjacent_edges() {
        // s -> m -> t plus a parallel s -> t edge; cancel each in turn.
        let mut csr = CsrFlow::new();
        csr.add_vertices(3);
        let (s, m, t) = (VertexId(0), VertexId(1), VertexId(2));
        csr.set_source(s);
        csr.set_target(t);
        let sm = csr.add_edge(s, m, Capacity::Finite(5));
        let mt = csr.add_edge(m, t, Capacity::Finite(5));
        let st = csr.add_edge(s, t, Capacity::Finite(3));
        csr.freeze();
        let mut scratch = FlowScratch::new();
        let mut flows = vec![0u128; 3];
        let mut total = 0u128;
        assert_eq!(
            csr.min_cut_resume(
                FlowAlgorithm::Dinic,
                &mut scratch,
                &mut flows,
                &mut total,
                u128::MAX,
                true,
                None
            )
            .value,
            Capacity::Finite(8)
        );
        // Deleting the direct s->t edge: pure value decrease on both sides.
        assert!(csr.cancel_flow(st, 0, &mut scratch, &mut flows, &mut total));
        csr.set_edge_capacity(st, Capacity::Finite(0));
        csr.freeze();
        let cut = csr.min_cut_resume(
            FlowAlgorithm::Dinic,
            &mut scratch,
            &mut flows,
            &mut total,
            u128::MAX,
            true,
            None,
        );
        assert_eq!(cut.value, Capacity::Finite(5));
        // Lowering the source-adjacent edge below its flow.
        assert!(csr.cancel_flow(sm, 2, &mut scratch, &mut flows, &mut total));
        csr.set_edge_capacity(sm, Capacity::Finite(2));
        csr.freeze();
        let cut = csr.min_cut_resume(
            FlowAlgorithm::Dinic,
            &mut scratch,
            &mut flows,
            &mut total,
            u128::MAX,
            true,
            None,
        );
        assert_eq!(cut.value, Capacity::Finite(2));
        // And the target-adjacent edge all the way to zero.
        assert!(csr.cancel_flow(mt, 0, &mut scratch, &mut flows, &mut total));
        csr.set_edge_capacity(mt, Capacity::Finite(0));
        csr.freeze();
        let cut = csr.min_cut_resume(
            FlowAlgorithm::Dinic,
            &mut scratch,
            &mut flows,
            &mut total,
            u128::MAX,
            true,
            None,
        );
        assert_eq!(cut.value, Capacity::Finite(0));
        assert_eq!(total, 0);
    }

    #[test]
    fn resume_reports_infinite_at_the_caller_threshold() {
        let mut csr = CsrFlow::new();
        csr.add_vertices(2);
        csr.set_source(VertexId(0));
        csr.set_target(VertexId(1));
        // "Structural" capacity encoded as a huge finite value.
        const BIG: u128 = 1 << 80;
        csr.add_edge(VertexId(0), VertexId(1), Capacity::Finite(BIG));
        csr.freeze();
        let mut scratch = FlowScratch::new();
        let mut flows = vec![0u128];
        let mut total = 0u128;
        let cut = csr.min_cut_resume(
            FlowAlgorithm::Dinic,
            &mut scratch,
            &mut flows,
            &mut total,
            BIG,
            true,
            None,
        );
        assert_eq!(cut.value, Capacity::Infinite);
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn flow_consistency_checker_accepts_and_rejects() {
        // Path 0 -> 1 -> 2 with capacities 5 and 3: max flow 3.
        let net = simple_network(&[(0, 1, 5), (1, 2, 3)], 3, 0, 2);
        let mut csr = CsrFlow::from_network(&net);
        csr.freeze();
        assert_eq!(csr.check_flow_consistency(&[3, 3], 3), Ok(()));
        // Value 0 with no flow is also feasible.
        assert_eq!(csr.check_flow_consistency(&[0, 0], 0), Ok(()));
        // Wrong vector length.
        assert!(csr.check_flow_consistency(&[3], 3).is_err());
        // Over capacity on the second edge.
        assert!(csr.check_flow_consistency(&[4, 4], 4).is_err());
        // Conservation broken at vertex 1.
        assert!(csr.check_flow_consistency(&[3, 2], 3).is_err());
        // Feasible flow, wrong recorded total.
        assert!(csr.check_flow_consistency(&[3, 3], 2).is_err());
        // Unfrozen networks cannot be checked (`from_network` freezes, so
        // build by hand).
        let mut unfrozen = CsrFlow::new();
        let a = unfrozen.add_vertices(2);
        unfrozen.set_source(a);
        unfrozen.set_target(VertexId(1));
        unfrozen.add_edge(a, VertexId(1), Capacity::Finite(1));
        assert!(unfrozen.check_flow_consistency(&[0], 0).is_err());
    }

    #[test]
    fn flow_consistency_checker_handles_zero_capacity_edges() {
        let mut csr = CsrFlow::new();
        let v = csr.add_vertices(3);
        let (a, b, c) = (v, VertexId(1), VertexId(2));
        csr.set_source(a);
        csr.set_target(c);
        csr.add_edge(a, b, Capacity::Finite(2));
        let dead = csr.add_edge(b, c, Capacity::Finite(0)); // tombstone: no arcs
        csr.add_edge(b, c, Capacity::Infinite);
        csr.freeze();
        assert_eq!(csr.edge_arc[dead.index()], NO_ARC);
        assert_eq!(csr.check_flow_consistency(&[2, 0, 2], 2), Ok(()));
        // A tombstoned edge must carry no flow.
        assert!(csr.check_flow_consistency(&[2, 2, 0], 2).is_err());
    }

    #[test]
    fn scratch_is_not_reallocated_across_repeated_solves() {
        let net = simple_network(
            &[(0, 1, 16), (0, 2, 13), (1, 2, 10), (1, 3, 12), (2, 4, 14), (3, 5, 20), (4, 5, 4)],
            6,
            0,
            5,
        );
        let csr = CsrFlow::from_network(&net);
        let mut scratch = FlowScratch::new();
        // Warm-up sizes every buffer (one solve per backend, since they touch
        // different buffers).
        for algorithm in FlowAlgorithm::ALL {
            csr.min_cut(algorithm, &mut scratch);
        }
        let signature = scratch.capacity_signature();
        for _ in 0..8 {
            for algorithm in FlowAlgorithm::ALL {
                csr.min_cut(algorithm, &mut scratch);
            }
            assert_eq!(scratch.capacity_signature(), signature);
        }
    }
}
