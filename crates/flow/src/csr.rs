//! Cache-friendly CSR flow networks solved over reusable scratch buffers.
//!
//! [`crate::network::FlowNetwork`] is the construction-friendly API: an edge
//! list with `Option` source/target, solved by building a fresh residual
//! graph (`Vec<Vec<usize>>` adjacency — one heap allocation per vertex) on
//! every call. That is fine for one-off solves, but the resilience engine
//! solves the *same shape* of network once per database, thousands of times
//! per prepared query, and the per-solve allocation and pointer-chasing cost
//! dominates at the sizes the benches exercise.
//!
//! [`CsrFlow`] is the hot-path representation:
//!
//! * edges are appended into a flat **arena** (`edge_from`/`edge_to`/
//!   `edge_cap` arrays of `u32`/`u128`) that is `clear()`ed — never freed —
//!   between databases;
//! * [`CsrFlow::freeze`] compiles the arena into **CSR** (compressed sparse
//!   row) adjacency by counting sort: `adj_start[v]..adj_start[v+1]` indexes
//!   the contiguous arc slice of vertex `v`, with forward and reverse
//!   residual arcs interleaved in the same arrays and paired through an
//!   explicit `arc_twin` index (the `ai ^ 1` twin trick of the edge-list
//!   solvers does not survive the CSR permutation);
//! * [`CsrFlow::min_cut`] runs Dinic, Edmonds–Karp, or push–relabel over a
//!   caller-provided [`FlowScratch`], whose buffers are reset — never
//!   reallocated — across solves (see [`crate::scratch`]).
//!
//! Infinite capacities use the same certification scheme as the edge-list
//! solvers: they are capped internally at `total_finite_capacity + 1`, so a
//! flow reaching the cap proves that every cut uses an infinite edge.
//! Passing [`FlowAlgorithm::Auto`] selects the backend per instance from the
//! measured size thresholds in [`crate::auto`].

use crate::mincut::FlowAlgorithm;
use crate::network::{Capacity, EdgeId, FlowNetwork, VertexId};
use crate::scratch::{FlowScratch, NO_ARC, UNVISITED};

/// Capacity sentinel inside the arena: `+∞` (finite capacities must be
/// strictly below; the reductions only produce `u64`-sized costs).
const INFINITE: u128 = u128::MAX;
/// `arc_edge` sentinel for reverse (residual-only) arcs.
const NO_EDGE: u32 = u32::MAX;

/// A flow network frozen into contiguous CSR arrays, built once per database
/// inside a reusable arena and solved over a [`FlowScratch`].
///
/// Lifecycle: [`clear`](CsrFlow::clear) → [`add_vertices`](CsrFlow::add_vertices)
/// / [`add_edge`](CsrFlow::add_edge) / [`set_source`](CsrFlow::set_source) /
/// [`set_target`](CsrFlow::set_target) → [`freeze`](CsrFlow::freeze) →
/// [`min_cut`](CsrFlow::min_cut) (any number of times). All buffers keep
/// their allocations across `clear`.
#[derive(Debug, Clone, Default)]
pub struct CsrFlow {
    num_vertices: usize,
    source: u32,
    target: u32,
    // Edge arena (original edge ids are indexes into these).
    edge_from: Vec<u32>,
    edge_to: Vec<u32>,
    edge_cap: Vec<u128>,
    // Frozen CSR residual graph.
    adj_start: Vec<u32>,
    cursor: Vec<u32>,
    arc_head: Vec<u32>,
    arc_twin: Vec<u32>,
    arc_edge: Vec<u32>,
    arc_cap: Vec<u128>,
    infinite_cap: u128,
    frozen: bool,
}

/// A minimum cut computed by [`CsrFlow::min_cut`]. The cut edges borrow the
/// scratch buffer and stay valid until its next solve.
#[derive(Debug)]
pub struct CsrCut<'a> {
    /// The cost of the cut (`Infinite` when no finite cut exists).
    pub value: Capacity,
    /// A concrete set of edges achieving the cut (arena [`EdgeId`]s). Empty
    /// when the value is infinite.
    pub cut_edges: &'a [EdgeId],
}

impl CsrFlow {
    /// An empty network with no capacity reserved.
    pub fn new() -> CsrFlow {
        CsrFlow { source: NO_ARC, target: NO_ARC, ..CsrFlow::default() }
    }

    /// Resets the network for a new build, keeping every allocation.
    pub fn clear(&mut self) {
        self.num_vertices = 0;
        self.source = NO_ARC;
        self.target = NO_ARC;
        self.edge_from.clear();
        self.edge_to.clear();
        self.edge_cap.clear();
        self.frozen = false;
    }

    /// Adds `n` vertices, returning the identifier of the first one.
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = VertexId(self.num_vertices as u32);
        self.num_vertices += n;
        first
    }

    /// Adds one vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        self.add_vertices(1)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of arena edges.
    pub fn num_edges(&self) -> usize {
        self.edge_from.len()
    }

    /// The size `|N| = |V| + |E|` (the measure used by the auto-selection
    /// thresholds and the `flow_ablation` bench).
    pub fn size(&self) -> usize {
        self.num_vertices + self.edge_from.len()
    }

    /// Declares the source vertex.
    pub fn set_source(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.source = v.0;
    }

    /// Declares the target vertex.
    pub fn set_target(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.target = v.0;
    }

    /// Appends a directed edge to the arena and returns its identifier.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, capacity: Capacity) -> EdgeId {
        assert!(from.index() < self.num_vertices && to.index() < self.num_vertices);
        let cap = match capacity {
            Capacity::Finite(c) => {
                assert!(c < INFINITE, "finite capacity too large");
                c
            }
            Capacity::Infinite => INFINITE,
        };
        let id = EdgeId(self.edge_from.len() as u32);
        self.edge_from.push(from.0);
        self.edge_to.push(to.0);
        self.edge_cap.push(cap);
        id
    }

    /// The capacities of every internal buffer, for asserting that reuse
    /// never reallocates (see [`FlowScratch::capacity_signature`]).
    pub fn capacity_signature(&self) -> [usize; 9] {
        [
            self.edge_from.capacity(),
            self.edge_to.capacity(),
            self.edge_cap.capacity(),
            self.adj_start.capacity(),
            self.cursor.capacity(),
            self.arc_head.capacity(),
            self.arc_twin.capacity(),
            self.arc_edge.capacity(),
            self.arc_cap.capacity(),
        ]
    }

    /// The capacity of an arena edge.
    pub fn edge_capacity(&self, id: EdgeId) -> Capacity {
        match self.edge_cap[id.index()] {
            INFINITE => Capacity::Infinite,
            c => Capacity::Finite(c),
        }
    }

    /// Compiles the arena into CSR residual adjacency (counting sort by arc
    /// tail). Must be called after construction and before
    /// [`min_cut`](CsrFlow::min_cut); adding more edges requires a new
    /// `freeze`. Zero-capacity edges stay in the arena (they participate in
    /// cut extraction) but produce no residual arcs.
    pub fn freeze(&mut self) {
        assert!(self.source != NO_ARC, "source vertex not set");
        assert!(self.target != NO_ARC, "target vertex not set");
        assert_ne!(self.source, self.target, "source and target must differ");
        let n = self.num_vertices;

        let mut total_finite: u128 = 0;
        for &c in &self.edge_cap {
            if c != INFINITE {
                total_finite = total_finite.saturating_add(c);
            }
        }
        self.infinite_cap = total_finite.saturating_add(1);

        self.adj_start.clear();
        self.adj_start.resize(n + 1, 0);
        let mut num_arcs = 0usize;
        for i in 0..self.edge_from.len() {
            if self.edge_cap[i] == 0 {
                continue;
            }
            self.adj_start[self.edge_from[i] as usize + 1] += 1;
            self.adj_start[self.edge_to[i] as usize + 1] += 1;
            num_arcs += 2;
        }
        for v in 0..n {
            self.adj_start[v + 1] += self.adj_start[v];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.adj_start[..n]);
        self.arc_head.clear();
        self.arc_head.resize(num_arcs, 0);
        self.arc_twin.clear();
        self.arc_twin.resize(num_arcs, 0);
        self.arc_edge.clear();
        self.arc_edge.resize(num_arcs, NO_EDGE);
        self.arc_cap.clear();
        self.arc_cap.resize(num_arcs, 0);

        for i in 0..self.edge_from.len() {
            let cap = self.edge_cap[i];
            if cap == 0 {
                continue;
            }
            let from = self.edge_from[i] as usize;
            let to = self.edge_to[i] as usize;
            let forward = self.cursor[from] as usize;
            self.cursor[from] += 1;
            let reverse = self.cursor[to] as usize;
            self.cursor[to] += 1;
            self.arc_head[forward] = to as u32;
            self.arc_cap[forward] = if cap == INFINITE { self.infinite_cap } else { cap };
            self.arc_edge[forward] = i as u32;
            self.arc_twin[forward] = reverse as u32;
            self.arc_head[reverse] = from as u32;
            self.arc_cap[reverse] = 0;
            self.arc_edge[reverse] = NO_EDGE;
            self.arc_twin[reverse] = forward as u32;
        }
        self.frozen = true;
    }

    /// Copies a [`FlowNetwork`] into a fresh, frozen `CsrFlow` (convenience
    /// for cross-checking and benches; the engine builds arenas directly).
    pub fn from_network(network: &FlowNetwork) -> CsrFlow {
        let mut csr = CsrFlow::new();
        csr.add_vertices(network.num_vertices());
        csr.set_source(network.source());
        csr.set_target(network.target());
        for (_, e) in network.edges() {
            csr.add_edge(e.from, e.to, e.capacity);
        }
        csr.freeze();
        csr
    }

    /// The contiguous arc-index range of vertex `v`.
    #[inline]
    fn arc_range(&self, v: usize) -> std::ops::Range<usize> {
        self.adj_start[v] as usize..self.adj_start[v + 1] as usize
    }

    /// Computes a minimum source–target cut with the requested backend
    /// ([`FlowAlgorithm::Auto`] resolves per instance from the measured
    /// thresholds in [`crate::auto`]). All solver state lives in `scratch`,
    /// which is resized (growing only) and reused across calls.
    pub fn min_cut<'s>(
        &self,
        algorithm: FlowAlgorithm,
        scratch: &'s mut FlowScratch,
    ) -> CsrCut<'s> {
        assert!(self.frozen, "CsrFlow::min_cut requires freeze()");
        let algorithm = algorithm.resolve(self.num_vertices, self.num_edges());
        scratch.prepare(self.num_vertices);
        scratch.residual.clear();
        scratch.residual.extend_from_slice(&self.arc_cap);

        let flow = match algorithm {
            FlowAlgorithm::Dinic => dinic(self, scratch),
            FlowAlgorithm::EdmondsKarp => edmonds_karp(self, scratch),
            FlowAlgorithm::PushRelabel => {
                scratch.prepare_push_relabel(self.num_vertices);
                push_relabel(self, scratch)
            }
            FlowAlgorithm::Auto => unreachable!("Auto resolves to a concrete backend"),
        };

        // Vertices reachable from the source in the residual graph.
        scratch.queue.clear();
        scratch.reachable[self.source as usize] = true;
        scratch.queue.push(self.source);
        let mut head = 0;
        while head < scratch.queue.len() {
            let v = scratch.queue[head] as usize;
            head += 1;
            for ai in self.arc_range(v) {
                if scratch.residual[ai] > 0 {
                    let to = self.arc_head[ai] as usize;
                    if !scratch.reachable[to] {
                        scratch.reachable[to] = true;
                        scratch.queue.push(to as u32);
                    }
                }
            }
        }

        if flow >= self.infinite_cap {
            scratch.cut_edges.clear();
            return CsrCut { value: Capacity::Infinite, cut_edges: &scratch.cut_edges };
        }

        // Original edges crossing reachable → unreachable form a minimum cut.
        // Zero-capacity edges crossing it are included so the returned set is
        // a genuine separator (they cost nothing) — same contract as
        // `crate::mincut::min_cut_with`.
        scratch.cut_edges.clear();
        for i in 0..self.edge_from.len() {
            if scratch.reachable[self.edge_from[i] as usize]
                && !scratch.reachable[self.edge_to[i] as usize]
            {
                scratch.cut_edges.push(EdgeId(i as u32));
            }
        }
        CsrCut { value: Capacity::Finite(flow), cut_edges: &scratch.cut_edges }
    }
}

/// Dinic's algorithm over the frozen CSR arrays: BFS level graph, then an
/// iterative blocking-flow DFS driven by an explicit arc-path stack and the
/// per-vertex current-arc pointers.
fn dinic(csr: &CsrFlow, s: &mut FlowScratch) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;
    let mut total: u128 = 0;
    loop {
        // BFS to build the level graph (`level` may be longer than `n` after
        // a bigger instance; only this instance's prefix is live).
        for l in s.level[..n].iter_mut() {
            *l = UNVISITED;
        }
        s.level[source] = 0;
        s.queue.clear();
        s.queue.push(source as u32);
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            let next_level = s.level[v] + 1;
            for ai in csr.arc_range(v) {
                if s.residual[ai] > 0 {
                    let to = csr.arc_head[ai] as usize;
                    if s.level[to] == UNVISITED {
                        s.level[to] = next_level;
                        s.queue.push(to as u32);
                    }
                }
            }
        }
        if s.level[target] == UNVISITED {
            break;
        }
        s.current_arc[..n].copy_from_slice(&csr.adj_start[..n]);

        // Blocking flow: advance along admissible arcs, augment at the
        // target, retreat (pruning the vertex from this phase) on dead ends.
        s.path.clear();
        let mut v = source;
        loop {
            if v == target {
                let mut bottleneck = u128::MAX;
                for &ai in &s.path {
                    bottleneck = bottleneck.min(s.residual[ai as usize]);
                }
                for &ai in &s.path {
                    let ai = ai as usize;
                    s.residual[ai] -= bottleneck;
                    s.residual[csr.arc_twin[ai] as usize] += bottleneck;
                }
                total += bottleneck;
                // Restart from the tail of the first saturated arc.
                let mut keep = 0;
                while keep < s.path.len() && s.residual[s.path[keep] as usize] > 0 {
                    keep += 1;
                }
                s.path.truncate(keep);
                v = match s.path.last() {
                    Some(&ai) => csr.arc_head[ai as usize] as usize,
                    None => source,
                };
                continue;
            }
            let end = csr.adj_start[v + 1];
            let mut advanced = false;
            while s.current_arc[v] < end {
                let ai = s.current_arc[v] as usize;
                let to = csr.arc_head[ai] as usize;
                if s.residual[ai] > 0 && s.level[to] == s.level[v] + 1 {
                    s.path.push(ai as u32);
                    v = to;
                    advanced = true;
                    break;
                }
                s.current_arc[v] += 1;
            }
            if !advanced {
                if v == source {
                    break; // blocking flow complete for this phase
                }
                s.level[v] = UNVISITED; // dead end: prune for this phase
                s.path.pop();
                v = match s.path.last() {
                    Some(&ai) => csr.arc_head[ai as usize] as usize,
                    None => source,
                };
            }
        }
    }
    total
}

/// Edmonds–Karp over the frozen CSR arrays: repeated BFS augmenting paths,
/// with `pred` holding the arc used to reach each vertex.
fn edmonds_karp(csr: &CsrFlow, s: &mut FlowScratch) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;
    let mut total: u128 = 0;
    loop {
        for p in s.pred[..n].iter_mut() {
            *p = NO_ARC;
        }
        for l in s.level[..n].iter_mut() {
            *l = UNVISITED; // `level` doubles as the visited marker here
        }
        s.level[source] = 0;
        s.queue.clear();
        s.queue.push(source as u32);
        let mut head = 0;
        let mut found = false;
        'bfs: while head < s.queue.len() {
            let v = s.queue[head] as usize;
            head += 1;
            for ai in csr.arc_range(v) {
                if s.residual[ai] > 0 {
                    let to = csr.arc_head[ai] as usize;
                    if s.level[to] == UNVISITED {
                        s.level[to] = 0;
                        s.pred[to] = ai as u32;
                        if to == target {
                            found = true;
                            break 'bfs;
                        }
                        s.queue.push(to as u32);
                    }
                }
            }
        }
        if !found {
            break;
        }
        let mut bottleneck = u128::MAX;
        let mut v = target;
        while v != source {
            let ai = s.pred[v] as usize;
            bottleneck = bottleneck.min(s.residual[ai]);
            v = csr.arc_head[csr.arc_twin[ai] as usize] as usize;
        }
        let mut v = target;
        while v != source {
            let ai = s.pred[v] as usize;
            s.residual[ai] -= bottleneck;
            s.residual[csr.arc_twin[ai] as usize] += bottleneck;
            v = csr.arc_head[csr.arc_twin[ai] as usize] as usize;
        }
        total += bottleneck;
    }
    total
}

/// Push–relabel (FIFO selection, gap heuristic) over the frozen CSR arrays —
/// the same algorithm as `crate::push_relabel`, with heights/excess/queues
/// living in the scratch.
fn push_relabel(csr: &CsrFlow, s: &mut FlowScratch) -> u128 {
    let n = csr.num_vertices;
    let source = csr.source as usize;
    let target = csr.target as usize;

    s.height[source] = n as u32;
    s.height_count[0] = n.saturating_sub(1) as u32;
    s.height_count[n] += 1;

    // Saturate all source arcs (reverse arcs start with zero residual, so
    // only genuine forward arcs push).
    for ai in csr.arc_range(source) {
        let d = s.residual[ai];
        if d > 0 {
            let to = csr.arc_head[ai] as usize;
            s.residual[ai] -= d;
            s.residual[csr.arc_twin[ai] as usize] += d;
            s.excess[to] += d;
            if to != target && to != source && !s.in_queue[to] {
                s.active.push_back(to as u32);
                s.in_queue[to] = true;
            }
        }
    }

    while let Some(v) = s.active.pop_front() {
        let v = v as usize;
        s.in_queue[v] = false;
        if v == source || v == target {
            continue;
        }
        let begin = csr.adj_start[v] as usize;
        let end = csr.adj_start[v + 1] as usize;
        let mut ai = begin;
        while s.excess[v] > 0 {
            if ai == end {
                // Relabel: 1 + the minimum height over residual arcs.
                let old_height = s.height[v] as usize;
                let mut min_height = usize::MAX;
                for a in begin..end {
                    if s.residual[a] > 0 {
                        min_height = min_height.min(s.height[csr.arc_head[a] as usize] as usize);
                    }
                }
                if min_height == usize::MAX {
                    break; // no residual arc: the remaining excess is stuck (cannot happen)
                }
                let new_height = (min_height + 1).min(2 * n);
                s.height_count[old_height] -= 1;
                // Gap heuristic: if no vertex remains at `old_height`, every
                // vertex strictly above it (up to `n`) can no longer reach
                // the target and is lifted past `n` in one go.
                if s.height_count[old_height] == 0 && old_height < n {
                    for u in 0..n {
                        if u == source || u == target {
                            continue;
                        }
                        let h = s.height[u] as usize;
                        if h > old_height && h <= n {
                            s.height_count[h] -= 1;
                            s.height[u] = (n + 1) as u32;
                            s.height_count[n + 1] += 1;
                        }
                    }
                }
                s.height[v] = new_height as u32;
                s.height_count[new_height] += 1;
                ai = begin;
                continue;
            }
            let to = csr.arc_head[ai] as usize;
            if s.residual[ai] > 0 && s.height[v] == s.height[to] + 1 {
                let d = s.excess[v].min(s.residual[ai]);
                s.residual[ai] -= d;
                s.residual[csr.arc_twin[ai] as usize] += d;
                s.excess[v] -= d;
                s.excess[to] += d;
                if to != source && to != target && !s.in_queue[to] {
                    s.active.push_back(to as u32);
                    s.in_queue[to] = true;
                }
            } else {
                ai += 1;
            }
        }
    }

    s.excess[target]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincut::min_cut_with;
    use std::collections::BTreeSet;

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    fn instances() -> Vec<FlowNetwork> {
        let mut nets = vec![
            simple_network(&[(0, 1, 5)], 2, 0, 1),
            simple_network(&[], 2, 0, 1),
            simple_network(&[(1, 0, 4)], 2, 0, 1),
            simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 4, 0, 3),
            simple_network(&[(0, 1, 0), (0, 1, 3)], 2, 0, 1),
            simple_network(&[(0, 1, 2), (0, 1, 3)], 2, 0, 1),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 1), (1, 2, 1)], 4, 0, 3),
            simple_network(&[(0, 1, u64::MAX), (1, 2, u64::MAX), (0, 2, u64::MAX)], 3, 0, 2),
            simple_network(
                &[
                    (0, 1, 16),
                    (0, 2, 13),
                    (1, 2, 10),
                    (2, 1, 4),
                    (1, 3, 12),
                    (3, 2, 9),
                    (2, 4, 14),
                    (4, 3, 7),
                    (3, 5, 20),
                    (4, 5, 4),
                ],
                6,
                0,
                5,
            ),
        ];
        // Infinite routes, bottlenecked and not.
        let mut inf = FlowNetwork::new();
        let s = inf.add_vertex();
        let m = inf.add_vertex();
        let t = inf.add_vertex();
        inf.set_source(s);
        inf.set_target(t);
        inf.add_edge(s, m, Capacity::Infinite);
        inf.add_edge(m, t, Capacity::Infinite);
        nets.push(inf);
        let mut capped = FlowNetwork::new();
        let s = capped.add_vertex();
        let m = capped.add_vertex();
        let t = capped.add_vertex();
        capped.set_source(s);
        capped.set_target(t);
        capped.add_edge(s, m, Capacity::Infinite);
        capped.add_edge(m, t, Capacity::Finite(4));
        nets.push(capped);
        nets
    }

    #[test]
    fn csr_backends_match_legacy_solvers_on_value_and_cut_validity() {
        let mut scratch = FlowScratch::new();
        for net in instances() {
            let csr = CsrFlow::from_network(&net);
            for algorithm in FlowAlgorithm::ALL {
                let legacy = min_cut_with(&net, algorithm);
                let cut = csr.min_cut(algorithm, &mut scratch);
                assert_eq!(cut.value, legacy.value, "{algorithm} value");
                if let Capacity::Finite(_) = cut.value {
                    let set: BTreeSet<EdgeId> = cut.cut_edges.iter().copied().collect();
                    assert!(net.is_cut(&set), "{algorithm}: CSR cut must disconnect");
                    assert_eq!(net.cost(&set), cut.value, "{algorithm}: CSR cut cost");
                } else {
                    assert!(cut.cut_edges.is_empty());
                }
            }
        }
    }

    #[test]
    fn auto_matches_concrete_backends_everywhere() {
        let mut scratch = FlowScratch::new();
        for net in instances() {
            let csr = CsrFlow::from_network(&net);
            let auto_value = csr.min_cut(FlowAlgorithm::Auto, &mut scratch).value;
            let dinic_value = csr.min_cut(FlowAlgorithm::Dinic, &mut scratch).value;
            assert_eq!(auto_value, dinic_value);
        }
    }

    #[test]
    fn exhaustive_cross_check_on_small_networks() {
        // Brute force all edge subsets and compare against every CSR backend.
        let nets = vec![
            simple_network(&[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 1), (1, 2, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 3), (1, 2, 2), (0, 2, 1), (2, 3, 3), (1, 3, 1)], 4, 0, 3),
        ];
        let mut scratch = FlowScratch::new();
        for net in nets {
            let m = net.num_edges();
            let mut best = Capacity::Infinite;
            for mask in 0..(1u32 << m) {
                let set: BTreeSet<EdgeId> =
                    (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
                if net.is_cut(&set) {
                    best = best.min(net.cost(&set));
                }
            }
            let csr = CsrFlow::from_network(&net);
            for algorithm in FlowAlgorithm::ALL {
                assert_eq!(csr.min_cut(algorithm, &mut scratch).value, best, "{algorithm}");
            }
        }
    }

    #[test]
    fn arena_reuse_after_clear_keeps_results_correct() {
        let mut csr = CsrFlow::new();
        let mut scratch = FlowScratch::new();
        for net in instances() {
            csr.clear();
            csr.add_vertices(net.num_vertices());
            csr.set_source(net.source());
            csr.set_target(net.target());
            for (_, e) in net.edges() {
                csr.add_edge(e.from, e.to, e.capacity);
            }
            csr.freeze();
            let expected = min_cut_with(&net, FlowAlgorithm::Dinic).value;
            assert_eq!(csr.min_cut(FlowAlgorithm::Dinic, &mut scratch).value, expected);
        }
    }

    #[test]
    fn scratch_is_not_reallocated_across_repeated_solves() {
        let net = simple_network(
            &[(0, 1, 16), (0, 2, 13), (1, 2, 10), (1, 3, 12), (2, 4, 14), (3, 5, 20), (4, 5, 4)],
            6,
            0,
            5,
        );
        let csr = CsrFlow::from_network(&net);
        let mut scratch = FlowScratch::new();
        // Warm-up sizes every buffer (one solve per backend, since they touch
        // different buffers).
        for algorithm in FlowAlgorithm::ALL {
            csr.min_cut(algorithm, &mut scratch);
        }
        let signature = scratch.capacity_signature();
        for _ in 0..8 {
            for algorithm in FlowAlgorithm::ALL {
                csr.min_cut(algorithm, &mut scratch);
            }
            assert_eq!(scratch.capacity_signature(), signature);
        }
    }
}
