//! Minimum cuts and cut-edge extraction.
//!
//! By the max-flow min-cut theorem, the value of a minimum cut equals the
//! value of a maximum flow, and a concrete minimum cut is obtained from the
//! residual graph: the cut edges are the original edges going from the
//! source-reachable side of the residual graph to the unreachable side.

use crate::dinic::{max_flow, MaxFlow};
use crate::network::{Capacity, EdgeId, FlowNetwork};
use std::collections::{BTreeSet, VecDeque};

/// Which maximum-flow algorithm to use for a min-cut computation.
///
/// The three concrete backends produce the same cut value (they are exact
/// algorithms); they are kept side by side for cross-checking and for the
/// `flow_ablation` bench. [`FlowAlgorithm::Auto`] is not a fourth algorithm:
/// it resolves per instance to the measured winner (Dinic on small networks,
/// push–relabel on large ones — see [`crate::auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowAlgorithm {
    /// Dinic's algorithm (the default used by the resilience reductions).
    #[default]
    Dinic,
    /// Edmonds–Karp (BFS augmenting paths).
    EdmondsKarp,
    /// Push–relabel with FIFO selection and the gap heuristic.
    PushRelabel,
    /// Pick the backend per instance from the measured size/density
    /// thresholds of [`crate::auto`].
    Auto,
}

impl FlowAlgorithm {
    /// The concrete algorithms (useful for cross-checking loops; excludes
    /// [`FlowAlgorithm::Auto`], which always agrees with one of these).
    pub const ALL: [FlowAlgorithm; 3] =
        [FlowAlgorithm::Dinic, FlowAlgorithm::EdmondsKarp, FlowAlgorithm::PushRelabel];

    /// Every selectable mode, as accepted by [`FlowAlgorithm::from_str`]
    /// (the concrete algorithms plus `auto`).
    pub const SELECTABLE: [FlowAlgorithm; 4] = [
        FlowAlgorithm::Dinic,
        FlowAlgorithm::EdmondsKarp,
        FlowAlgorithm::PushRelabel,
        FlowAlgorithm::Auto,
    ];

    /// Resolves `Auto` to the measured-winner backend for an instance of the
    /// given dimensions; concrete backends resolve to themselves.
    pub fn resolve(self, num_vertices: usize, num_edges: usize) -> FlowAlgorithm {
        match self {
            FlowAlgorithm::Auto => crate::auto::select(num_vertices, num_edges),
            concrete => concrete,
        }
    }

    /// Runs the selected maximum-flow algorithm (`Auto` resolves first).
    pub fn max_flow(&self, network: &FlowNetwork) -> MaxFlow {
        match self.resolve(network.num_vertices(), network.num_edges()) {
            FlowAlgorithm::Dinic => crate::dinic::max_flow(network),
            FlowAlgorithm::EdmondsKarp => crate::edmonds_karp::max_flow(network),
            FlowAlgorithm::PushRelabel => crate::push_relabel::max_flow(network),
            // lint: allow(panic-freedom, resolve never returns Auto)
            FlowAlgorithm::Auto => unreachable!("Auto resolves to a concrete backend"),
        }
    }

    /// The stable command-line name of the backend (see
    /// [`FlowAlgorithm::from_str`]).
    pub fn name(self) -> &'static str {
        match self {
            FlowAlgorithm::Dinic => "dinic",
            FlowAlgorithm::EdmondsKarp => "edmonds-karp",
            FlowAlgorithm::PushRelabel => "push-relabel",
            FlowAlgorithm::Auto => "auto",
        }
    }
}

impl std::str::FromStr for FlowAlgorithm {
    type Err = String;

    fn from_str(name: &str) -> Result<Self, Self::Err> {
        FlowAlgorithm::SELECTABLE
            .into_iter()
            .find(|a| a.name() == name)
            .ok_or_else(|| format!("unknown flow algorithm `{name}`"))
    }
}

impl std::fmt::Display for FlowAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A minimum cut of a flow network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// The cost of the cut (`Infinite` when no finite cut exists — e.g. when
    /// the source reaches the target through infinite-capacity edges only).
    pub value: Capacity,
    /// A concrete set of edges achieving the cut. Empty when the value is
    /// infinite (no finite cut exists) — and also when the value is 0
    /// (the target is already unreachable).
    pub cut_edges: Vec<EdgeId>,
    /// The source side of the cut: vertices reachable from the source in the
    /// residual graph of a maximum flow.
    pub source_side: BTreeSet<usize>,
}

/// Computes a minimum cut between the network's source and target.
///
/// ```
/// use rpq_flow::{Capacity, FlowNetwork};
/// let mut n = FlowNetwork::new();
/// let s = n.add_vertex();
/// let m = n.add_vertex();
/// let t = n.add_vertex();
/// n.set_source(s);
/// n.set_target(t);
/// n.add_edge(s, m, Capacity::Infinite);
/// let bottleneck = n.add_edge(m, t, Capacity::Finite(2));
/// let cut = rpq_flow::min_cut(&n);
/// assert_eq!(cut.value, Capacity::Finite(2));
/// assert_eq!(cut.cut_edges, vec![bottleneck]);
/// ```
pub fn min_cut(network: &FlowNetwork) -> MinCut {
    let flow = max_flow(network);
    min_cut_from_flow(network, flow)
}

/// Computes a minimum cut using the requested maximum-flow algorithm
/// (see [`FlowAlgorithm`]). `min_cut` is equivalent to
/// `min_cut_with(network, FlowAlgorithm::Dinic)`.
pub fn min_cut_with(network: &FlowNetwork, algorithm: FlowAlgorithm) -> MinCut {
    let flow = algorithm.max_flow(network);
    min_cut_from_flow(network, flow)
}

fn min_cut_from_flow(network: &FlowNetwork, flow: MaxFlow) -> MinCut {
    // Vertices reachable from the source in the residual graph.
    let residual = &flow.residual;
    let mut reachable = vec![false; network.num_vertices()];
    let source = network.source().index();
    reachable[source] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &ai in &residual.adjacency[v] {
            let arc = residual.arcs[ai];
            if arc.residual() > 0 && !reachable[arc.to] {
                reachable[arc.to] = true;
                queue.push_back(arc.to);
            }
        }
    }
    let source_side: BTreeSet<usize> =
        (0..network.num_vertices()).filter(|&v| reachable[v]).collect();

    if flow.value.is_infinite() {
        return MinCut { value: Capacity::Infinite, cut_edges: Vec::new(), source_side };
    }

    let mut cut_edges = Vec::new();
    for (id, e) in network.edges() {
        if reachable[e.from.index()] && !reachable[e.to.index()] {
            // Zero-capacity edges crossing the cut are included so that the
            // returned set is a genuine separator (they cost nothing).
            cut_edges.push(id);
        }
    }

    debug_assert!(
        {
            let set: BTreeSet<EdgeId> = cut_edges.iter().copied().collect();
            network.is_cut(&set) && network.cost(&set) == flow.value
        },
        "extracted cut must disconnect the network and match the max-flow value"
    );

    MinCut { value: flow.value, cut_edges, source_side }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::VertexId;

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    #[test]
    fn flow_algorithm_names_round_trip() {
        for algorithm in FlowAlgorithm::SELECTABLE {
            assert_eq!(algorithm.name().parse::<FlowAlgorithm>().unwrap(), algorithm);
            assert_eq!(algorithm.to_string(), algorithm.name());
        }
        assert_eq!("auto".parse::<FlowAlgorithm>().unwrap(), FlowAlgorithm::Auto);
        assert!("bogus".parse::<FlowAlgorithm>().is_err());
    }

    #[test]
    fn auto_resolves_to_a_concrete_backend_and_agrees() {
        let net = simple_network(&[(0, 1, 1), (1, 3, 5), (0, 2, 5), (2, 3, 1)], 4, 0, 3);
        let resolved = FlowAlgorithm::Auto.resolve(net.num_vertices(), net.num_edges());
        assert_ne!(resolved, FlowAlgorithm::Auto);
        assert_eq!(
            min_cut_with(&net, FlowAlgorithm::Auto).value,
            min_cut_with(&net, resolved).value
        );
        for concrete in FlowAlgorithm::ALL {
            assert_eq!(concrete.resolve(net.num_vertices(), net.num_edges()), concrete);
        }
    }

    #[test]
    fn cut_of_a_series_path_is_the_bottleneck() {
        let net = simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3);
        let cut = min_cut(&net);
        assert_eq!(cut.value, Capacity::Finite(3));
        assert_eq!(cut.cut_edges.len(), 1);
        assert_eq!(net.edge(cut.cut_edges[0]).capacity, Capacity::Finite(3));
    }

    #[test]
    fn cut_separates_source_and_target_sides() {
        let net = simple_network(&[(0, 1, 1), (1, 3, 5), (0, 2, 5), (2, 3, 1)], 4, 0, 3);
        let cut = min_cut(&net);
        assert_eq!(cut.value, Capacity::Finite(2));
        assert!(cut.source_side.contains(&0));
        assert!(!cut.source_side.contains(&3));
        let set: BTreeSet<EdgeId> = cut.cut_edges.iter().copied().collect();
        assert!(net.is_cut(&set));
        assert_eq!(net.cost(&set), Capacity::Finite(2));
    }

    #[test]
    fn infinite_min_cut_is_reported() {
        let mut net = FlowNetwork::new();
        let s = net.add_vertex();
        let t = net.add_vertex();
        net.set_source(s);
        net.set_target(t);
        net.add_edge(s, t, Capacity::Infinite);
        let cut = min_cut(&net);
        assert!(cut.value.is_infinite());
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn already_disconnected_network_has_empty_cut() {
        let net = simple_network(&[(1, 0, 4)], 2, 0, 1);
        let cut = min_cut(&net);
        assert_eq!(cut.value, Capacity::Finite(0));
        assert!(cut.cut_edges.is_empty());
    }

    #[test]
    fn classic_instance_cut_matches_flow() {
        let net = simple_network(
            &[
                (0, 1, 16),
                (0, 2, 13),
                (1, 2, 10),
                (2, 1, 4),
                (1, 3, 12),
                (3, 2, 9),
                (2, 4, 14),
                (4, 3, 7),
                (3, 5, 20),
                (4, 5, 4),
            ],
            6,
            0,
            5,
        );
        let cut = min_cut(&net);
        assert_eq!(cut.value, Capacity::Finite(23));
        let set: BTreeSet<EdgeId> = cut.cut_edges.iter().copied().collect();
        assert!(net.is_cut(&set));
        assert_eq!(net.cost(&set), Capacity::Finite(23));
    }

    #[test]
    fn exhaustive_cross_check_on_small_networks() {
        // Brute force all edge subsets on a few small instances and compare
        // with the computed min cut, ignoring cuts of infinite cost.
        let instances = vec![
            simple_network(&[(0, 1, 2), (0, 2, 3), (1, 3, 4), (2, 3, 1), (1, 2, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(&[(0, 1, 3), (1, 2, 2), (0, 2, 1), (2, 3, 3), (1, 3, 1)], 4, 0, 3),
        ];
        for net in instances {
            let computed = min_cut(&net).value;
            let m = net.num_edges();
            let mut best = Capacity::Infinite;
            for mask in 0..(1u32 << m) {
                let set: BTreeSet<EdgeId> =
                    (0..m).filter(|i| mask & (1 << i) != 0).map(|i| EdgeId(i as u32)).collect();
                if net.is_cut(&set) {
                    best = best.min(net.cost(&set));
                }
            }
            assert_eq!(computed, best);
        }
    }
}
